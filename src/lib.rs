//! # netchain
//!
//! Umbrella crate for the NetChain reproduction (NSDI 2018, "NetChain:
//! Scale-Free Sub-RTT Coordination"). It re-exports the workspace crates so
//! applications and examples can depend on a single crate:
//!
//! * [`wire`] — packet formats (Ethernet/IPv4/UDP/NetChain header).
//! * [`sim`] — the deterministic discrete-event network simulator.
//! * [`switch`] — the programmable-switch data-plane model and the NetChain
//!   program (Algorithm 1, failover rules).
//! * [`core`] — consistent hashing, the client agent, the controller
//!   (fast failover + failure recovery) and cluster assembly.
//! * [`baseline`] — the ZooKeeper-like server-based baseline.
//! * [`apps`] — locks, 2PL transactions, configuration store, barriers.
//! * [`model`] — the bounded model checker (TLA+ appendix port).
//! * [`net`] — the real-socket (UDP loopback) deployment mode.
//! * [`fabric`] — the in-process multi-core switch fabric (real throughput:
//!   lock-free SPSC rings, batched zero-copy processing).
//! * [`livectl`] — the live control plane for the fabric (fault injection,
//!   fast failover, measured chain repair).
//! * [`telemetry`] — the observability layer: metrics, latency histograms,
//!   in-band per-hop tracing, event journal, JSON-lines export.
//! * [`experiments`] — the per-figure reproduction harness.
//!
//! See `examples/` for runnable walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the system inventory and the reproduction results.

#![forbid(unsafe_code)]

pub use netchain_apps as apps;
pub use netchain_baseline as baseline;
pub use netchain_core as core;
pub use netchain_experiments as experiments;
pub use netchain_fabric as fabric;
pub use netchain_livectl as livectl;
pub use netchain_model as model;
pub use netchain_net as net;
pub use netchain_sim as sim;
pub use netchain_switch as switch;
pub use netchain_telemetry as telemetry;
pub use netchain_wire as wire;
