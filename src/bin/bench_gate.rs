//! Workspace-root alias for the bench regression gate, so
//! `cargo run --release --bin bench_gate` works without `-p`.
//! See `crates/experiments/src/bench_gate.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(netchain_experiments::bench_gate::run_cli(&args));
}
