//! Workspace-root alias for the offline chain-consistency audit, so
//! `cargo run --release --bin chain_audit` works without `-p`.
//! See `crates/experiments/src/chain_audit.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(netchain_experiments::chain_audit::run_cli(&args));
}
