//! Workspace-root alias for the live ops dashboard, so
//! `cargo run --release --bin ops_top` works without `-p`.
//! See `crates/experiments/src/ops_top.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    netchain_experiments::ops_top::run_cli(&args);
}
