//! Workspace-root alias for the live failover experiment, so
//! `cargo run --release --bin failover_live` works without `-p`.
//! See `crates/experiments/src/failover_live.rs`.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netchain_experiments::failover_live::run_cli(smoke);
}
