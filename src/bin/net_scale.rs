//! Workspace-root alias for the net-mode scale experiment, so
//! `cargo run --release --bin net_scale` works without `-p`.
//! See `crates/experiments/src/net_scale.rs`.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netchain_experiments::net_scale::run_cli(smoke);
}
