//! Workspace-root alias for the telemetry overhead guard, so
//! `cargo run --release --bin telemetry_overhead` works without `-p`.
//! See `crates/experiments/src/telemetry_overhead.rs`.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netchain_experiments::telemetry_overhead::run_cli(smoke);
}
