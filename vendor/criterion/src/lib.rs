//! Vendored micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Methodology (simpler than upstream, but a real measurement): each
//! benchmark is warmed up, the per-iteration cost is estimated, and then
//! `sample_size` samples of a fixed iteration count are timed. The median
//! sample is reported as ns/iter together with the implied throughput in
//! iterations per second. There is no statistical regression analysis and no
//! HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1_200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.clone(),
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(r) => {
                let per_iter_ns = r.median_ns_per_iter;
                let rate = if per_iter_ns > 0.0 {
                    1e9 / per_iter_ns
                } else {
                    f64::INFINITY
                };
                println!(
                    "{name:<50} time: {:>12} /iter   thrpt: {:>14}/s   ({} samples x {} iters)",
                    format_ns(per_iter_ns),
                    format_rate(rate),
                    r.samples,
                    r.iters_per_sample,
                );
            }
            None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

struct BenchResult {
    median_ns_per_iter: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    config: Criterion,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Measures `f`, which is called many times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, counting iterations
        // to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so that sample_size samples fill the measurement
        // budget, with at least one iteration per sample.
        let budget = self.config.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.config.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = samples_ns[samples_ns.len() / 2];
        self.result = Some(BenchResult {
            median_ns_per_iter: median,
            samples: samples_ns.len(),
            iters_per_sample,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("selftest/noop", |b| {
            b.iter(|| 1 + 1);
        });
        c.bench_function("selftest/closure_called", |b| {
            ran = true;
            b.iter(|| black_box(7u64).wrapping_mul(3));
        });
        assert!(ran);
    }

    #[test]
    fn formatting_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_rate(2_000_000.0).ends_with('M'));
    }
}
