//! Vendored shim exposing the (small) `parking_lot` API this workspace uses,
//! backed by `std::sync` primitives.
//!
//! The semantic difference that matters to callers is that `parking_lot`
//! guards are not poisoning: `lock()`/`read()`/`write()` return guards
//! directly. This shim preserves that by unwrapping poison errors into the
//! inner guard — a panic while holding a lock does not wedge every later
//! acquisition, matching `parking_lot` behaviour.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_while_locked_does_not_wedge() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
