//! Minimal burst UDP I/O: `recvmmsg(2)` / `sendmmsg(2)` on Linux, with a
//! portable single-packet fallback built on `std::net::UdpSocket`.
//!
//! The fabric processes packets in bursts of ~32; the socket dataplane
//! (`netchain-net`) wants its syscall layer to match, so one kernel crossing
//! moves a whole burst instead of one datagram. The standard library exposes
//! no multi-message API, so this crate wraps the two syscalls the dataplane
//! needs directly against the system libc — the same deliberately-vendored
//! pattern as the `affinity` shim: a tiny API surface, no crates.io
//! dependency, and the build never needs the network.
//!
//! Two queue types carry the batches, both backed by flat reusable buffers so
//! steady-state I/O never touches the allocator:
//!
//! * [`RecvQueue`] — fixed-size receive slots; [`RecvQueue::recv`] fills as
//!   many as one syscall can (`recvmmsg` with `MSG_WAITFORONE`, honouring the
//!   socket's read timeout for the initial block), and the consumer parses
//!   straight out of the slots.
//! * [`SendQueue`] — variable-length frames appended back-to-back with their
//!   destination addresses; [`SendQueue::send`] flushes them in `sendmmsg`
//!   bursts.
//!
//! Both also expose a `*_single` method that always takes the portable
//! one-datagram-per-syscall path — the same code the non-Linux fallback runs
//! — so callers can measure batched against single-packet I/O on the same
//! box, and so the dataplane has a known-good path everywhere.
//!
//! ## Oversize detection
//!
//! A UDP datagram larger than its receive slot is silently truncated by every
//! kernel API. The idiom this crate supports: size slots one byte larger than
//! the largest legal frame, then treat any received length above the legal
//! maximum as an oversized datagram (count it, don't parse it). That turns
//! silent truncation into an observable, countable event without needing
//! platform-specific `MSG_TRUNC` handling.

#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Hard cap on datagrams moved per syscall (the stack-allocated header
/// arrays are sized by this).
pub const MAX_BURST: usize = 64;

/// True when [`RecvQueue::recv`] / [`SendQueue::send`] use real multi-message
/// syscalls; false on platforms where they fall back to the single-packet
/// path.
pub const BURST_SYSCALLS: bool = imp::BURST_SYSCALLS;

/// A batch of received datagrams in fixed-size slots over one flat buffer.
pub struct RecvQueue {
    /// Bytes per slot.
    slot: usize,
    /// Datagrams held (`<= burst`).
    count: usize,
    /// Flat slot storage: datagram `i` occupies `data[i*slot..i*slot+lens[i]]`.
    data: Vec<u8>,
    lens: Vec<usize>,
    addrs: Vec<SocketAddr>,
}

impl RecvQueue {
    /// A queue of `burst` slots (`<=` [`MAX_BURST`]) of `bytes_per_slot` each.
    pub fn new(burst: usize, bytes_per_slot: usize) -> Self {
        assert!(burst > 0 && burst <= MAX_BURST, "burst out of range");
        assert!(bytes_per_slot > 0);
        RecvQueue {
            slot: bytes_per_slot,
            count: 0,
            data: vec![0; burst * bytes_per_slot],
            lens: vec![0; burst],
            addrs: vec![SocketAddr::from(([0, 0, 0, 0], 0)); burst],
        }
    }

    /// Number of slots a single `recv` can fill.
    pub fn burst(&self) -> usize {
        self.lens.len()
    }

    /// Datagrams currently held.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the last receive yielded nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The bytes of datagram `i`.
    pub fn frame(&self, i: usize) -> &[u8] {
        assert!(i < self.count);
        &self.data[i * self.slot..i * self.slot + self.lens[i]]
    }

    /// The source address of datagram `i`.
    pub fn addr(&self, i: usize) -> SocketAddr {
        assert!(i < self.count);
        self.addrs[i]
    }

    /// Iterates the received datagrams in arrival order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.count).map(move |i| self.frame(i))
    }

    /// Receives up to [`Self::burst`] datagrams in (at most) one kernel
    /// crossing, replacing the queue's previous contents. Blocks for the
    /// first datagram according to the socket's configured read timeout /
    /// blocking mode, then drains whatever else is immediately available.
    /// Returns the number received; errors (including `WouldBlock` /
    /// `TimedOut` from an armed read timeout) leave the queue empty.
    pub fn recv(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        let n = imp::recv_burst(
            sock,
            &mut self.data,
            self.slot,
            &mut self.lens,
            &mut self.addrs,
        )?;
        self.count = n;
        Ok(n)
    }

    /// The portable single-datagram path: one `recv_from`, one slot filled.
    /// This is exactly what [`Self::recv`] does on platforms without
    /// `recvmmsg`; it is public so batched and single-packet I/O can be
    /// compared on the same socket.
    pub fn recv_single(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        let (len, addr) = sock.recv_from(&mut self.data[..self.slot])?;
        self.lens[0] = len;
        self.addrs[0] = addr;
        self.count = 1;
        Ok(1)
    }
}

/// A batch of outgoing datagrams: variable-length frames appended
/// back-to-back into one flat buffer, each with its destination.
#[derive(Default)]
pub struct SendQueue {
    data: Vec<u8>,
    /// Exclusive end offset of frame `i` in `data`.
    ends: Vec<usize>,
    addrs: Vec<SocketAddr>,
}

impl SendQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with capacity for roughly `frames` datagrams of
    /// `bytes_per_frame` bytes.
    pub fn with_capacity(frames: usize, bytes_per_frame: usize) -> Self {
        SendQueue {
            data: Vec::with_capacity(frames * bytes_per_frame),
            ends: Vec::with_capacity(frames),
            addrs: Vec::with_capacity(frames),
        }
    }

    /// Appends one datagram bound for `addr`.
    pub fn push(&mut self, bytes: &[u8], addr: SocketAddr) {
        self.data.extend_from_slice(bytes);
        self.ends.push(self.data.len());
        self.addrs.push(addr);
    }

    /// Queued datagrams.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The bytes of queued frame `i`.
    pub fn frame(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.data[start..self.ends[i]]
    }

    /// Drops the queued datagrams, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.ends.clear();
        self.addrs.clear();
    }

    /// Sends every queued datagram, in [`MAX_BURST`]-sized `sendmmsg` bursts
    /// where available. Returns the number of datagrams handed to the kernel
    /// (always all of them on success); the queue is cleared on full success
    /// and left holding the unsent tail on error.
    pub fn send(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        let total = self.len();
        let mut sent = 0;
        while sent < total {
            let n = imp::send_burst(sock, self, sent)?;
            debug_assert!(n > 0, "send_burst sends at least one datagram");
            sent += n;
        }
        self.clear();
        Ok(total)
    }

    /// The portable path: one `send_to` per datagram. Public for
    /// batched-vs-single comparison; semantics match [`Self::send`].
    pub fn send_single(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        for i in 0..self.len() {
            let start = if i == 0 { 0 } else { self.ends[i - 1] };
            sock.send_to(&self.data[start..self.ends[i]], self.addrs[i])?;
        }
        let total = self.len();
        self.clear();
        Ok(total)
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{SendQueue, MAX_BURST};
    use std::io;
    use std::net::{SocketAddr, SocketAddrV4, UdpSocket};
    use std::os::fd::AsRawFd;

    pub const BURST_SYSCALLS: bool = true;

    // Kernel/libc ABI mirrors for the two syscalls (x86-64 / aarch64 Linux
    // layouts; field types are the glibc ones, padding is inserted by the
    // compiler exactly as C does).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        family: u16,
        /// Big-endian port.
        port: u16,
        /// Big-endian address.
        addr: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut SockAddrIn,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    const AF_INET: u16 = 2;
    /// `recvmmsg`: block (per the socket's timeout) for the first message
    /// only, then return whatever else is immediately available.
    const MSG_WAITFORONE: i32 = 0x10000;

    extern "C" {
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8, // struct timespec*; always null here
        ) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    fn zero_mmsghdr() -> MMsgHdr {
        MMsgHdr {
            hdr: MsgHdr {
                name: std::ptr::null_mut(),
                namelen: 0,
                iov: std::ptr::null_mut(),
                iovlen: 0,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        }
    }

    fn to_sockaddr_in(addr: SocketAddr) -> SockAddrIn {
        let v4 = match addr {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(_) => unreachable!("the dataplane binds IPv4 sockets only"),
        };
        SockAddrIn {
            family: AF_INET,
            port: v4.port().to_be(),
            addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
            zero: [0; 8],
        }
    }

    fn from_sockaddr_in(sa: &SockAddrIn) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(
            u32::from_be(sa.addr).to_be_bytes().into(),
            u16::from_be(sa.port),
        ))
    }

    pub fn recv_burst(
        sock: &UdpSocket,
        data: &mut [u8],
        slot: usize,
        lens: &mut [usize],
        addrs: &mut [SocketAddr],
    ) -> io::Result<usize> {
        let burst = lens.len().min(MAX_BURST);
        let mut iovs = [IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        }; MAX_BURST];
        let mut names = [SockAddrIn {
            family: 0,
            port: 0,
            addr: 0,
            zero: [0; 8],
        }; MAX_BURST];
        let mut hdrs = [zero_mmsghdr(); MAX_BURST];
        for (i, chunk) in data.chunks_exact_mut(slot).take(burst).enumerate() {
            iovs[i] = IoVec {
                base: chunk.as_mut_ptr(),
                len: slot,
            };
            hdrs[i].hdr.name = &mut names[i];
            hdrs[i].hdr.namelen = std::mem::size_of::<SockAddrIn>() as u32;
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        // SAFETY: every pointer in `hdrs` targets storage that outlives the
        // call (`data` slots, `iovs`, `names` — all live across the syscall),
        // and `vlen` never exceeds the populated prefix.
        let rc = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                hdrs.as_mut_ptr(),
                burst as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let n = rc as usize;
        for i in 0..n {
            lens[i] = hdrs[i].len as usize;
            addrs[i] = from_sockaddr_in(&names[i]);
        }
        Ok(n)
    }

    /// Sends queued frames starting at index `from` in one `sendmmsg` burst.
    /// Returns how many datagrams the kernel accepted (>= 1 on Ok).
    pub fn send_burst(sock: &UdpSocket, queue: &SendQueue, from: usize) -> io::Result<usize> {
        let burst = (queue.len() - from).min(MAX_BURST);
        let mut iovs = [IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        }; MAX_BURST];
        let mut names = [SockAddrIn {
            family: 0,
            port: 0,
            addr: 0,
            zero: [0; 8],
        }; MAX_BURST];
        let mut hdrs = [zero_mmsghdr(); MAX_BURST];
        for i in 0..burst {
            let frame = queue.frame(from + i);
            iovs[i] = IoVec {
                // sendmmsg never writes through the iov; the mut pointer is
                // an ABI artefact of sharing `struct iovec` with the read
                // side.
                base: frame.as_ptr() as *mut u8,
                len: frame.len(),
            };
            names[i] = to_sockaddr_in(queue.addrs[from + i]);
            hdrs[i].hdr.name = &mut names[i];
            hdrs[i].hdr.namelen = std::mem::size_of::<SockAddrIn>() as u32;
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        // SAFETY: as in `recv_burst`, all pointed-to storage outlives the
        // syscall and `vlen` covers only initialised headers.
        let rc = unsafe { sendmmsg(sock.as_raw_fd(), hdrs.as_mut_ptr(), burst as u32, 0) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::SendQueue;
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    pub const BURST_SYSCALLS: bool = false;

    pub fn recv_burst(
        sock: &UdpSocket,
        data: &mut [u8],
        slot: usize,
        lens: &mut [usize],
        addrs: &mut [SocketAddr],
    ) -> io::Result<usize> {
        let (len, addr) = sock.recv_from(&mut data[..slot])?;
        lens[0] = len;
        addrs[0] = addr;
        Ok(1)
    }

    pub fn send_burst(sock: &UdpSocket, queue: &SendQueue, from: usize) -> io::Result<usize> {
        let start = if from == 0 { 0 } else { queue.ends[from - 1] };
        sock.send_to(&queue.data[start..queue.ends[from]], queue.addrs[from])?;
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        (a, b)
    }

    #[test]
    fn burst_roundtrip_preserves_frames_and_addresses() {
        let (tx, rx) = pair();
        let dest = rx.local_addr().unwrap();
        let mut out = SendQueue::new();
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 3 + usize::from(i)]).collect();
        for f in &frames {
            out.push(f, dest);
        }
        assert_eq!(out.send(&tx).unwrap(), 10);
        assert!(out.is_empty());

        let mut inq = RecvQueue::new(16, 64);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < frames.len() {
            let n = inq.recv(&rx).unwrap();
            assert!(n >= 1);
            for i in 0..n {
                assert_eq!(inq.addr(i), tx.local_addr().unwrap());
                got.push(inq.frame(i).to_vec());
            }
        }
        // UDP on loopback preserves order in practice, but only assert the
        // multiset to stay honest.
        got.sort();
        let mut want = frames.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn single_paths_match_burst_semantics() {
        let (tx, rx) = pair();
        let dest = rx.local_addr().unwrap();
        let mut out = SendQueue::new();
        out.push(b"hello", dest);
        out.push(b"world!", dest);
        assert_eq!(out.send_single(&tx).unwrap(), 2);
        let mut inq = RecvQueue::new(4, 32);
        assert_eq!(inq.recv_single(&rx).unwrap(), 1);
        assert_eq!(inq.frame(0), b"hello");
        assert_eq!(inq.recv_single(&rx).unwrap(), 1);
        assert_eq!(inq.frame(0), b"world!");
    }

    #[test]
    fn oversized_datagram_is_detectable_by_slot_sizing() {
        // The documented idiom: slots one byte past the legal max turn silent
        // truncation into `len > legal_max`.
        const LEGAL_MAX: usize = 16;
        let (tx, rx) = pair();
        let dest = rx.local_addr().unwrap();
        tx.send_to(&[0xab; 100], dest).unwrap();
        let mut inq = RecvQueue::new(1, LEGAL_MAX + 1);
        inq.recv(&rx).unwrap();
        assert!(inq.frame(0).len() > LEGAL_MAX);
    }

    #[test]
    fn read_timeout_surfaces_as_error_with_empty_queue() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut inq = RecvQueue::new(8, 64);
        let err = inq.recv(&rx).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut,
            "unexpected error kind: {err:?}"
        );
        assert!(inq.is_empty());
    }

    #[test]
    fn send_interleaves_bursts_beyond_max_burst() {
        let (tx, rx) = pair();
        let dest = rx.local_addr().unwrap();
        let mut out = SendQueue::with_capacity(MAX_BURST + 10, 8);
        let total = MAX_BURST + 10;
        for i in 0..total {
            out.push(&(i as u32).to_be_bytes(), dest);
        }
        assert_eq!(out.send(&tx).unwrap(), total);
        let mut inq = RecvQueue::new(MAX_BURST, 16);
        let mut seen = 0;
        while seen < total {
            seen += inq.recv(&rx).unwrap();
        }
        assert_eq!(seen, total);
    }
}
