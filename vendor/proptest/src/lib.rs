//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Supports the parts of proptest this workspace's tests actually use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range and
//! `any::<T>()` strategies, `prop_oneof!`, `prop_map`, `collection::vec`, and
//! the `prop_assert*` macros. Two deliberate simplifications relative to
//! upstream:
//!
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   assertion message but is not minimised;
//! * **fixed deterministic seeding** — each test function derives its RNG
//!   stream from its own name and the case index, so failures reproduce
//!   across runs without a persistence file.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import used by tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(message) = result {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_each! { ($config); $($rest)* }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat),)+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}
