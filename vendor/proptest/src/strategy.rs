//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Object safe (the only generic machinery lives in provided combinators),
/// so strategies can be boxed for [`Union`] / `prop_oneof!`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy, fixing its element type (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct Union<T> {
    variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `variants` is empty.
    pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.inner().gen_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_case("strategy_unit", 0);
        for _ in 0..200 {
            let v = (0u8..10).generate(&mut rng);
            assert!(v < 10);
            let w = (5u64..=6).generate(&mut rng);
            assert!((5..=6).contains(&w));
            let x = (1024u16..).generate(&mut rng);
            assert!(x >= 1024);
            let m = (0u32..4).prop_map(|n| n * 10).generate(&mut rng);
            assert!(m % 10 == 0 && m < 40);
            let (a, b) = ((0u8..2), (0u8..2)).generate(&mut rng);
            assert!(a < 2 && b < 2);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::for_case("union_unit", 0);
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
