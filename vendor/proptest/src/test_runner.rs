//! Test-runner configuration and the deterministic RNG behind strategies.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A failed property case: the message carried back to the harness.
pub type TestCaseError = String;

/// Runner configuration (the `#![proptest_config(..)]` payload).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exploring a meaningful slice of each input space.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies: a ChaCha8 stream derived deterministically
/// from the test function's name and the case index, so every run explores
/// the same cases and failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: ChaCha8Rng,
}

impl TestRng {
    /// The stream for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: ChaCha8Rng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }

    /// The underlying generator.
    pub fn inner(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}
