//! The `any::<T>()` strategy for types with a canonical arbitrary generator.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical "any value" generator.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner().next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values across a wide magnitude range.
        let unit = (rng.inner().next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let magnitude = rng.inner().gen_range(0.0f64..1e9);
        if unit < 0.5 {
            magnitude
        } else {
            -magnitude
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.inner().fill_bytes(&mut out);
        out
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}
