//! Minimal thread→core pinning.
//!
//! The standard library deliberately exposes no CPU-affinity API, so this
//! crate wraps the one syscall the fabric needs — `sched_setaffinity(2)` on
//! the calling thread — directly against the system libc, with a no-op
//! fallback on every other platform. Nothing else: no topology discovery, no
//! NUMA awareness, no cgroup parsing. Callers that want "one shard per core"
//! simply pin thread `i` to CPU `i % available_cpus()`.
//!
//! The wrapper is deliberately vendored instead of pulling a crates.io
//! dependency: the whole API surface is three functions, and keeping it in
//! the workspace means the build never needs the network.

#![warn(missing_docs)]

#[cfg(target_os = "linux")]
mod imp {
    use std::io;

    /// Mirrors glibc's `cpu_set_t`: a 1024-bit mask (`CPU_SETSIZE`), here as
    /// sixteen 64-bit words.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }

    const MAX_CPU: usize = 16 * 64;

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
        fn sched_getcpu() -> i32;
    }

    /// Pins the calling thread to `cpu`. Fails if the CPU id is outside the
    /// mask or the kernel rejects the affinity (e.g. a restricted cpuset).
    pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
        if cpu >= MAX_CPU {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cpu id beyond CPU_SETSIZE",
            ));
        }
        let mut set = CpuSet { bits: [0; 16] };
        set.bits[cpu / 64] = 1u64 << (cpu % 64);
        // pid 0 addresses the calling thread.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// The CPU the calling thread is currently running on.
    pub fn current_cpu() -> Option<usize> {
        let cpu = unsafe { sched_getcpu() };
        usize::try_from(cpu).ok()
    }

    /// True on platforms where pinning actually takes effect.
    pub const SUPPORTED: bool = true;
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;

    /// No-op fallback: reports the platform as unsupported.
    pub fn pin_current_thread(_cpu: usize) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "thread pinning is only implemented on linux",
        ))
    }

    /// Unknown on platforms without `sched_getcpu`.
    pub fn current_cpu() -> Option<usize> {
        None
    }

    /// True on platforms where pinning actually takes effect.
    pub const SUPPORTED: bool = false;
}

pub use imp::{current_cpu, pin_current_thread, SUPPORTED};

/// Number of CPUs the process may run on (at least 1).
pub fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_moves_the_thread() {
        let last = available_cpus() - 1;
        pin_current_thread(last).expect("pinning to an available cpu succeeds");
        assert_eq!(current_cpu(), Some(last));
        pin_current_thread(0).expect("re-pinning succeeds");
        assert_eq!(current_cpu(), Some(0));
    }

    #[test]
    fn out_of_range_cpu_is_rejected_or_unsupported() {
        assert!(pin_current_thread(usize::MAX).is_err());
    }
}
