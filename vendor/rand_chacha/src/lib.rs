//! Vendored ChaCha-based generator for offline builds.
//!
//! Implements the real ChaCha block function (Bernstein, 2008) with 8
//! double-rounds, exposed under the name the workspace expects
//! ([`ChaCha8Rng`]). Output is *not* guaranteed to be bit-identical to the
//! upstream `rand_chacha` crate — nothing in this repository depends on the
//! exact stream, only on determinism per seed and good statistical quality,
//! both of which ChaCha provides by construction.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // mirrors the reference ChaCha loop structure

use rand::{RngCore, SeedableRng};

/// Number of 32-bit words in a ChaCha state/block.
const STATE_WORDS: usize = 16;

/// The ChaCha8 deterministic random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Immutable key/nonce state words 0..16 (counter lives at word 12).
    state: [u32; STATE_WORDS],
    /// Current output block.
    block: [u32; STATE_WORDS],
    /// Next word of `block` to hand out (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn quarter_round(s: &mut [u32; STATE_WORDS], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
        for _ in 0..4 {
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..STATE_WORDS {
            self.block[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12/13 (IETF ChaCha uses 32-bit + nonce;
        // the 64-bit form gives a longer period and we control both ends).
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; STATE_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter (12/13) and nonce (14/15) start at zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0; STATE_WORDS],
            index: STATE_WORDS,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= STATE_WORDS {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64_000 bits, expect ~32_000 set; allow generous slack.
        assert!((30_000..34_000).contains(&ones), "bit bias: {ones}");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
