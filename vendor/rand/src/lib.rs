//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The container this workspace builds in has no network access to crates.io,
//! so the handful of `rand` items the repository actually uses are
//! re-implemented here behind the same paths ([`RngCore`], [`Rng`],
//! [`SeedableRng`], [`seq::SliceRandom`], [`rngs::mock::StepRng`]). The
//! implementations are deliberately small but correct: uniform ranges use
//! rejection sampling (no modulo bias) and `seed_from_u64` expands the seed
//! with SplitMix64, like upstream.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw integer output.
///
/// Object safe, so simulators can hold `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the way
    /// upstream `rand` does, so small seeds still give well-mixed state.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let v = sm.next().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&v[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A type that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Largest multiple of `bound` that fits in u64; values at or above it are
    // rejected so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Named generators.
pub mod rngs {
    /// Deterministic mock generators for tests.
    pub mod mock {
        use crate::RngCore;

        /// A generator that returns `initial`, `initial + increment`, … —
        /// the upstream `rand` mock used to drive deterministic unit tests.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a stepping generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = rngs::mock::StepRng::new(3, 2);
        assert_eq!(rng.next_u64(), 3);
        assert_eq!(rng.next_u64(), 5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
