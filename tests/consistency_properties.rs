//! Property-based cross-crate tests of the protocol's consistency machinery:
//! Invariant 1 (per-key sequence monotonicity along the chain), client-visible
//! version monotonicity under loss and reordering, and the model checker run
//! at a slightly larger bound than its unit tests use.

use netchain::core::{ClusterConfig, KvOp, NetChainCluster, WorkloadConfig};
use netchain::model::{random_walk, ModelConfig, RandomWalkConfig};
use netchain::sim::{LinkParams, SimConfig, SimDuration};
use netchain::wire::{Ipv4Addr, Key, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under random loss, jitter-induced reordering, write ratios and seeds,
    /// no client ever observes a version regression and surviving chain
    /// replicas keep Invariant 1 (head sequence >= tail sequence).
    #[test]
    fn lossy_reordered_network_preserves_consistency(
        seed in 0u64..1_000,
        loss in 0.0f64..0.05,
        write_ratio in 0.0f64..1.0,
    ) {
        let config = ClusterConfig {
            sim: SimConfig::default().with_seed(seed),
            link: LinkParams::datacenter_40g()
                .with_loss(loss)
                .with_jitter(SimDuration::from_micros(5)),
            ..Default::default()
        };
        let mut cluster = NetChainCluster::testbed(config);
        cluster.populate_store(50, 32);
        cluster.install_workload_client(
            0,
            WorkloadConfig {
                duration: SimDuration::from_millis(50),
                rate_qps: 20_000.0,
                write_ratio,
                num_keys: 50,
                throughput_bucket: SimDuration::from_millis(50),
                ..Default::default()
            },
        );
        cluster.sim.run_for(SimDuration::from_millis(80));
        let stats = cluster.workload_client(0).unwrap().agent_stats();
        prop_assert_eq!(stats.version_regressions, 0);

        // Invariant 1: along every key's chain, sequence numbers are
        // non-increasing from head to tail.
        let ring = cluster.ring().clone();
        for key_index in 0..50u64 {
            let key = Key::from_u64(key_index);
            let chain = ring.chain_for_key(&key);
            let mut previous: Option<(u64, u64)> = None;
            for ip in &chain.switches {
                let switch_idx = (0..4)
                    .find(|&i| Ipv4Addr::for_switch(i as u32) == *ip)
                    .expect("testbed switch");
                let kv = cluster.switch(switch_idx).switch().kv();
                let Some(slot) = kv.lookup(&key) else { continue };
                let ordering = kv.ordering(slot);
                if let Some(prev) = previous {
                    prop_assert!(
                        prev >= ordering,
                        "Invariant 1 violated for key {key_index}: upstream {prev:?} < downstream {ordering:?}"
                    );
                }
                previous = Some(ordering);
            }
        }
    }

    /// Scripted sequential writes through the cluster always read back the
    /// last written value, regardless of seed.
    #[test]
    fn read_your_writes_holds(seed in 0u64..1_000, final_value in 1u64..1_000_000) {
        let config = ClusterConfig {
            sim: SimConfig::default().with_seed(seed),
            ..Default::default()
        };
        let mut cluster = NetChainCluster::testbed(config);
        let key = Key::from_name("prop/key");
        cluster.populate_key(key, &Value::from_u64(0));
        cluster.install_scripted_client(
            1,
            vec![
                KvOp::Write(key, Value::from_u64(final_value ^ 1)),
                KvOp::Write(key, Value::from_u64(final_value)),
                KvOp::Read(key),
            ],
        );
        cluster.sim.run_for(SimDuration::from_millis(50));
        let client = cluster.scripted_client(1).unwrap();
        prop_assert!(client.is_done());
        prop_assert_eq!(client.results()[2].value.as_u64(), Some(final_value));
    }

    /// The abstract protocol model stays safe on long random walks with
    /// failures, recoveries and channel mischief.
    #[test]
    fn model_random_walks_stay_safe(seed in 0u64..500) {
        let result = random_walk(RandomWalkConfig {
            model: ModelConfig {
                chain_len: 3,
                spares: 1,
                keys: 2,
                values: 3,
                max_queue: 3,
                max_failures: 1,
                max_version: 10,
                max_channel_ops: 8,
            },
            steps: 600,
            seed,
        });
        prop_assert!(result.is_clean(), "violation: {:?}", result.violation);
    }
}
