//! Cross-crate integration tests: full NetChain deployments (simulated and
//! loopback), failure handling under load, and NetChain-vs-baseline sanity
//! comparisons.

use netchain::core::{ClusterConfig, ControllerConfig, KvOp, NetChainCluster, WorkloadConfig};
use netchain::sim::{SimDuration, SimTime};
use netchain::wire::{Ipv4Addr, Key, QueryStatus, Value};

#[test]
fn write_read_cas_delete_through_the_simulated_testbed() {
    let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
    let key = Key::from_name("integration/key");
    let lock = Key::from_name("integration/lock");
    cluster.populate_key(key, &Value::from_u64(1));
    cluster.populate_key(lock, &Value::from_u64(0));
    cluster.install_scripted_client(
        0,
        vec![
            KvOp::Read(key),
            KvOp::Write(key, Value::from_u64(7)),
            KvOp::Read(key),
            KvOp::Cas {
                key: lock,
                expected: 0,
                new: 99,
            },
            KvOp::Cas {
                key: lock,
                expected: 0,
                new: 100,
            },
            KvOp::Delete(key),
            KvOp::Read(key),
        ],
    );
    cluster.sim.run_for(SimDuration::from_millis(100));
    let client = cluster.scripted_client(0).unwrap();
    assert!(client.is_done());
    let r = client.results();
    assert_eq!(r[0].value.as_u64(), Some(1));
    assert_eq!(r[1].status, Some(QueryStatus::Ok));
    assert_eq!(r[2].value.as_u64(), Some(7));
    assert_eq!(r[3].status, Some(QueryStatus::Ok));
    assert_eq!(r[4].status, Some(QueryStatus::CasFailed));
    assert_eq!(r[5].status, Some(QueryStatus::Ok));
    assert_eq!(
        r[6].status,
        Some(QueryStatus::NotFound),
        "deleted key is gone"
    );
    assert_eq!(client.agent_stats().version_regressions, 0);
}

#[test]
fn concurrent_clients_never_observe_version_regressions() {
    let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
    cluster.populate_store(500, 64);
    for host in 0..4 {
        cluster.install_workload_client(
            host,
            WorkloadConfig {
                duration: SimDuration::from_millis(200),
                rate_qps: 5_000.0,
                write_ratio: 0.5,
                num_keys: 500,
                throughput_bucket: SimDuration::from_millis(200),
                ..Default::default()
            },
        );
    }
    cluster.sim.run_for(SimDuration::from_millis(250));
    let mut total_completed = 0;
    for host in 0..4 {
        let stats = cluster.workload_client(host).unwrap().agent_stats();
        assert_eq!(stats.version_regressions, 0, "host {host} saw a regression");
        total_completed += stats.completed;
    }
    assert!(
        total_completed > 1_000,
        "clients made progress: {total_completed}"
    );
}

#[test]
fn chain_replicas_converge_after_writes() {
    let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
    let key = Key::from_name("convergence");
    let chain = cluster.populate_key(key, &Value::from_u64(0));
    cluster.install_scripted_client(
        0,
        (1..=20)
            .map(|i| KvOp::Write(key, Value::from_u64(i)))
            .collect(),
    );
    cluster.sim.run_for(SimDuration::from_millis(100));
    assert!(cluster.scripted_client(0).unwrap().is_done());
    // Every replica stores the final value with the same sequence number.
    let mut versions = Vec::new();
    for switch_idx in 0..4 {
        let node = cluster.switch(switch_idx);
        let ip = Ipv4Addr::for_switch(switch_idx as u32);
        if !chain.contains(ip) {
            continue;
        }
        let kv = node.switch().kv();
        let slot = kv.lookup(&key).expect("chain member stores the key");
        assert_eq!(kv.read_value(slot).as_u64(), Some(20));
        versions.push(kv.seq(slot));
    }
    assert_eq!(versions.len(), 3);
    assert!(
        versions.windows(2).all(|w| w[0] == w[1]),
        "replicas agree: {versions:?}"
    );
}

#[test]
fn middle_switch_failure_heals_without_regressions() {
    let config = ClusterConfig {
        ring_switches: Some(3),
        controller: ControllerConfig {
            recovery_start_delay: SimDuration::from_secs(2),
            total_sync_duration: SimDuration::from_secs(4),
            replacement: Some(Ipv4Addr::for_switch(3)),
            recovery_groups: Some(10),
            ..ControllerConfig::default()
        },
        ..Default::default()
    };
    let mut cluster = NetChainCluster::testbed(config);
    cluster.populate_store(300, 64);
    cluster.install_workload_client(
        0,
        WorkloadConfig {
            duration: SimDuration::from_secs(12),
            rate_qps: 2_000.0,
            write_ratio: 0.5,
            num_keys: 300,
            throughput_bucket: SimDuration::from_secs(1),
            ..Default::default()
        },
    );
    cluster.fail_switch_at(SimTime::ZERO + SimDuration::from_secs(3), 1);
    cluster.sim.run_for(SimDuration::from_secs(14));

    let client = cluster.workload_client(0).unwrap();
    let stats = client.agent_stats();
    assert_eq!(stats.version_regressions, 0);
    // The controller completed recovery onto S3.
    let records = cluster.controller().records();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].replacement_ip, Ipv4Addr::for_switch(3));
    // Throughput in the final seconds is back near the plateau.
    let series = client.throughput().rate_series();
    let plateau: f64 = series.iter().take(3).map(|&(_, r)| r).sum::<f64>() / 3.0;
    let tail: f64 = series.iter().rev().take(2).map(|&(_, r)| r).sum::<f64>() / 2.0;
    assert!(
        tail > plateau * 0.8,
        "throughput should recover: plateau {plateau:.0}, tail {tail:.0}"
    );
    // The replacement switch now holds data.
    assert!(cluster.switch(3).switch().kv().store_size() > 0);
}

#[test]
fn loopback_udp_deployment_round_trips() {
    use netchain::net::{Deployment, DeploymentConfig};
    let mut deployment = Deployment::start(DeploymentConfig::default()).expect("loopback sockets");
    let key = Key::from_name("it/loopback");
    deployment.populate_key(key, &Value::from_u64(0));
    let mut client = deployment.client().expect("client");
    client.write(key, Value::from_u64(77)).expect("write");
    let read = client.read(key).expect("read");
    assert_eq!(read.value.as_u64(), Some(77));
    assert_eq!(client.agent_stats().version_regressions, 0);
}

#[test]
fn netchain_outperforms_baseline_on_identical_workload() {
    use netchain::baseline::{BaselineCluster, BaselineConfig, BaselineWorkload};
    let duration = SimDuration::from_millis(100);

    // NetChain: one open-loop client at 400 KQPS gets everything answered
    // (the simulated fabric and switches are nowhere near saturation).
    let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
    cluster.populate_store(1_000, 64);
    cluster.install_workload_client(
        0,
        WorkloadConfig {
            duration,
            rate_qps: 400_000.0,
            write_ratio: 0.1,
            num_keys: 1_000,
            throughput_bucket: duration,
            ..Default::default()
        },
    );
    cluster.sim.run_for(duration + SimDuration::from_millis(10));
    let netchain_completed = cluster.workload_client(0).unwrap().agent_stats().completed;

    // Baseline: closed-loop clients saturate well below that.
    // Baseline: enough closed-loop concurrency to saturate the servers.
    let workload = BaselineWorkload {
        duration,
        rate_qps: 0.0,
        closed_loop: 64,
        write_ratio: 0.1,
        num_keys: 1_000,
        throughput_bucket: duration,
        ..Default::default()
    };
    let mut baseline = BaselineCluster::new(
        BaselineConfig {
            clients: 1,
            ..Default::default()
        },
        workload,
    );
    baseline.populate_store(1_000, 64);
    baseline
        .sim
        .run_for(duration + SimDuration::from_millis(10));
    let baseline_completed = baseline.total_completed();

    assert!(
        netchain_completed > 2 * baseline_completed,
        "NetChain ({netchain_completed}) should clearly outpace the baseline ({baseline_completed})"
    );
}
