//! # netchain-baseline
//!
//! The server-based coordination baseline the paper compares against
//! (Apache ZooKeeper): a leader-based, quorum-replicated key-value store
//! running on ordinary servers, speaking a ZAB-style atomic broadcast over a
//! reliable (TCP-like) transport emulated on top of the lossy simulated
//! network.
//!
//! The goal is not to re-implement ZooKeeper feature-for-feature but to
//! reproduce the *performance structure* the paper measures:
//!
//! * reads are served locally by whichever server the client is attached to,
//!   so read throughput scales with the number of servers but is bounded by
//!   per-server CPU/IO service time;
//! * writes funnel through the leader, cost a proposal/ack/commit round among
//!   the servers, and are bounded by the leader's service time — hence the
//!   collapse from 230 KQPS (read-only) to 27 KQPS (write-only) in
//!   Figure 9(c);
//! * all traffic runs over a reliable in-order transport, so packet loss
//!   costs retransmission timeouts rather than a cheap client retry — hence
//!   the collapse under loss in Figure 9(d), where UDP-based NetChain barely
//!   notices;
//! * end-to-end latency includes kernel/network-stack overhead at both the
//!   client and the servers, calibrated to the paper's measured 170 µs reads
//!   and 2350 µs writes.
//!
//! The calibration constants live in [`cost`] and are clearly marked: they
//! come from the paper's own measurements of ZooKeeper 3.5.2 on the testbed,
//! because this reproduction has no access to that hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod cost;
pub mod message;
pub mod rtx;
pub mod server;

pub use client::{BaselineClient, BaselineWorkload};
pub use cluster::{BaselineCluster, BaselineConfig};
pub use cost::ServerCostModel;
pub use message::{AppMsg, BaselineMsg, ZkOp, ZkResult};
pub use rtx::Connection;
pub use server::ZkServer;
