//! Server cost model.
//!
//! A coordination server spends CPU and kernel time on every request it
//! touches: socket reads, deserialisation, transaction logging, quorum
//! bookkeeping, and the reply path. These per-request service times are what
//! bound a server-based system's throughput (the workload is
//! communication-heavy, §2.1), and they are the quantities this model
//! captures.
//!
//! The default numbers are **calibrated to the paper's own measurements** of
//! Apache ZooKeeper 3.5.2 on three 16-core servers (§8.1–§8.2):
//!
//! * read-only throughput ≈ 230 KQPS over three servers → ≈ 13 µs of
//!   per-server service time per read;
//! * write-only throughput ≈ 27 KQPS → ≈ 37 µs of leader service time per
//!   write (plus the quorum round);
//! * read latency ≈ 170 µs and write latency ≈ 2350 µs at low load → fixed
//!   client-stack plus commit overheads.
//!
//! They are deliberately exposed as plain fields so experiments can sweep or
//! ablate them.

use netchain_sim::SimDuration;

/// Per-request service times for a baseline coordination server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCostModel {
    /// CPU/IO time a server spends serving one read locally.
    pub read_service: SimDuration,
    /// CPU/IO time the leader spends per write (proposal creation, logging,
    /// commit bookkeeping, reply).
    pub leader_write_service: SimDuration,
    /// CPU/IO time a follower spends per write (logging + ack).
    pub follower_write_service: SimDuration,
    /// Fixed client-side stack overhead added to every request (kernel
    /// socket path on the client machine; NetChain avoids this with DPDK).
    pub client_overhead: SimDuration,
    /// Fixed extra latency of the commit path (fsync/batching delays) added
    /// to writes beyond the quorum round trips.
    pub commit_overhead: SimDuration,
}

impl Default for ServerCostModel {
    fn default() -> Self {
        Self::zookeeper_calibrated()
    }
}

impl ServerCostModel {
    /// The ZooKeeper-3.5.2 calibration described in the module docs.
    pub fn zookeeper_calibrated() -> Self {
        ServerCostModel {
            read_service: SimDuration::from_micros(13),
            leader_write_service: SimDuration::from_micros(37),
            follower_write_service: SimDuration::from_micros(15),
            client_overhead: SimDuration::from_micros(150),
            commit_overhead: SimDuration::from_micros(2200),
        }
    }

    /// An idealised fast server (for ablations: how much of the gap is
    /// protocol structure vs server speed).
    pub fn fast_server() -> Self {
        ServerCostModel {
            read_service: SimDuration::from_micros(2),
            leader_write_service: SimDuration::from_micros(5),
            follower_write_service: SimDuration::from_micros(2),
            client_overhead: SimDuration::from_micros(10),
            commit_overhead: SimDuration::from_micros(20),
        }
    }

    /// Theoretical read-only saturation throughput of `servers` servers, in
    /// queries per second.
    pub fn max_read_qps(&self, servers: usize) -> f64 {
        servers as f64 / self.read_service.as_secs_f64()
    }

    /// Theoretical write-only saturation throughput (leader bound), in
    /// queries per second.
    pub fn max_write_qps(&self) -> f64 {
        1.0 / self.leader_write_service.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_order_of_magnitude() {
        let model = ServerCostModel::zookeeper_calibrated();
        let reads = model.max_read_qps(3);
        let writes = model.max_write_qps();
        assert!((200_000.0..300_000.0).contains(&reads), "read cap {reads}");
        assert!((20_000.0..40_000.0).contains(&writes), "write cap {writes}");
    }

    #[test]
    fn fast_server_is_faster() {
        let zk = ServerCostModel::zookeeper_calibrated();
        let fast = ServerCostModel::fast_server();
        assert!(fast.max_read_qps(3) > zk.max_read_qps(3));
        assert!(fast.max_write_qps() > zk.max_write_qps());
    }
}
