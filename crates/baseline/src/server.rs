//! The baseline coordination server: a ZAB-style leader/follower replica.
//!
//! Reads are served locally by whichever server the client contacted. Writes
//! are sent to the leader, which assigns a transaction id, proposes to the
//! followers, commits once a majority has acknowledged, and replies to the
//! client. Every request costs server CPU time ([`ServerCostModel`]), modelled
//! by a single busy-until queue per server — the same first-order model that
//! explains why ZooKeeper saturates at a couple hundred KQPS while a switch
//! ASIC does billions.

use crate::cost::ServerCostModel;
use crate::message::{AppMsg, BaselineMsg, ZkOp, ZkResult, ZkStore};
use crate::rtx::Connection;
use netchain_sim::{Context, Node, NodeId, SimDuration, SimTime, TimerToken};
use std::any::Any;
use std::collections::{HashMap, HashSet};

const TIMER_RETX: TimerToken = 1;
const TIMER_DEFER: TimerToken = 2;

#[derive(Debug)]
struct PendingWrite {
    client: NodeId,
    request_id: u64,
    op: ZkOp,
    acks: HashSet<NodeId>,
    committed: bool,
}

/// Counters kept by a server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Read requests served locally.
    pub reads: u64,
    /// Write requests sequenced (leader only).
    pub writes: u64,
    /// Proposals applied as a follower.
    pub proposals: u64,
    /// Commits completed (leader only).
    pub commits: u64,
    /// Requests rejected because a follower received a write.
    pub misrouted_writes: u64,
}

/// A baseline (ZooKeeper-like) server node.
pub struct ZkServer {
    is_leader: bool,
    leader: NodeId,
    peers: Vec<NodeId>,
    quorum: usize,
    cost: ServerCostModel,
    store: ZkStore,
    conns: HashMap<NodeId, Connection>,
    busy_until: SimTime,
    next_zxid: u64,
    pending: HashMap<u64, PendingWrite>,
    deferred: Vec<(SimTime, NodeId, AppMsg)>,
    stats: ServerStats,
}

impl ZkServer {
    /// Creates a server.
    ///
    /// `peers` are the *other* servers of the ensemble; `leader` is the node
    /// id of the leader (possibly this node); `ensemble_size` determines the
    /// majority quorum.
    pub fn new(
        self_is_leader: bool,
        leader: NodeId,
        peers: Vec<NodeId>,
        ensemble_size: usize,
        cost: ServerCostModel,
    ) -> Self {
        ZkServer {
            is_leader: self_is_leader,
            leader,
            peers,
            quorum: ensemble_size / 2 + 1,
            cost,
            store: ZkStore::new(),
            conns: HashMap::new(),
            busy_until: SimTime::ZERO,
            next_zxid: 1,
            pending: HashMap::new(),
            deferred: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Number of keys currently stored.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Pre-populates the store (experiment setup).
    pub fn populate(&mut self, key: u64, value: Vec<u8>) {
        self.store.apply(&ZkOp::Write { key, value });
    }

    fn occupy(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        self.busy_until
    }

    fn transmit(&mut self, to: NodeId, msg: AppMsg, ctx: &mut Context<BaselineMsg>) {
        let conn = self.conns.entry(to).or_insert_with(Connection::datacenter);
        let segment = conn.send(ctx.now(), msg);
        ctx.send(to, BaselineMsg::Segment(segment));
    }

    fn defer(&mut self, at: SimTime, to: NodeId, msg: AppMsg, ctx: &mut Context<BaselineMsg>) {
        self.deferred.push((at, to, msg));
        ctx.set_timer(at.since(ctx.now()), TIMER_DEFER);
    }

    fn flush_deferred(&mut self, ctx: &mut Context<BaselineMsg>) {
        let now = ctx.now();
        let mut due = Vec::new();
        self.deferred.retain(|(at, to, msg)| {
            if *at <= now {
                due.push((*to, msg.clone()));
                false
            } else {
                true
            }
        });
        for (to, msg) in due {
            self.transmit(to, msg, ctx);
        }
    }

    fn handle_app(&mut self, from: NodeId, msg: AppMsg, ctx: &mut Context<BaselineMsg>) {
        let now = ctx.now();
        match msg {
            AppMsg::Request { request_id, op } if !op.is_write() => {
                self.stats.reads += 1;
                let done_at = self.occupy(now, self.cost.read_service);
                let result = self.store.apply(&op);
                self.defer(done_at, from, AppMsg::Reply { request_id, result }, ctx);
            }
            AppMsg::Request { request_id, op } => {
                if !self.is_leader {
                    // Clients address writes to the leader; a write landing on
                    // a follower is a client bug in this model.
                    self.stats.misrouted_writes += 1;
                    self.transmit(
                        from,
                        AppMsg::Reply {
                            request_id,
                            result: ZkResult::NotFound,
                        },
                        ctx,
                    );
                    return;
                }
                self.stats.writes += 1;
                let zxid = self.next_zxid;
                self.next_zxid += 1;
                self.pending.insert(
                    zxid,
                    PendingWrite {
                        client: from,
                        request_id,
                        op: op.clone(),
                        acks: HashSet::new(),
                        committed: false,
                    },
                );
                let done_at = self.occupy(now, self.cost.leader_write_service);
                for peer in self.peers.clone() {
                    self.defer(
                        done_at,
                        peer,
                        AppMsg::Propose {
                            zxid,
                            op: op.clone(),
                        },
                        ctx,
                    );
                }
                // A single-server "ensemble" commits immediately.
                if self.quorum <= 1 {
                    self.commit(zxid, ctx);
                }
            }
            AppMsg::Propose { zxid, op } => {
                self.stats.proposals += 1;
                let done_at = self.occupy(now, self.cost.follower_write_service);
                self.store.apply(&op);
                self.defer(done_at, self.leader, AppMsg::Ack { zxid }, ctx);
            }
            AppMsg::Ack { zxid } => {
                let quorum = self.quorum;
                let ready = {
                    let Some(pending) = self.pending.get_mut(&zxid) else {
                        return;
                    };
                    pending.acks.insert(from);
                    // The leader's own copy counts towards the quorum.
                    !pending.committed && pending.acks.len() + 1 >= quorum
                };
                if ready {
                    self.commit(zxid, ctx);
                }
            }
            AppMsg::Commit { .. } => {
                // Followers already applied at proposal time in this model.
            }
            AppMsg::Reply { .. } => {
                // Servers do not receive replies.
            }
        }
    }

    fn commit(&mut self, zxid: u64, ctx: &mut Context<BaselineMsg>) {
        let Some(pending) = self.pending.get_mut(&zxid) else {
            return;
        };
        pending.committed = true;
        let client = pending.client;
        let request_id = pending.request_id;
        let op = pending.op.clone();
        self.stats.commits += 1;
        let result = self.store.apply(&op);
        let reply_at = ctx.now() + self.cost.commit_overhead;
        for peer in self.peers.clone() {
            self.defer(reply_at, peer, AppMsg::Commit { zxid }, ctx);
        }
        self.defer(reply_at, client, AppMsg::Reply { request_id, result }, ctx);
        self.pending.remove(&zxid);
    }
}

impl Node<BaselineMsg> for ZkServer {
    fn on_start(&mut self, ctx: &mut Context<BaselineMsg>) {
        ctx.set_timer(SimDuration::from_millis(1), TIMER_RETX);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<BaselineMsg>) {
        match token {
            TIMER_RETX => {
                let now = ctx.now();
                let mut to_send = Vec::new();
                for (&peer, conn) in self.conns.iter_mut() {
                    for segment in conn.poll_retransmits(now) {
                        to_send.push((peer, segment));
                    }
                }
                for (peer, segment) in to_send {
                    ctx.send(peer, BaselineMsg::Segment(segment));
                }
                ctx.set_timer(SimDuration::from_millis(1), TIMER_RETX);
            }
            TIMER_DEFER => self.flush_deferred(ctx),
            _ => {}
        }
    }

    fn on_message(&mut self, from: NodeId, msg: BaselineMsg, ctx: &mut Context<BaselineMsg>) {
        let BaselineMsg::Segment(segment) = msg;
        let conn = self
            .conns
            .entry(from)
            .or_insert_with(Connection::datacenter);
        let (delivered, ack) = conn.on_segment(segment);
        if let Some(ack) = ack {
            ctx.send(from, BaselineMsg::Segment(ack));
        }
        for app in delivered {
            self.handle_app(from, app, ctx);
        }
    }

    fn name(&self) -> String {
        if self.is_leader {
            "zk-leader".to_string()
        } else {
            "zk-follower".to_string()
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_math() {
        let s = ZkServer::new(
            true,
            NodeId(0),
            vec![NodeId(1), NodeId(2)],
            3,
            ServerCostModel::default(),
        );
        assert_eq!(s.quorum, 2);
        let s5 = ZkServer::new(
            true,
            NodeId(0),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
            5,
            ServerCostModel::default(),
        );
        assert_eq!(s5.quorum, 3);
    }

    #[test]
    fn populate_and_store_len() {
        let mut s = ZkServer::new(true, NodeId(0), vec![], 1, ServerCostModel::default());
        s.populate(1, vec![1, 2, 3]);
        s.populate(2, vec![4]);
        assert_eq!(s.store_len(), 2);
    }
}
