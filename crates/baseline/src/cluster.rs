//! Assembly of a baseline (ZooKeeper-like) deployment: an ensemble of servers
//! in a full mesh, plus clients connected to every server.
//!
//! The topology deliberately uses direct host-to-host links with datacenter
//! latencies instead of modelling the switch fabric: the baseline's
//! bottleneck is host processing and the reliable transport, not the fabric,
//! and the paper's comparison hinges on exactly that. (The NetChain side, by
//! contrast, is simulated hop by hop because its behaviour *is* the fabric.)

use crate::client::{BaselineClient, BaselineWorkload};
use crate::cost::ServerCostModel;
use crate::message::BaselineMsg;
use crate::server::ZkServer;
use netchain_sim::{LinkParams, NodeId, SimConfig, SimDuration, Simulator, TopologyBuilder};

/// Configuration of a baseline deployment.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Number of servers in the ensemble (the paper uses 3).
    pub servers: usize,
    /// Number of client machines.
    pub clients: usize,
    /// Server cost model.
    pub cost: ServerCostModel,
    /// Link parameters between every pair of machines.
    pub link: LinkParams,
    /// Simulator configuration.
    pub sim: SimConfig,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            servers: 3,
            clients: 1,
            cost: ServerCostModel::zookeeper_calibrated(),
            link: LinkParams::datacenter_40g().with_latency(SimDuration::from_micros(5)),
            sim: SimConfig::default(),
        }
    }
}

/// A ready-to-run baseline deployment.
pub struct BaselineCluster {
    /// The simulator.
    pub sim: Simulator<BaselineMsg>,
    /// Server nodes (index 0 is the leader).
    pub servers: Vec<NodeId>,
    /// Client nodes.
    pub clients: Vec<NodeId>,
    config: BaselineConfig,
}

impl BaselineCluster {
    /// Builds the deployment with every client running `workload`.
    pub fn new(config: BaselineConfig, workload: BaselineWorkload) -> Self {
        assert!(config.servers >= 1, "need at least one server");
        let mut b = TopologyBuilder::new();
        let servers: Vec<NodeId> = (0..config.servers)
            .map(|i| b.add_host(format!("zk{i}")))
            .collect();
        let clients: Vec<NodeId> = (0..config.clients)
            .map(|i| b.add_host(format!("client{i}")))
            .collect();
        // Full mesh among servers.
        for i in 0..servers.len() {
            for j in (i + 1)..servers.len() {
                b.add_link(servers[i], servers[j], config.link);
            }
        }
        // Every client connects to every server.
        for &client in &clients {
            for &server in &servers {
                b.add_link(client, server, config.link);
            }
        }
        let topology = b.build();
        let mut sim = Simulator::new(topology, config.sim);

        let leader = servers[0];
        for (i, &node) in servers.iter().enumerate() {
            let peers: Vec<NodeId> = servers.iter().copied().filter(|&p| p != node).collect();
            let server = ZkServer::new(i == 0, leader, peers, servers.len(), config.cost);
            sim.install_node(node, Box::new(server));
        }
        for (i, &node) in clients.iter().enumerate() {
            // Spread client reads across the ensemble.
            let read_server = servers[i % servers.len()];
            let client = BaselineClient::new(read_server, leader, config.cost, workload);
            sim.install_node(node, Box::new(client));
        }
        BaselineCluster {
            sim,
            servers,
            clients,
            config,
        }
    }

    /// The configuration used to build the cluster.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Pre-populates every server with `count` keys of `value_size` bytes.
    pub fn populate_store(&mut self, count: u64, value_size: usize) {
        for &node in &self.servers.clone() {
            let server = self
                .sim
                .node_as_mut::<ZkServer>(node)
                .expect("server nodes are ZkServer");
            for key in 0..count {
                server.populate(key, vec![0xcd; value_size]);
            }
        }
    }

    /// Borrow a client for inspection.
    pub fn client(&self, index: usize) -> &BaselineClient {
        self.sim
            .node_as::<BaselineClient>(self.clients[index])
            .expect("client nodes are BaselineClient")
    }

    /// Mutably borrow a client (latency percentiles need `&mut`).
    pub fn client_mut(&mut self, index: usize) -> &mut BaselineClient {
        let node = self.clients[index];
        self.sim
            .node_as_mut::<BaselineClient>(node)
            .expect("client nodes are BaselineClient")
    }

    /// Borrow a server for inspection.
    pub fn server(&self, index: usize) -> &ZkServer {
        self.sim
            .node_as::<ZkServer>(self.servers[index])
            .expect("server nodes are ZkServer")
    }

    /// Total completed queries across all clients.
    pub fn total_completed(&self) -> u64 {
        (0..self.clients.len())
            .map(|i| self.client(i).completed())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_sim::SimDuration;

    #[test]
    fn read_write_mix_completes_and_respects_roles() {
        let workload = BaselineWorkload {
            duration: SimDuration::from_millis(200),
            rate_qps: 0.0,
            closed_loop: 4,
            write_ratio: 0.5,
            num_keys: 100,
            ..Default::default()
        };
        let mut cluster = BaselineCluster::new(BaselineConfig::default(), workload);
        cluster.populate_store(100, 64);
        cluster.sim.run_for(SimDuration::from_millis(400));
        let completed = cluster.total_completed();
        assert!(completed > 10, "expected progress, got {completed}");
        // Only the leader sequences writes; followers see proposals.
        assert!(cluster.server(0).stats().writes > 0);
        assert_eq!(cluster.server(1).stats().writes, 0);
        assert!(cluster.server(1).stats().proposals > 0);
        assert_eq!(cluster.client(0).errors(), 0);
    }

    #[test]
    fn write_latency_exceeds_read_latency() {
        let workload = BaselineWorkload {
            duration: SimDuration::from_millis(300),
            rate_qps: 1_000.0,
            write_ratio: 0.5,
            num_keys: 50,
            ..Default::default()
        };
        let mut cluster = BaselineCluster::new(BaselineConfig::default(), workload);
        cluster.populate_store(50, 64);
        cluster.sim.run_for(SimDuration::from_millis(600));
        let client = cluster.client_mut(0);
        let read_p50 = client.read_latency().median().expect("reads completed");
        let write_p50 = client.write_latency().median().expect("writes completed");
        assert!(
            write_p50 > read_p50,
            "writes ({write_p50}) must be slower than reads ({read_p50})"
        );
        // Calibration sanity: reads are hundreds of µs, writes a few ms.
        assert!(read_p50.as_micros_f64() > 100.0);
        assert!(write_p50.as_micros_f64() > 1_000.0);
    }

    #[test]
    fn loss_hurts_throughput() {
        let workload = BaselineWorkload {
            duration: SimDuration::from_millis(300),
            rate_qps: 0.0,
            closed_loop: 8,
            write_ratio: 0.0,
            num_keys: 50,
            ..Default::default()
        };
        let run = |loss: f64| {
            let mut config = BaselineConfig::default();
            config.link = config.link.with_loss(loss);
            let mut cluster = BaselineCluster::new(config, workload);
            cluster.populate_store(50, 64);
            cluster.sim.run_for(SimDuration::from_millis(600));
            cluster.total_completed()
        };
        let clean = run(0.0);
        let lossy = run(0.05);
        assert!(
            lossy * 2 < clean,
            "5% loss should at least halve closed-loop throughput (clean={clean}, lossy={lossy})"
        );
    }
}
