//! Messages exchanged in the baseline system: application-level requests,
//! replies and replication traffic, all carried inside reliable-transport
//! segments.

use netchain_sim::Message;
use std::collections::BTreeMap;

/// Operations the baseline key-value store supports. Keys and values are kept
//  /// as compact integers/bytes: the baseline only needs enough fidelity for the
/// comparison workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkOp {
    /// Read the value of a key.
    Read {
        /// The key.
        key: u64,
    },
    /// Write the value of a key (creates it if absent).
    Write {
        /// The key.
        key: u64,
        /// The value.
        value: Vec<u8>,
    },
    /// Create an ephemeral node if absent — the ZooKeeper idiom for acquiring
    /// an exclusive lock (§8.5). Fails if the key already exists.
    Create {
        /// The key (lock name).
        key: u64,
        /// Owner id stored in the node.
        owner: u64,
    },
    /// Delete a key — releasing a lock.
    Delete {
        /// The key.
        key: u64,
    },
}

impl ZkOp {
    /// True for operations that must go through the leader and the quorum.
    pub fn is_write(&self) -> bool {
        !matches!(self, ZkOp::Read { .. })
    }

    /// The key the operation touches.
    pub fn key(&self) -> u64 {
        match self {
            ZkOp::Read { key }
            | ZkOp::Write { key, .. }
            | ZkOp::Create { key, .. }
            | ZkOp::Delete { key } => *key,
        }
    }

    /// Approximate serialized size in bytes (for link accounting).
    pub fn wire_size(&self) -> usize {
        match self {
            ZkOp::Read { .. } | ZkOp::Delete { .. } => 24,
            ZkOp::Create { .. } => 32,
            ZkOp::Write { value, .. } => 24 + value.len(),
        }
    }
}

/// The outcome of a baseline operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkResult {
    /// Success; reads carry the value.
    Ok(Option<Vec<u8>>),
    /// The key does not exist.
    NotFound,
    /// A `Create` found the key already present (lock already held).
    AlreadyExists,
}

impl ZkResult {
    /// True for `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, ZkResult::Ok(_))
    }
}

/// Application messages carried inside transport segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppMsg {
    /// Client → server request.
    Request {
        /// Client-assigned id echoed in the reply.
        request_id: u64,
        /// The operation.
        op: ZkOp,
    },
    /// Server → client reply.
    Reply {
        /// Echoed request id.
        request_id: u64,
        /// The outcome.
        result: ZkResult,
    },
    /// Leader → follower proposal (ZAB "PROPOSE").
    Propose {
        /// Transaction id (monotone at the leader).
        zxid: u64,
        /// The write being replicated.
        op: ZkOp,
    },
    /// Follower → leader acknowledgement (ZAB "ACK").
    Ack {
        /// The acknowledged transaction.
        zxid: u64,
    },
    /// Leader → follower commit (ZAB "COMMIT").
    Commit {
        /// The committed transaction.
        zxid: u64,
    },
}

impl AppMsg {
    /// Approximate serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            AppMsg::Request { op, .. } => 24 + op.wire_size(),
            AppMsg::Reply { result, .. } => {
                24 + match result {
                    ZkResult::Ok(Some(v)) => v.len(),
                    _ => 0,
                }
            }
            AppMsg::Propose { op, .. } => 24 + op.wire_size(),
            AppMsg::Ack { .. } | AppMsg::Commit { .. } => 20,
        }
    }
}

/// One reliable-transport segment: either carries an application message with
/// a sequence number, or is a pure acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Sequence number of the carried payload (meaningless for pure acks).
    pub seq: u64,
    /// Cumulative acknowledgement: all sequence numbers `< ack` received.
    pub ack: u64,
    /// The payload, if this is a data segment.
    pub payload: Option<AppMsg>,
}

impl Segment {
    /// Approximate on-wire size (TCP/IP-like 60-byte header overhead plus the
    /// payload).
    pub fn wire_size(&self) -> usize {
        60 + self.payload.as_ref().map_or(0, AppMsg::wire_size)
    }
}

/// The message type of the baseline simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineMsg {
    /// A transport segment between two endpoints.
    Segment(Segment),
}

impl Message for BaselineMsg {
    fn wire_size(&self) -> usize {
        match self {
            BaselineMsg::Segment(s) => s.wire_size(),
        }
    }
}

/// A tiny in-memory key-value store with ZooKeeper-flavoured semantics,
/// shared by the servers.
#[derive(Debug, Clone, Default)]
pub struct ZkStore {
    entries: BTreeMap<u64, Vec<u8>>,
}

impl ZkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies a committed write operation.
    pub fn apply(&mut self, op: &ZkOp) -> ZkResult {
        match op {
            ZkOp::Read { key } => match self.entries.get(key) {
                Some(v) => ZkResult::Ok(Some(v.clone())),
                None => ZkResult::NotFound,
            },
            ZkOp::Write { key, value } => {
                self.entries.insert(*key, value.clone());
                ZkResult::Ok(None)
            }
            ZkOp::Create { key, owner } => {
                if self.entries.contains_key(key) {
                    ZkResult::AlreadyExists
                } else {
                    self.entries.insert(*key, owner.to_be_bytes().to_vec());
                    ZkResult::Ok(None)
                }
            }
            ZkOp::Delete { key } => {
                if self.entries.remove(key).is_some() {
                    ZkResult::Ok(None)
                } else {
                    ZkResult::NotFound
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification_and_sizes() {
        assert!(!ZkOp::Read { key: 1 }.is_write());
        assert!(ZkOp::Write {
            key: 1,
            value: vec![0; 8]
        }
        .is_write());
        assert!(ZkOp::Create { key: 1, owner: 2 }.is_write());
        assert!(ZkOp::Delete { key: 1 }.is_write());
        assert_eq!(ZkOp::Read { key: 1 }.key(), 1);
        assert!(
            ZkOp::Write {
                key: 1,
                value: vec![0; 64]
            }
            .wire_size()
                > 64
        );
        let seg = Segment {
            seq: 0,
            ack: 0,
            payload: Some(AppMsg::Ack { zxid: 1 }),
        };
        assert_eq!(BaselineMsg::Segment(seg).wire_size(), 80);
    }

    #[test]
    fn store_semantics() {
        let mut store = ZkStore::new();
        assert!(store.is_empty());
        assert_eq!(store.apply(&ZkOp::Read { key: 1 }), ZkResult::NotFound);
        assert_eq!(
            store.apply(&ZkOp::Write {
                key: 1,
                value: vec![9]
            }),
            ZkResult::Ok(None)
        );
        assert_eq!(
            store.apply(&ZkOp::Read { key: 1 }),
            ZkResult::Ok(Some(vec![9]))
        );
        // Create-if-absent behaves like a lock.
        assert_eq!(
            store.apply(&ZkOp::Create { key: 2, owner: 7 }),
            ZkResult::Ok(None)
        );
        assert_eq!(
            store.apply(&ZkOp::Create { key: 2, owner: 8 }),
            ZkResult::AlreadyExists
        );
        assert_eq!(store.apply(&ZkOp::Delete { key: 2 }), ZkResult::Ok(None));
        assert_eq!(store.apply(&ZkOp::Delete { key: 2 }), ZkResult::NotFound);
        assert_eq!(store.len(), 1);
        assert!(ZkResult::Ok(None).is_ok());
        assert!(!ZkResult::NotFound.is_ok());
    }
}
