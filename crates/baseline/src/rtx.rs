//! A reliable, in-order transport emulation (the role TCP plays for the real
//! ZooKeeper): cumulative acknowledgements, retransmission on timeout, and
//! in-order delivery with buffering of out-of-order arrivals.
//!
//! This is intentionally not a TCP implementation — no congestion control, no
//! flow control — because the effect the comparison needs is narrower: under
//! packet loss, a reliable transport stalls on retransmission timeouts, while
//! NetChain's UDP-plus-client-retry design keeps flowing (Figure 9(d)).

use crate::message::{AppMsg, Segment};
use netchain_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One direction pair of a reliable connection between two endpoints.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Next sequence number to assign to outgoing data.
    next_seq: u64,
    /// Unacknowledged outgoing segments, keyed by sequence number.
    unacked: BTreeMap<u64, (AppMsg, SimTime)>,
    /// Next sequence number expected from the peer.
    expected: u64,
    /// Out-of-order segments buffered until the gap fills.
    reorder: BTreeMap<u64, AppMsg>,
    /// Retransmission timeout.
    rto: SimDuration,
    /// Retransmissions performed (diagnostics).
    pub retransmissions: u64,
}

impl Connection {
    /// Creates a connection with the given retransmission timeout.
    pub fn new(rto: SimDuration) -> Self {
        Connection {
            next_seq: 0,
            unacked: BTreeMap::new(),
            expected: 0,
            reorder: BTreeMap::new(),
            rto,
            retransmissions: 0,
        }
    }

    /// A connection with a 2 ms RTO — aggressive for TCP, generous for a
    /// datacenter RTT, so the baseline is if anything flattered.
    pub fn datacenter() -> Self {
        Self::new(SimDuration::from_millis(2))
    }

    /// Number of segments awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Queues `msg` for reliable delivery and returns the segment to
    /// transmit now.
    pub fn send(&mut self, now: SimTime, msg: AppMsg) -> Segment {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.insert(seq, (msg.clone(), now));
        Segment {
            seq,
            ack: self.expected,
            payload: Some(msg),
        }
    }

    /// Processes an incoming segment. Returns the application messages that
    /// became deliverable in order, plus an acknowledgement segment to send
    /// back if the segment carried data.
    pub fn on_segment(&mut self, segment: Segment) -> (Vec<AppMsg>, Option<Segment>) {
        // Cumulative ack: everything below `ack` is delivered at the peer.
        let acked: Vec<u64> = self
            .unacked
            .range(..segment.ack)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in acked {
            self.unacked.remove(&seq);
        }

        let mut delivered = Vec::new();
        let mut ack_needed = false;
        if let Some(payload) = segment.payload {
            ack_needed = true;
            if segment.seq >= self.expected {
                self.reorder.insert(segment.seq, payload);
            }
            // Drain the contiguous prefix.
            while let Some(msg) = self.reorder.remove(&self.expected) {
                delivered.push(msg);
                self.expected += 1;
            }
        }
        let ack = if ack_needed {
            Some(Segment {
                seq: 0,
                ack: self.expected,
                payload: None,
            })
        } else {
            None
        };
        (delivered, ack)
    }

    /// Returns segments whose retransmission timeout expired, refreshing
    /// their timers.
    pub fn poll_retransmits(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        for (&seq, (msg, sent_at)) in self.unacked.iter_mut() {
            if now.since(*sent_at) >= self.rto {
                *sent_at = now;
                self.retransmissions += 1;
                out.push(Segment {
                    seq,
                    ack: self.expected,
                    payload: Some(msg.clone()),
                });
            }
        }
        out
    }

    /// The earliest instant at which a retransmission could be due.
    pub fn next_retransmit_deadline(&self) -> Option<SimTime> {
        self.unacked
            .values()
            .map(|(_, sent_at)| *sent_at + self.rto)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64) -> AppMsg {
        AppMsg::Ack { zxid: id }
    }

    #[test]
    fn in_order_delivery_and_acks() {
        let mut a = Connection::datacenter();
        let mut b = Connection::datacenter();
        let s1 = a.send(SimTime::ZERO, msg(1));
        let s2 = a.send(SimTime::ZERO, msg(2));
        let (d1, ack1) = b.on_segment(s1);
        assert_eq!(d1, vec![msg(1)]);
        let (d2, _ack2) = b.on_segment(s2);
        assert_eq!(d2, vec![msg(2)]);
        // Ack flows back and clears the sender's buffer.
        assert_eq!(a.in_flight(), 2);
        let (none, no_ack) = a.on_segment(ack1.unwrap());
        assert!(none.is_empty());
        assert!(no_ack.is_none());
        assert_eq!(a.in_flight(), 1);
    }

    #[test]
    fn out_of_order_segments_are_reordered() {
        let mut a = Connection::datacenter();
        let mut b = Connection::datacenter();
        let s1 = a.send(SimTime::ZERO, msg(1));
        let s2 = a.send(SimTime::ZERO, msg(2));
        let s3 = a.send(SimTime::ZERO, msg(3));
        let (d, _) = b.on_segment(s3);
        assert!(d.is_empty(), "gap not yet filled");
        let (d, _) = b.on_segment(s1);
        assert_eq!(d, vec![msg(1)]);
        let (d, _) = b.on_segment(s2);
        assert_eq!(d, vec![msg(2), msg(3)]);
    }

    #[test]
    fn duplicate_segments_deliver_once() {
        let mut a = Connection::datacenter();
        let mut b = Connection::datacenter();
        let s1 = a.send(SimTime::ZERO, msg(1));
        let (d, _) = b.on_segment(s1.clone());
        assert_eq!(d.len(), 1);
        let (d, ack) = b.on_segment(s1);
        assert!(d.is_empty(), "duplicate must not deliver twice");
        assert!(ack.is_some(), "duplicates still elicit an ack");
    }

    #[test]
    fn lost_segments_are_retransmitted_after_rto() {
        let mut a = Connection::new(SimDuration::from_millis(2));
        let _lost = a.send(SimTime::ZERO, msg(7));
        assert!(a
            .poll_retransmits(SimTime::ZERO + SimDuration::from_millis(1))
            .is_empty());
        let retx = a.poll_retransmits(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].payload, Some(msg(7)));
        assert_eq!(a.retransmissions, 1);
        // The timer refreshes, so an immediate re-poll is quiet.
        assert!(a
            .poll_retransmits(SimTime::ZERO + SimDuration::from_millis(2))
            .is_empty());
        assert_eq!(
            a.next_retransmit_deadline(),
            Some(SimTime::ZERO + SimDuration::from_millis(4))
        );
    }
}
