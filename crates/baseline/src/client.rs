//! The baseline client: issues reads to its local server and writes to the
//! leader over the reliable transport, with the same open-/closed-loop
//! workload shape as the NetChain workload client so the two systems are
//! measured identically.

use crate::cost::ServerCostModel;
use crate::message::{AppMsg, BaselineMsg, ZkOp, ZkResult};
use crate::rtx::Connection;
use netchain_sim::{
    Context, LatencyStats, Node, NodeId, SimDuration, SimTime, ThroughputSeries, TimerToken,
};
use std::any::Any;
use std::collections::HashMap;

const TIMER_ARRIVAL: TimerToken = 1;
const TIMER_RETX: TimerToken = 2;

/// Workload parameters for a baseline client (mirrors
/// `netchain_core::WorkloadConfig`).
#[derive(Debug, Clone, Copy)]
pub struct BaselineWorkload {
    /// When to start issuing queries.
    pub start: SimDuration,
    /// For how long to keep issuing queries.
    pub duration: SimDuration,
    /// Offered rate in queries per second; zero means closed loop.
    pub rate_qps: f64,
    /// Outstanding queries to maintain in closed-loop mode.
    pub closed_loop: usize,
    /// Fraction of writes.
    pub write_ratio: f64,
    /// Written value size in bytes.
    pub value_size: usize,
    /// Number of distinct keys.
    pub num_keys: u64,
    /// Throughput time-series bucket width.
    pub throughput_bucket: SimDuration,
}

impl Default for BaselineWorkload {
    fn default() -> Self {
        BaselineWorkload {
            start: SimDuration::ZERO,
            duration: SimDuration::from_secs(1),
            rate_qps: 0.0,
            closed_loop: 8,
            write_ratio: 0.01,
            value_size: 64,
            num_keys: 20_000,
            throughput_bucket: SimDuration::from_secs(1),
        }
    }
}

impl BaselineWorkload {
    fn end(&self) -> SimTime {
        SimTime::ZERO + self.start + self.duration
    }
}

#[derive(Debug, Clone, Copy)]
struct OutstandingRequest {
    sent_at: SimTime,
    is_write: bool,
}

/// A baseline workload client node.
pub struct BaselineClient {
    read_server: NodeId,
    leader: NodeId,
    cost: ServerCostModel,
    workload: BaselineWorkload,
    conns: HashMap<NodeId, Connection>,
    outstanding: HashMap<u64, OutstandingRequest>,
    next_request_id: u64,
    throughput: ThroughputSeries,
    read_latency: LatencyStats,
    write_latency: LatencyStats,
    issued: u64,
    completed: u64,
    errors: u64,
}

impl BaselineClient {
    /// Creates a client that reads from `read_server` and writes to `leader`.
    pub fn new(
        read_server: NodeId,
        leader: NodeId,
        cost: ServerCostModel,
        workload: BaselineWorkload,
    ) -> Self {
        BaselineClient {
            read_server,
            leader,
            cost,
            workload,
            conns: HashMap::new(),
            outstanding: HashMap::new(),
            next_request_id: 1,
            throughput: ThroughputSeries::new(workload.throughput_bucket),
            read_latency: LatencyStats::new(),
            write_latency: LatencyStats::new(),
            issued: 0,
            completed: 0,
            errors: 0,
        }
    }

    /// Queries issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Queries completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Replies indicating an error status.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Completed-query throughput series.
    pub fn throughput(&self) -> &ThroughputSeries {
        &self.throughput
    }

    /// Read latency statistics.
    pub fn read_latency(&mut self) -> &mut LatencyStats {
        &mut self.read_latency
    }

    /// Write latency statistics.
    pub fn write_latency(&mut self) -> &mut LatencyStats {
        &mut self.write_latency
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= SimTime::ZERO + self.workload.start && now < self.workload.end()
    }

    fn transmit(&mut self, to: NodeId, msg: AppMsg, ctx: &mut Context<BaselineMsg>) {
        let conn = self.conns.entry(to).or_insert_with(Connection::datacenter);
        let segment = conn.send(ctx.now(), msg);
        ctx.send(to, BaselineMsg::Segment(segment));
    }

    fn issue_one(&mut self, ctx: &mut Context<BaselineMsg>) {
        let key = ctx.random_below(self.workload.num_keys.max(1));
        let is_write = ctx.random_f64() < self.workload.write_ratio;
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let (target, op) = if is_write {
            (
                self.leader,
                ZkOp::Write {
                    key,
                    value: vec![0xab; self.workload.value_size],
                },
            )
        } else {
            (self.read_server, ZkOp::Read { key })
        };
        self.outstanding.insert(
            request_id,
            OutstandingRequest {
                sent_at: ctx.now(),
                is_write,
            },
        );
        self.issued += 1;
        self.transmit(target, AppMsg::Request { request_id, op }, ctx);
    }

    fn fill_closed_loop(&mut self, ctx: &mut Context<BaselineMsg>) {
        while self.outstanding.len() < self.workload.closed_loop {
            self.issue_one(ctx);
        }
    }

    fn schedule_next_arrival(&self, ctx: &mut Context<BaselineMsg>) {
        if self.workload.rate_qps <= 0.0 {
            return;
        }
        let mean = SimDuration::from_secs_f64(1.0 / self.workload.rate_qps);
        let gap = ctx.random_exponential(mean);
        ctx.set_timer(gap, TIMER_ARRIVAL);
    }
}

impl Node<BaselineMsg> for BaselineClient {
    fn on_start(&mut self, ctx: &mut Context<BaselineMsg>) {
        ctx.set_timer(self.workload.start, TIMER_ARRIVAL);
        ctx.set_timer(SimDuration::from_millis(1), TIMER_RETX);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<BaselineMsg>) {
        match token {
            TIMER_ARRIVAL => {
                if !self.in_window(ctx.now()) {
                    return;
                }
                if self.workload.rate_qps > 0.0 {
                    self.issue_one(ctx);
                    self.schedule_next_arrival(ctx);
                } else {
                    self.fill_closed_loop(ctx);
                }
            }
            TIMER_RETX => {
                let now = ctx.now();
                let mut to_send = Vec::new();
                for (&peer, conn) in self.conns.iter_mut() {
                    for segment in conn.poll_retransmits(now) {
                        to_send.push((peer, segment));
                    }
                }
                for (peer, segment) in to_send {
                    ctx.send(peer, BaselineMsg::Segment(segment));
                }
                ctx.set_timer(SimDuration::from_millis(1), TIMER_RETX);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, from: NodeId, msg: BaselineMsg, ctx: &mut Context<BaselineMsg>) {
        let BaselineMsg::Segment(segment) = msg;
        let conn = self
            .conns
            .entry(from)
            .or_insert_with(Connection::datacenter);
        let (delivered, ack) = conn.on_segment(segment);
        if let Some(ack) = ack {
            ctx.send(from, BaselineMsg::Segment(ack));
        }
        for app in delivered {
            let AppMsg::Reply { request_id, result } = app else {
                continue;
            };
            let Some(outstanding) = self.outstanding.remove(&request_id) else {
                continue;
            };
            self.completed += 1;
            if !result.is_ok() && !matches!(result, ZkResult::NotFound) {
                self.errors += 1;
            }
            // Client-side kernel/stack overhead is added here: the paper's
            // ZooKeeper clients go through the socket API, unlike the DPDK
            // NetChain agent.
            let latency = ctx.now().since(outstanding.sent_at) + self.cost.client_overhead;
            if outstanding.is_write {
                self.write_latency.record(latency);
            } else {
                self.read_latency.record(latency);
            }
            self.throughput.record(ctx.now());
            if self.workload.rate_qps <= 0.0 && self.in_window(ctx.now()) {
                self.issue_one(ctx);
            }
        }
    }

    fn name(&self) -> String {
        "zk-client".to_string()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_window() {
        let w = BaselineWorkload {
            start: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(4),
            ..Default::default()
        };
        assert_eq!(w.end(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn client_initial_state() {
        let c = BaselineClient::new(
            NodeId(0),
            NodeId(0),
            ServerCostModel::default(),
            BaselineWorkload::default(),
        );
        assert_eq!(c.issued(), 0);
        assert_eq!(c.completed(), 0);
        assert_eq!(c.errors(), 0);
    }
}
