//! Figure 10: failure handling — the throughput time series of one client
//! while a chain switch fails, fast failover kicks in, and failure recovery
//! copies state to a replacement switch, with 1 vs 100 virtual groups.
//!
//! The experiment mirrors §8.4: a three-switch chain over S0–S2 with S3 held
//! out of the ring as the replacement, a 50 % write workload from H0, failure
//! injected at t = 20 s, recovery starting ~20 s later and taking
//! `sync_duration` in total. The offered load is scaled down (the paper
//! drives 20.5 MQPS; simulating that packet by packet is pointless), so the
//! series is reported both in absolute scaled QPS and normalised to the
//! pre-failure plateau — the *shape* is the reproduction target.

use crate::series::Series;
use netchain_core::{ClusterConfig, ControllerConfig, NetChainCluster, WorkloadConfig};
use netchain_sim::{SimDuration, SimTime};
use netchain_wire::Ipv4Addr;

/// Parameters of the failure-handling experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Params {
    /// Number of virtual groups used by recovery (1 for Figure 10(a), 100 for
    /// Figure 10(b)).
    pub virtual_groups: u32,
    /// Offered load from the observed client, queries per second (scaled).
    pub offered_qps: f64,
    /// When the failure is injected.
    pub fail_at: SimDuration,
    /// Delay before recovery starts after failover.
    pub recovery_delay: SimDuration,
    /// Total state-synchronisation time across all groups.
    pub sync_duration: SimDuration,
    /// Total simulated time.
    pub total: SimDuration,
}

impl Default for Fig10Params {
    fn default() -> Self {
        Fig10Params {
            virtual_groups: 1,
            offered_qps: 10_000.0,
            fail_at: SimDuration::from_secs(20),
            recovery_delay: SimDuration::from_secs(20),
            sync_duration: SimDuration::from_secs(150),
            total: SimDuration::from_secs(230),
        }
    }
}

/// Runs the experiment and returns the client's completed-query throughput
/// time series: one absolute series ("throughput (QPS)") and one normalised
/// to the pre-failure plateau ("normalised").
pub fn fig10(params: Fig10Params) -> Vec<Series> {
    let config = ClusterConfig {
        // S0–S2 form the ring; S3 is the spare that replaces the failed
        // switch.
        ring_switches: Some(3),
        controller: ControllerConfig {
            recovery_start_delay: params.recovery_delay,
            total_sync_duration: params.sync_duration,
            replacement: Some(Ipv4Addr::for_switch(3)),
            recovery_groups: Some(params.virtual_groups),
            ..ControllerConfig::default()
        },
        ..Default::default()
    };
    let mut cluster = NetChainCluster::testbed(config);
    cluster.populate_store(2_000, 64);
    cluster.install_workload_client(
        0,
        WorkloadConfig {
            duration: params.total,
            rate_qps: params.offered_qps,
            write_ratio: 0.5,
            num_keys: 2_000,
            throughput_bucket: SimDuration::from_secs(1),
            ..Default::default()
        },
    );
    // Fail S1 (a middle switch for most chains).
    cluster.fail_switch_at(SimTime::ZERO + params.fail_at, 1);
    cluster
        .sim
        .run_for(params.total + SimDuration::from_secs(2));

    let client = cluster.workload_client(0).expect("installed");
    let series = client.throughput().rate_series();
    // Plateau = average rate over the seconds strictly before the failure.
    let fail_s = params.fail_at.as_secs_f64();
    let plateau: f64 = {
        let before: Vec<f64> = series
            .iter()
            .filter(|(t, _)| *t + 1.0 < fail_s)
            .map(|&(_, r)| r)
            .collect();
        if before.is_empty() {
            1.0
        } else {
            before.iter().sum::<f64>() / before.len() as f64
        }
    };
    let absolute = Series::new(
        format!("throughput (QPS), {} vgroup(s)", params.virtual_groups),
        series.clone(),
    );
    let normalised = Series::new(
        format!("normalised, {} vgroup(s)", params.virtual_groups),
        series
            .iter()
            .map(|&(t, r)| (t, if plateau > 0.0 { r / plateau } else { 0.0 }))
            .collect(),
    );
    vec![absolute, normalised]
}

/// Summary statistics extracted from a normalised Figure 10 series, used by
/// tests and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Summary {
    /// Mean normalised throughput during the recovery window.
    pub recovery_mean: f64,
    /// Minimum normalised throughput right after the failure (before
    /// failover completes).
    pub failover_dip: f64,
    /// Mean normalised throughput after recovery completes.
    pub post_recovery_mean: f64,
}

/// Extracts summary statistics from the normalised series produced by
/// [`fig10`].
pub fn summarise(params: &Fig10Params, normalised: &Series) -> Fig10Summary {
    let fail_s = params.fail_at.as_secs_f64();
    let recovery_start = fail_s + params.recovery_delay.as_secs_f64();
    let recovery_end = recovery_start + params.sync_duration.as_secs_f64();
    let window_mean = |from: f64, to: f64| {
        let values: Vec<f64> = normalised
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, v)| v)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    };
    let failover_dip = normalised
        .points
        .iter()
        .filter(|(t, _)| *t >= fail_s && *t < recovery_start)
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    Fig10Summary {
        recovery_mean: window_mean(recovery_start + 5.0, recovery_end - 5.0),
        failover_dip: if failover_dip.is_finite() {
            failover_dip
        } else {
            0.0
        },
        post_recovery_mean: window_mean(recovery_end + 2.0, params.total.as_secs_f64()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(vgroups: u32) -> Fig10Params {
        Fig10Params {
            virtual_groups: vgroups,
            offered_qps: 2_000.0,
            fail_at: SimDuration::from_secs(3),
            recovery_delay: SimDuration::from_secs(3),
            sync_duration: SimDuration::from_secs(12),
            total: SimDuration::from_secs(24),
        }
    }

    #[test]
    fn one_virtual_group_halves_throughput_during_recovery() {
        let params = small_params(1);
        let series = fig10(params);
        let summary = summarise(&params, &series[1]);
        // 50 % writes all blocked during the single group's sync: the mean
        // normalised throughput during recovery should sit near 0.5.
        assert!(
            summary.recovery_mean < 0.75,
            "expected a large drop, got {summary:?}"
        );
        assert!(
            summary.post_recovery_mean > 0.8,
            "throughput must recover, got {summary:?}"
        );
    }

    #[test]
    fn many_virtual_groups_barely_dent_throughput() {
        let params = small_params(50);
        let series = fig10(params);
        let summary = summarise(&params, &series[1]);
        assert!(
            summary.recovery_mean > 0.9,
            "with many virtual groups recovery should be almost invisible, got {summary:?}"
        );
    }
}
