//! The live failover run: *measured* throughput-vs-time of the multi-core
//! fabric while a switch is killed, fast failover reroutes, and chain repair
//! copies state to a spare — the live analogue of Figure 10, produced by
//! `netchain-livectl` instead of the discrete-event simulator.
//!
//! Where [`crate::fig10`] simulates the paper's testbed in virtual time,
//! this experiment runs real threads, real rings, real retries and a real
//! controller on the machine at hand, and reports wall-clock slices. The
//! headline structural claim it measures: with the key space repaired in
//! **many** virtual groups, only a small fraction of traffic is blocked at
//! any instant, so throughput during repair stays close to the failover
//! plateau — while **one** virtual group blocks everything destined to the
//! failed switch for the whole synchronisation window.

use crate::series::Series;
use netchain_fabric::{FabricConfig, WorkloadSpec};
use netchain_livectl::{run_live_controlled, FaultScript, LiveAnomaly, LiveConfig, LiveReport};
use netchain_telemetry::{
    trace_record_fields, ArtifactWriter, FlightRecorder, Json, Quantiles, TraceConfig,
};
use netchain_wire::Ipv4Addr;
use std::time::Duration;

/// Trace sampling used by the live failover runs: 1 in 2^6 queries carries a
/// per-hop trace, capped well below memory concerns.
const TRACE_SAMPLING: TraceConfig = TraceConfig {
    enabled: true,
    sample_shift: 6,
    max_traces: 4096,
};

/// Parameters of one live failover run (shared by every `groups` setting).
#[derive(Debug, Clone, Copy)]
pub struct FailoverLiveParams {
    /// Worker shards.
    pub shards: usize,
    /// Switches on the ring (one spare is always added as the replacement).
    pub switches: usize,
    /// Distinct keys.
    pub num_keys: u64,
    /// Percentage of reads (the rest are writes — writes are what blocking
    /// hits).
    pub read_pct: u8,
    /// Total run length.
    pub duration: Duration,
    /// Throughput slice width.
    pub slice: Duration,
    /// When the victim dies.
    pub kill_at: Duration,
    /// Failure-detection time before Algorithm 2 runs.
    pub failover_delay: Duration,
    /// Pause between failover and the start of repair.
    pub recovery_delay: Duration,
    /// Total state-synchronisation budget across all groups.
    pub sync_duration: Duration,
}

impl Default for FailoverLiveParams {
    fn default() -> Self {
        FailoverLiveParams {
            shards: 2,
            switches: 4,
            num_keys: 512,
            read_pct: 50,
            duration: Duration::from_millis(3_000),
            slice: Duration::from_millis(20),
            kill_at: Duration::from_millis(600),
            failover_delay: Duration::from_millis(50),
            recovery_delay: Duration::from_millis(350),
            sync_duration: Duration::from_millis(600),
        }
    }
}

impl FailoverLiveParams {
    /// A tiny configuration for CI smoke runs (finishes in under a second).
    pub fn smoke() -> Self {
        FailoverLiveParams {
            shards: 1,
            num_keys: 128,
            duration: Duration::from_millis(700),
            slice: Duration::from_millis(10),
            kill_at: Duration::from_millis(150),
            failover_delay: Duration::from_millis(30),
            recovery_delay: Duration::from_millis(70),
            sync_duration: Duration::from_millis(150),
            ..Default::default()
        }
    }

    fn window_means(&self, report: &LiveReport) -> FailoverLiveSummary {
        let timeline = report.timeline.as_ref().expect("a fault script ran");
        let margin = Duration::from_millis(40);
        let pre_failure = report.mean_rate(self.slice, self.kill_at);
        let failover_mean = report.mean_rate(
            timeline.failover_installed_at + margin,
            timeline.repair_started_at,
        );
        let repair_mean = report.mean_rate(timeline.repair_started_at, timeline.repair_finished_at);
        let post_repair = report.mean_rate(timeline.repair_finished_at + margin, self.duration);
        FailoverLiveSummary {
            groups: timeline.groups_repaired as u32,
            pre_failure,
            failover_mean,
            repair_mean,
            post_repair,
            blocked_fraction: if pre_failure > 0.0 {
                (1.0 - repair_mean / pre_failure).max(0.0)
            } else {
                0.0
            },
            failover_install_time: timeline.failover_install_time,
            retries: report.total_retries(),
            abandoned: report.total_abandoned(),
            version_regressions: report.total_version_regressions(),
            unroutable: report.total_unroutable(),
            blocked: report.total_blocked(),
            latency: report.latency.quantiles(),
        }
    }
}

/// Window means extracted from one run's slice series.
#[derive(Debug, Clone, Copy)]
pub struct FailoverLiveSummary {
    /// Groups the repair was staged in.
    pub groups: u32,
    /// Mean ops/sec before the kill.
    pub pre_failure: f64,
    /// Mean ops/sec between failover completion and repair start (chains
    /// one switch short).
    pub failover_mean: f64,
    /// Mean ops/sec during the repair window.
    pub repair_mean: f64,
    /// Mean ops/sec after the last group activated.
    pub post_repair: f64,
    /// `1 - repair_mean / pre_failure`: the throughput fraction blocking
    /// cost during repair (the Figure 10 claim: many groups ⇒ small
    /// fraction).
    pub blocked_fraction: f64,
    /// Measured time to install the failover rules on every shard.
    pub failover_install_time: Duration,
    /// Client retransmissions over the whole run.
    pub retries: u64,
    /// Abandoned queries (must be zero).
    pub abandoned: u64,
    /// Replies that travelled backwards in chain version (must be zero).
    pub version_regressions: u64,
    /// Queries the dataplane dropped for lack of a live route (nonzero only
    /// inside the kill→failover window).
    pub unroutable: u64,
    /// Writes bounced off blocked groups during repair.
    pub blocked: u64,
    /// Issue→reply wall-clock latency quantiles over the whole run.
    pub latency: Quantiles,
}

/// Runs one live failover experiment with the key space repaired in
/// `groups` virtual groups. Returns the absolute and normalised series, the
/// window summary, and the full report (latency, traces, timeline) for
/// artifact export.
pub fn failover_live(
    params: FailoverLiveParams,
    groups: u32,
) -> (Vec<Series>, FailoverLiveSummary, LiveReport) {
    let fabric = FabricConfig {
        num_switches: params.switches,
        vnodes_per_switch: 16,
        ring_capacity: 256,
        ..FabricConfig::new(params.shards)
    }
    .with_spares(1)
    .with_trace(TRACE_SAMPLING)
    // Pin shard threads to distinct cores (no-op on unsupported platforms)
    // so failover timings measure the protocol, not scheduler placement.
    .with_pinning(true);
    let workload = WorkloadSpec::mixed(params.num_keys, 0, params.read_pct, 100 - params.read_pct);
    let script = FaultScript {
        victim: Ipv4Addr::for_switch(1),
        kill_at: params.kill_at,
        failover_delay: params.failover_delay,
        recovery_delay: params.recovery_delay,
        sync_duration: params.sync_duration,
        recovery_groups: Some(groups),
        replacement: None, // the spare
    };
    let mut config = LiveConfig::new(fabric, workload, params.duration).with_script(script);
    config.slice = params.slice;
    let report = run_live_controlled(config);
    let summary = params.window_means(&report);
    let points = report.rate_series();
    let plateau = summary.pre_failure.max(1e-9);
    let absolute = Series::new(format!("ops/sec, {groups} vgroup(s)"), points.clone());
    let normalised = Series::new(
        format!("normalised, {groups} vgroup(s)"),
        points.iter().map(|&(t, r)| (t, r / plateau)).collect(),
    );
    (vec![absolute, normalised], summary, report)
}

/// Appends one run's records (summary, latency, control-plane spans, hop
/// traces) to the JSON-lines artifact.
fn export_run(
    artifact: &mut ArtifactWriter,
    groups: u32,
    summary: &FailoverLiveSummary,
    report: &LiveReport,
) {
    artifact.record(
        "summary",
        vec![
            ("groups", Json::U64(u64::from(groups))),
            ("completed_ops", Json::U64(report.completed_ops)),
            ("ops_per_sec", Json::F64(report.ops_per_sec)),
            ("pre_failure", Json::F64(summary.pre_failure)),
            ("failover_mean", Json::F64(summary.failover_mean)),
            ("repair_mean", Json::F64(summary.repair_mean)),
            ("post_repair", Json::F64(summary.post_repair)),
            ("blocked_fraction", Json::F64(summary.blocked_fraction)),
            (
                "failover_install_ns",
                Json::U64(summary.failover_install_time.as_nanos() as u64),
            ),
            ("retries", Json::U64(summary.retries)),
            ("abandoned", Json::U64(summary.abandoned)),
            (
                "version_regressions",
                Json::U64(summary.version_regressions),
            ),
            ("unroutable", Json::U64(summary.unroutable)),
            ("blocked", Json::U64(summary.blocked)),
        ],
    );
    artifact.record(
        "latency",
        vec![
            ("groups", Json::U64(u64::from(groups))),
            ("quantiles", Json::from(summary.latency)),
        ],
    );
    // One artifact file holds several runs (one per group count), each with
    // its own timebase and version history; the `run` label on spans and
    // trace records lets `chain_audit` keep them apart.
    let run_label = format!("{groups}-vgroups");
    if let Some(timeline) = &report.timeline {
        artifact.record(
            "spans",
            vec![
                ("groups", Json::U64(u64::from(groups))),
                ("run", Json::str(&run_label)),
                ("journal", Json::from(&timeline.journal())),
            ],
        );
    }
    artifact.record(
        "hops",
        vec![
            ("groups", Json::U64(u64::from(groups))),
            ("summary", Json::from(&report.trace_summary())),
        ],
    );
    // Full per-trace evidence records, so `chain_audit` can replay the run's
    // consistency story offline from the artifact alone.
    for trace in &report.traces {
        let mut fields = trace_record_fields(trace);
        fields.push(("run", Json::str(&run_label)));
        artifact.record("trace", fields);
    }
}

/// Checks one smoke/structural invariant; on violation, dumps a flight
/// record of the offending run (control-plane journal, gray-failure journal,
/// throughput slices, anomalies) to the artifact dir before panicking, so a
/// failed CI smoke leaves its evidence behind instead of just a backtrace.
fn check_or_dump(ok: bool, msg: &str, groups: u32, report: &LiveReport) {
    if ok {
        return;
    }
    let recorder = FlightRecorder::new(1024);
    if let Some(timeline) = &report.timeline {
        recorder.record_journal(&timeline.journal());
    }
    recorder.record_journal(&report.ops_journal);
    let slice_ns = report.slice.as_nanos() as u64;
    for (i, &n) in report.slices.iter().enumerate() {
        recorder.record(i as u64 * slice_ns, "slice", vec![("ops", Json::U64(n))]);
    }
    for anomaly in &report.anomalies {
        let at_ns = match anomaly {
            LiveAnomaly::Gray(gray) => gray.slice * slice_ns,
            LiveAnomaly::Audit(violation) => violation.at_ns,
        };
        recorder.record(
            at_ns,
            "anomaly",
            vec![("detail", Json::str(anomaly.describe()))],
        );
    }
    recorder.record_trace_summary(report.elapsed.as_nanos() as u64, &report.trace_summary());
    if let Some(path) = recorder.dump(&format!("failover_live_{groups}")) {
        eprintln!(
            "failover_live: failure evidence dumped to {}",
            path.display()
        );
    }
    panic!("{msg}");
}

/// The `failover_live` command-line entry point: runs the coarse and fine
/// granularity settings, prints the series and summaries, and asserts the
/// Figure 10 structural claim. Shared by the `netchain-experiments` binary
/// and the workspace-root alias.
pub fn run_cli(smoke: bool) {
    use crate::print_series;
    let params = if smoke {
        FailoverLiveParams::smoke()
    } else {
        FailoverLiveParams::default()
    };
    let group_settings: &[u32] = if smoke { &[1, 16] } else { &[1, 100] };

    let mut artifact = ArtifactWriter::new("failover_live");
    let mut summaries = Vec::new();
    let mut reports = Vec::new();
    for &groups in group_settings {
        let (series, summary, report) = failover_live(params, groups);
        print_series(
            &format!("Live failover ({groups} vgroup(s))"),
            "time (s)",
            "ops/sec",
            &series,
        );
        println!(
            "summary ({groups} vgroups): pre-failure {:.0} ops/s | failover plateau {:.0} | \
             repair {:.0} (blocked fraction {:.2}) | post-repair {:.0} | \
             failover rules installed in {:?} | {} retries, {} abandoned\n",
            summary.pre_failure,
            summary.failover_mean,
            summary.repair_mean,
            summary.blocked_fraction,
            summary.post_repair,
            summary.failover_install_time,
            summary.retries,
            summary.abandoned,
        );
        println!("latency ({groups} vgroups): {}", summary.latency.to_line());
        println!(
            "dataplane ({groups} vgroups): {} unroutable drops (kill -> failover window), \
             {} writes bounced off blocked groups, {} version regressions",
            summary.unroutable, summary.blocked, summary.version_regressions,
        );
        let hops = report.trace_summary();
        if let Some(path) = hops.dominant_path() {
            println!(
                "traces ({groups} vgroups): {} sampled; dominant path {}\n",
                hops.traces,
                netchain_telemetry::path_to_string(path),
            );
        }
        check_or_dump(
            summary.abandoned == 0,
            "every op must survive the failure",
            groups,
            &report,
        );
        check_or_dump(
            summary.version_regressions == 0,
            "replies must never travel backwards in chain version",
            groups,
            &report,
        );
        export_run(&mut artifact, groups, &summary, &report);
        summaries.push(summary);
        reports.push(report);
    }
    if let Some(path) = artifact.write() {
        println!("artifact: {}", path.display());
    }
    let coarse = summaries[0];
    let fine = summaries[summaries.len() - 1];
    println!(
        "repair granularity: {} vgroups block {:.0}% of throughput, {} vgroups block {:.0}% \
         (fine-grained repair must block strictly less)",
        coarse.groups,
        coarse.blocked_fraction * 100.0,
        fine.groups,
        fine.blocked_fraction * 100.0,
    );
    check_or_dump(
        fine.blocked_fraction < coarse.blocked_fraction,
        "fine-grained repair must block a strictly smaller throughput fraction",
        fine.groups,
        reports.last().expect("at least one run"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_repair_blocks_a_strictly_larger_fraction_than_fine_repair() {
        let params = FailoverLiveParams {
            duration: Duration::from_millis(1_700),
            kill_at: Duration::from_millis(300),
            failover_delay: Duration::from_millis(40),
            recovery_delay: Duration::from_millis(160),
            sync_duration: Duration::from_millis(400),
            num_keys: 256,
            ..Default::default()
        };
        let (_, one, one_report) = failover_live(params, 1);
        let (_, many, _) = failover_live(params, 16);
        assert_eq!(one.abandoned, 0, "{one:?}");
        assert_eq!(many.abandoned, 0, "{many:?}");
        assert_eq!(one.version_regressions, 0, "{one:?}");
        assert!(one.pre_failure > 0.0 && many.pre_failure > 0.0);
        // Telemetry rides along: real latency quantiles and sampled traces.
        assert!(one.latency.count > 0 && one.latency.p999_ns >= one.latency.p50_ns);
        assert!(
            !one_report.traces.is_empty(),
            "sampling 1/64 must catch some"
        );
        // The structural claim (Figure 10): fine-grained repair blocks a
        // strictly smaller throughput fraction than one big group.
        assert!(
            many.blocked_fraction < one.blocked_fraction,
            "16 groups must block less than 1 group: {many:?} vs {one:?}"
        );
        // Throughput recovers after repair in both settings.
        assert!(one.post_repair > one.pre_failure * 0.4, "{one:?}");
        assert!(many.post_repair > many.pre_failure * 0.4, "{many:?}");
    }
}
