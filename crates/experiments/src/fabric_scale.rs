//! The fabric scale run: *measured* ops/sec of the multi-core software
//! fabric, versus worker shard count and versus chain length.
//!
//! Unlike the figure reproductions, which simulate or model the paper's
//! Tofino testbed, this experiment measures the repo's own software
//! incarnation of Algorithm 1 on the machine it runs on — the honest
//! baseline every future scaling PR is compared against. Measurements use
//! [`netchain_fabric::run_capacity`]: each shard's partition is timed
//! run-to-completion and aggregated under the one-core-per-shard deployment
//! model, the same style of extrapolation the paper's §8.3 scalability study
//! uses, and the only honest way to produce a scaling curve on a machine
//! with fewer cores than shards.

use crate::series::Series;
use netchain_baseline::message::{ZkOp, ZkStore};
use netchain_core::KvOp;
use netchain_fabric::{
    build_shards, run_capacity, run_live, ClientState, FabricConfig, FabricReport, WorkloadSpec,
};
use netchain_telemetry::TraceConfig;
use netchain_wire::{BatchEncoder, ChainList, Ipv4Addr, Key, NetChainPacket, OpCode, Value};
use std::time::{Duration, Instant};

/// Workload shape shared by both scale sweeps.
#[derive(Debug, Clone, Copy)]
pub struct FabricScaleParams {
    /// Distinct keys, sampled uniformly.
    pub num_keys: u64,
    /// Operations measured per data point.
    pub ops: u64,
}

impl Default for FabricScaleParams {
    fn default() -> Self {
        FabricScaleParams {
            num_keys: 1024,
            ops: 200_000,
        }
    }
}

/// Aggregate throughput vs worker shard count, for a read-only and a mixed
/// (50% read / 40% write / 10% CAS) workload — the NetChain-vs-baseline
/// presentation style: two series over the same x axis.
pub fn throughput_vs_shards(params: FabricScaleParams, shard_counts: &[usize]) -> Vec<Series> {
    let mut read_points = Vec::new();
    let mut mixed_points = Vec::new();
    for &shards in shard_counts {
        let config = FabricConfig::new(shards);
        let read = run_capacity(
            config,
            WorkloadSpec::uniform_read(params.num_keys, params.ops),
        );
        read_points.push((shards as f64, read.aggregate_ops_per_sec));
        let mixed = run_capacity(
            config,
            WorkloadSpec::mixed(params.num_keys, params.ops, 50, 40),
        );
        mixed_points.push((shards as f64, mixed.aggregate_ops_per_sec));
    }
    vec![
        Series::new("fabric (100% read)", read_points),
        Series::new("fabric (50% read, 40% write, 10% CAS)", mixed_points),
    ]
}

/// Aggregate throughput vs chain length (`f + 1`) at a fixed shard count.
/// Longer chains cost proportionally more switch work per write, so the
/// write-heavy series falls off while the read series stays flat (reads are
/// served by the tail alone, whatever the chain length).
pub fn throughput_vs_chain_length(
    params: FabricScaleParams,
    shards: usize,
    chain_lengths: &[usize],
) -> Vec<Series> {
    let mut read_points = Vec::new();
    let mut write_points = Vec::new();
    for &replication in chain_lengths {
        let config = FabricConfig::new(shards).with_replication(replication);
        let read = run_capacity(
            config,
            WorkloadSpec::uniform_read(params.num_keys, params.ops),
        );
        read_points.push((replication as f64, read.aggregate_ops_per_sec));
        let mixed = run_capacity(
            config,
            WorkloadSpec::mixed(params.num_keys, params.ops, 50, 50),
        );
        write_points.push((replication as f64, mixed.aggregate_ops_per_sec));
    }
    vec![
        Series::new("fabric (100% read)", read_points),
        Series::new("fabric (50% write)", write_points),
    ]
}

/// One *live* (threaded, wall-clock) run of the fabric with in-band trace
/// sampling on: the latency-distribution and per-hop profile the capacity
/// sweeps above cannot see (they time shards run-to-completion). Returns
/// the full report; callers export `report.latency.quantiles()` and
/// `report.trace_summary()`.
pub fn live_profile(params: FabricScaleParams, shards: usize) -> FabricReport {
    // Pin each shard thread to its own core (vendored affinity shim; a
    // graceful no-op on unsupported platforms) so the live numbers measure
    // placement rather than scheduler luck; the report's `pinned_shards`
    // says how many pins actually took.
    let config = FabricConfig::new(shards)
        .with_trace(TraceConfig::sampled(6, 4096))
        .with_pinning(true);
    run_live(
        config,
        WorkloadSpec::mixed(params.num_keys, params.ops, 50, 40),
    )
}

/// The staged-vs-scalar burst comparison at experiment granularity: the same
/// 32-read burst (each read addressed to its key's chain tail, like the load
/// generator produces) through the staged [`netchain_fabric::Shard::process_burst`]
/// and the retained scalar reference path. Returns
/// `(scalar_ns_per_burst, staged_ns_per_burst)`, each the minimum over
/// `repeats` timed runs of `iters` bursts — the numbers `BENCH_fabric.json`
/// records so the perf trajectory is machine-diffable across PRs.
pub fn staged_vs_scalar_burst(iters: u32, repeats: u32) -> (f64, f64) {
    let config = FabricConfig::new(1);
    let workload = WorkloadSpec::uniform_read(1024, 0);
    let mut shards = build_shards(&config, &workload);
    let ring = config.build_ring();
    let frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| {
            let key = Key::from_u64(i % workload.num_keys);
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                ring.chain_for_key(&key).tail(),
                OpCode::Read,
                key,
                Value::empty(),
                ChainList::empty(),
                i,
            )
            .to_bytes()
        })
        .collect();
    let mut replies = BatchEncoder::with_capacity(frames.len(), 128);
    for _ in 0..100 {
        replies.clear();
        shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
        replies.clear();
        shards[0].process_burst_scalar(frames.iter().map(|f| f.as_slice()), &mut replies);
    }
    let mut staged_ns = f64::INFINITY;
    let mut scalar_ns = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for _ in 0..iters {
            replies.clear();
            shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            std::hint::black_box(replies.len());
        }
        staged_ns = staged_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
        let t0 = Instant::now();
        for _ in 0..iters {
            replies.clear();
            shards[0].process_burst_scalar(frames.iter().map(|f| f.as_slice()), &mut replies);
            std::hint::black_box(replies.len());
        }
        scalar_ns = scalar_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    (scalar_ns, staged_ns)
}

/// Measured capacity of a ZooKeeper-style server ensemble (the
/// `netchain-baseline` replication structure: reads served by the contacted
/// server, writes serialized through the leader and applied by every
/// replica) driven by the **same** load generator and op stream as the
/// fabric runs, under the same one-core-per-worker capacity methodology as
/// [`run_capacity`].
///
/// What is and is not measured: the real data-structure work of every
/// replica (the `ZkStore` the baseline servers execute) is timed; the
/// kernel/network-stack and fsync costs that dominate a production
/// ZooKeeper are *not* — the simulator (`zk` module) models those from the
/// paper's calibration. The honest measured claim is therefore structural:
/// the baseline's writes funnel through one leader and do not scale with
/// servers, while the fabric's chains are keyspace-sharded and do.
pub fn baseline_capacity(
    params: FabricScaleParams,
    num_servers: usize,
    read_pct: u8,
    write_pct: u8,
) -> f64 {
    assert!(num_servers > 0);
    // The same sampler (same seed, same mix) the fabric's clients draw from.
    let config = FabricConfig::new(1);
    let ring = config.build_ring();
    let spec = WorkloadSpec::mixed(params.num_keys, params.ops, read_pct, write_pct);
    let mut client = ClientState::new(0, &ring, spec);

    let mut stores: Vec<ZkStore> = (0..num_servers).map(|_| ZkStore::new()).collect();
    for store in &mut stores {
        for k in 0..params.num_keys {
            store.apply(&ZkOp::Write {
                key: k,
                value: 0u64.to_be_bytes().to_vec(),
            });
        }
    }

    // Partition the op stream (untimed, like run_capacity's generation):
    // reads round-robin over the servers clients are attached to; every
    // mutation becomes a leader-sequenced proposal applied by all replicas.
    let mut reads: Vec<Vec<ZkOp>> = (0..num_servers).map(|_| Vec::new()).collect();
    let mut proposals: Vec<ZkOp> = Vec::new();
    for i in 0..params.ops {
        match client.sample_op() {
            KvOp::Read(k) => reads[i as usize % num_servers].push(ZkOp::Read { key: k.low_u64() }),
            KvOp::Write(k, v) => proposals.push(ZkOp::Write {
                key: k.low_u64(),
                value: v.as_bytes().to_vec(),
            }),
            // The ZooKeeper lock idiom: CAS-acquire ≈ ephemeral-node create.
            KvOp::Cas { key, new, .. } => proposals.push(ZkOp::Create {
                key: key.low_u64(),
                owner: new,
            }),
            KvOp::Delete(k) => proposals.push(ZkOp::Delete { key: k.low_u64() }),
        }
    }

    // Timed work, chunked per server like the fabric's bursts: local reads
    // on each server, then the write stream — once through the leader
    // (sequencing + apply) and once through every follower (proposal
    // application).
    let mut busy = vec![Duration::ZERO; num_servers];
    for (s, server_reads) in reads.iter().enumerate() {
        let t0 = Instant::now();
        for op in server_reads {
            std::hint::black_box(stores[s].apply(op));
        }
        busy[s] += t0.elapsed();
    }
    let mut zxid = 0u64;
    let t0 = Instant::now();
    for op in &proposals {
        zxid += 1;
        std::hint::black_box(stores[0].apply(op));
    }
    busy[0] += t0.elapsed();
    std::hint::black_box(zxid);
    for (s, store) in stores.iter_mut().enumerate().skip(1) {
        let t0 = Instant::now();
        for op in &proposals {
            std::hint::black_box(store.apply(op));
        }
        busy[s] += t0.elapsed();
    }

    let makespan = busy
        .iter()
        .max()
        .copied()
        .unwrap_or_default()
        .as_secs_f64()
        .max(1e-12);
    params.ops as f64 / makespan
}

/// The measured NetChain-vs-baseline comparison the ROADMAP asks for: both
/// systems' software incarnations, the same load generator, the same mixed
/// workload (50% read / 40% write / 10% CAS), the same one-core-per-worker
/// aggregation — aggregate ops/sec versus worker count (fabric shards vs
/// baseline servers, with a matching replica count).
pub fn fabric_vs_baseline(params: FabricScaleParams, worker_counts: &[usize]) -> Vec<Series> {
    let mut fabric_points = Vec::new();
    let mut baseline_points = Vec::new();
    for &workers in worker_counts {
        let fabric = run_capacity(
            FabricConfig::new(workers),
            WorkloadSpec::mixed(params.num_keys, params.ops, 50, 40),
        );
        fabric_points.push((workers as f64, fabric.aggregate_ops_per_sec));
        baseline_points.push((workers as f64, baseline_capacity(params, workers, 50, 40)));
    }
    vec![
        Series::new("netchain fabric (chain f+1=3)", fabric_points),
        Series::new("server baseline (leader + replicas)", baseline_points),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FabricScaleParams {
        FabricScaleParams {
            num_keys: 128,
            ops: 4_000,
        }
    }

    #[test]
    fn shard_sweep_produces_positive_throughput_per_point() {
        let series = throughput_vs_shards(small(), &[1, 2]);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{s:?}");
        }
    }

    #[test]
    fn chain_sweep_covers_every_length() {
        let series = throughput_vs_chain_length(small(), 2, &[1, 3]);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{s:?}");
        }
    }

    #[test]
    fn live_profile_records_latency_and_traces() {
        let report = live_profile(small(), 2);
        assert!(report.completed_ops > 0);
        assert_eq!(report.latency.count(), report.completed_ops);
        assert!(!report.traces.is_empty());
        let quantiles = report.latency.quantiles();
        assert!(quantiles.p999_ns >= quantiles.p50_ns);
    }

    #[test]
    fn staged_vs_scalar_comparison_times_both_paths() {
        let (scalar_ns, staged_ns) = staged_vs_scalar_burst(50, 2);
        assert!(scalar_ns > 0.0);
        assert!(staged_ns > 0.0);
    }

    #[test]
    fn baseline_comparison_produces_positive_measured_points() {
        let series = fabric_vs_baseline(small(), &[1, 2]);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{s:?}");
        }
    }
}
