//! The fabric scale run: *measured* ops/sec of the multi-core software
//! fabric, versus worker shard count and versus chain length.
//!
//! Unlike the figure reproductions, which simulate or model the paper's
//! Tofino testbed, this experiment measures the repo's own software
//! incarnation of Algorithm 1 on the machine it runs on — the honest
//! baseline every future scaling PR is compared against. Measurements use
//! [`netchain_fabric::run_capacity`]: each shard's partition is timed
//! run-to-completion and aggregated under the one-core-per-shard deployment
//! model, the same style of extrapolation the paper's §8.3 scalability study
//! uses, and the only honest way to produce a scaling curve on a machine
//! with fewer cores than shards.

use crate::series::Series;
use netchain_fabric::{run_capacity, FabricConfig, WorkloadSpec};

/// Workload shape shared by both scale sweeps.
#[derive(Debug, Clone, Copy)]
pub struct FabricScaleParams {
    /// Distinct keys, sampled uniformly.
    pub num_keys: u64,
    /// Operations measured per data point.
    pub ops: u64,
}

impl Default for FabricScaleParams {
    fn default() -> Self {
        FabricScaleParams {
            num_keys: 1024,
            ops: 200_000,
        }
    }
}

/// Aggregate throughput vs worker shard count, for a read-only and a mixed
/// (50% read / 40% write / 10% CAS) workload — the NetChain-vs-baseline
/// presentation style: two series over the same x axis.
pub fn throughput_vs_shards(params: FabricScaleParams, shard_counts: &[usize]) -> Vec<Series> {
    let mut read_points = Vec::new();
    let mut mixed_points = Vec::new();
    for &shards in shard_counts {
        let config = FabricConfig::new(shards);
        let read = run_capacity(
            config,
            WorkloadSpec::uniform_read(params.num_keys, params.ops),
        );
        read_points.push((shards as f64, read.aggregate_ops_per_sec));
        let mixed = run_capacity(
            config,
            WorkloadSpec::mixed(params.num_keys, params.ops, 50, 40),
        );
        mixed_points.push((shards as f64, mixed.aggregate_ops_per_sec));
    }
    vec![
        Series::new("fabric (100% read)", read_points),
        Series::new("fabric (50% read, 40% write, 10% CAS)", mixed_points),
    ]
}

/// Aggregate throughput vs chain length (`f + 1`) at a fixed shard count.
/// Longer chains cost proportionally more switch work per write, so the
/// write-heavy series falls off while the read series stays flat (reads are
/// served by the tail alone, whatever the chain length).
pub fn throughput_vs_chain_length(
    params: FabricScaleParams,
    shards: usize,
    chain_lengths: &[usize],
) -> Vec<Series> {
    let mut read_points = Vec::new();
    let mut write_points = Vec::new();
    for &replication in chain_lengths {
        let config = FabricConfig::new(shards).with_replication(replication);
        let read = run_capacity(
            config,
            WorkloadSpec::uniform_read(params.num_keys, params.ops),
        );
        read_points.push((replication as f64, read.aggregate_ops_per_sec));
        let mixed = run_capacity(
            config,
            WorkloadSpec::mixed(params.num_keys, params.ops, 50, 50),
        );
        write_points.push((replication as f64, mixed.aggregate_ops_per_sec));
    }
    vec![
        Series::new("fabric (100% read)", read_points),
        Series::new("fabric (50% write)", write_points),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FabricScaleParams {
        FabricScaleParams {
            num_keys: 128,
            ops: 4_000,
        }
    }

    #[test]
    fn shard_sweep_produces_positive_throughput_per_point() {
        let series = throughput_vs_shards(small(), &[1, 2]);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{s:?}");
        }
    }

    #[test]
    fn chain_sweep_covers_every_length() {
        let series = throughput_vs_chain_length(small(), 2, &[1, 3]);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{s:?}");
        }
    }
}
