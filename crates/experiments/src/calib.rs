//! Calibration constants.
//!
//! Everything in this module is a number taken from the paper (its hardware
//! spec sheets or its own measurements), not something this reproduction can
//! measure without the testbed. They are the *inputs* the models consume;
//! every derived result is computed by this repository's code.

use netchain_sim::SimDuration;

/// Packets per second one Tofino-class switch can process in the mode the
/// testbed uses (§8.1: "a mode that guarantees up to 4 BQPS").
pub const SWITCH_PPS: f64 = 4.0e9;

/// Aggregate bandwidth of one switch (Table 1: 6.5 Tbps).
pub const SWITCH_BANDWIDTH_BPS: f64 = 6.5e12;

/// Per-packet processing delay of a switch (Table 1: < 1 µs).
pub const SWITCH_DELAY: SimDuration = SimDuration::from_nanos(800);

/// Packets per second a highly-optimised server (NetBricks-class) can process
/// (Table 1: 30 million).
pub const SERVER_PPS: f64 = 30.0e6;

/// Server NIC bandwidth range used in Table 1 (10–100 Gbps); we report the
/// upper end.
pub const SERVER_BANDWIDTH_BPS: f64 = 100.0e9;

/// Per-packet processing delay of a server (Table 1: 10–100 µs); midpoint.
pub const SERVER_DELAY: SimDuration = SimDuration::from_micros(55);

/// Queries per second one DPDK client server can generate/receive
/// (§7: "up to 20.5 MQPS with the 40G NICs on our servers").
pub const CLIENT_INJECTION_QPS: f64 = 20.5e6;

/// Number of client servers in the testbed.
pub const TESTBED_CLIENT_SERVERS: usize = 4;

/// NetChain query latency measured on the testbed (§8.2: 9.7 µs), dominated
/// by the client-side DPDK stack. The simulated fabric contributes a few
/// microseconds; the remainder is charged as client-stack delay so reported
/// latencies are comparable to the paper's.
pub const NETCHAIN_CLIENT_LATENCY: SimDuration = SimDuration::from_micros(9);

/// ZooKeeper reference points measured by the paper (§8.1–8.2) for
/// ZooKeeper 3.5.2 on the testbed. Used to calibrate the baseline cost model
/// and quoted as the "paper" column in EXPERIMENTS.md.
pub mod zookeeper_reference {
    /// Read-only saturation throughput (queries per second).
    pub const READ_ONLY_QPS: f64 = 230_000.0;
    /// Throughput at a 1 % write ratio.
    pub const ONE_PERCENT_WRITE_QPS: f64 = 140_000.0;
    /// Write-only saturation throughput.
    pub const WRITE_ONLY_QPS: f64 = 27_000.0;
    /// Read latency at low load (µs).
    pub const READ_LATENCY_US: f64 = 170.0;
    /// Write latency at low load (µs).
    pub const WRITE_LATENCY_US: f64 = 2350.0;
}

/// Spine–leaf scalability study parameters (§8.3).
pub mod spine_leaf {
    /// Ports per switch.
    pub const PORTS: usize = 64;
    /// Hosts per leaf switch (half the ports go down to servers).
    pub const HOSTS_PER_LEAF: usize = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the claim
    fn table1_ordering_holds() {
        // The whole premise: switches beat servers by orders of magnitude.
        assert!(SWITCH_PPS / SERVER_PPS > 100.0);
        assert!(SWITCH_BANDWIDTH_BPS > SERVER_BANDWIDTH_BPS);
        assert!(SWITCH_DELAY < SERVER_DELAY);
    }
}
