//! The flow-level capacity model.
//!
//! For a given topology, chain placement and query mix, the model counts how
//! many times each switch must handle a packet per query (chain processing,
//! which may cost several pipeline passes for large values, plus plain
//! transit forwarding), averages that load over clients and key groups, and
//! returns the largest aggregate query rate at which no switch exceeds its
//! packet budget. This is the same style of reasoning the paper's §8.3
//! simulator uses ("we assume each switch has a throughput of 4 BQPS" and
//! count hops), applied uniformly to the testbed and the spine–leaf fabrics.

use netchain_core::HashRing;
use netchain_sim::{NodeId, RoutingTables, Topology};
use netchain_wire::Ipv4Addr;
use std::collections::HashMap;

/// Per-switch packet budget and optional client injection limits.
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Packets per second each switch can process.
    pub switch_pps: f64,
    /// Queries per second each client server can inject (0 = unlimited).
    pub client_injection_qps: f64,
}

impl CapacityModel {
    /// The testbed configuration: 4 BQPS switches, 20.5 MQPS clients.
    pub fn paper_defaults() -> Self {
        CapacityModel {
            switch_pps: crate::calib::SWITCH_PPS,
            client_injection_qps: crate::calib::CLIENT_INJECTION_QPS,
        }
    }

    /// Computes the saturation throughput (queries per second) of a
    /// deployment.
    ///
    /// * `switch_nodes[i]` is the topology node of `ring.switches()[i]`.
    /// * `hosts` are the client-facing hosts issuing queries (uniformly).
    /// * `write_ratio` is the fraction of writes.
    /// * `passes` is the number of pipeline passes per chain-processing step
    ///   (1 for values up to 128 B, more with recirculation).
    #[allow(clippy::too_many_arguments)]
    pub fn max_throughput(
        &self,
        topology: &Topology,
        routing: &RoutingTables,
        ring: &HashRing,
        switch_nodes: &[NodeId],
        hosts: &[NodeId],
        write_ratio: f64,
        passes: usize,
    ) -> f64 {
        assert_eq!(
            switch_nodes.len(),
            ring.switches().len(),
            "switch_nodes must parallel ring.switches()"
        );
        let node_of_ip: HashMap<Ipv4Addr, NodeId> = ring
            .switches()
            .iter()
            .copied()
            .zip(switch_nodes.iter().copied())
            .collect();

        // Sample hosts and groups to keep the computation cheap on large
        // fabrics; uniform sampling is exact in expectation because both
        // distributions are uniform.
        let host_sample: Vec<NodeId> = sample(hosts, 64);
        let groups: Vec<u32> = sample(
            &(0..ring.num_virtual_nodes() as u32).collect::<Vec<_>>(),
            256,
        );

        // load[node] = expected packet-handling cost per query.
        let mut read_load: HashMap<NodeId, f64> = HashMap::new();
        let mut write_load: HashMap<NodeId, f64> = HashMap::new();
        let samples = (host_sample.len() * groups.len()) as f64;

        for (hi, &host) in host_sample.iter().enumerate() {
            for &group in &groups {
                // ECMP flow hash: queries from different hosts / for different
                // groups spread across equal-cost paths, as a real fabric
                // hashing the 5-tuple would.
                let flow = (hi as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(group).wrapping_mul(0x85eb_ca6b));
                let chain = ring.chain_for_group(group);
                let chain_nodes: Vec<NodeId> =
                    chain.switches.iter().map(|ip| node_of_ip[ip]).collect();
                // Read: host -> tail -> host, processing only at the tail.
                let tail = *chain_nodes.last().expect("non-empty chain");
                accumulate(
                    &mut read_load,
                    routing,
                    host,
                    tail,
                    tail,
                    passes,
                    samples,
                    flow,
                );
                accumulate(
                    &mut read_load,
                    routing,
                    tail,
                    host,
                    tail,
                    passes,
                    samples,
                    flow ^ 1,
                );
                // Write: host -> head -> ... -> tail -> host, processing at
                // every chain switch.
                let mut prev = host;
                for (seg, &chain_node) in chain_nodes.iter().enumerate() {
                    accumulate(
                        &mut write_load,
                        routing,
                        prev,
                        chain_node,
                        chain_node,
                        passes,
                        samples,
                        flow.wrapping_add(seg as u64 * 7),
                    );
                    prev = chain_node;
                }
                accumulate(
                    &mut write_load,
                    routing,
                    prev,
                    host,
                    prev,
                    passes,
                    samples,
                    flow ^ 3,
                );
            }
        }

        // Only switches constrain throughput.
        let mut limit = f64::INFINITY;
        for &switch in switch_nodes {
            let load = (1.0 - write_ratio) * read_load.get(&switch).copied().unwrap_or(0.0)
                + write_ratio * write_load.get(&switch).copied().unwrap_or(0.0);
            if load > 0.0 {
                limit = limit.min(self.switch_pps / load);
            }
        }
        let _ = topology;
        if self.client_injection_qps > 0.0 {
            limit = limit.min(self.client_injection_qps * hosts.len() as f64);
        }
        limit
    }
}

/// Adds the per-switch handling cost of one packet travelling `from → to`
/// along an ECMP-hashed shortest path. The switch named `processing_node`
/// runs the NetChain program (costing `passes` pipeline passes); every other
/// switch on the path merely forwards (cost 1). End hosts cost nothing.
#[allow(clippy::too_many_arguments)]
fn accumulate(
    load: &mut HashMap<NodeId, f64>,
    routing: &RoutingTables,
    from: NodeId,
    to: NodeId,
    processing_node: NodeId,
    passes: usize,
    samples: f64,
    flow_hash: u64,
) {
    // Walk hop by hop, choosing among equal-cost next hops with the flow hash.
    let mut path = vec![from];
    let mut cur = from;
    let mut guard = 0;
    while cur != to {
        let Some(next) = routing.next_hop(cur, to, flow_hash.wrapping_add(guard / 64)) else {
            return;
        };
        path.push(next);
        cur = next;
        guard += 1;
        if guard > 64 {
            return;
        }
    }
    for &node in path.iter().skip(1) {
        // Hosts at the end of the path never appear as intermediate nodes;
        // counting only non-endpoints would miss the processing switch when
        // it is the destination, so count every hop that is a switch-like
        // forwarder: the caller only passes switch/host mixes where hosts are
        // path endpoints.
        let cost = if node == processing_node {
            passes as f64
        } else {
            1.0
        };
        if node != to || node == processing_node {
            *load.entry(node).or_insert(0.0) += cost / samples;
        }
    }
}

fn sample<T: Copy>(items: &[T], cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items.to_vec();
    }
    let step = items.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| items[(i as f64 * step) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_core::{ClusterConfig, NetChainCluster};

    fn testbed() -> (NetChainCluster, CapacityModel) {
        let cluster = NetChainCluster::testbed(ClusterConfig::default());
        (cluster, CapacityModel::paper_defaults())
    }

    #[test]
    fn testbed_throughput_is_client_bound() {
        let (cluster, model) = testbed();
        let qps = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            0.01,
            1,
        );
        // Four 20.5 MQPS clients cannot saturate a 3-switch chain: the model
        // must report the client bound (82 MQPS), exactly the paper's
        // NetChain(4) plateau.
        assert!((qps - 82.0e6).abs() < 1.0, "got {qps}");
    }

    #[test]
    fn switch_bound_appears_without_client_limit() {
        let (cluster, mut model) = testbed();
        model.client_injection_qps = 0.0;
        let qps = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            0.5,
            1,
        );
        // The chain bound is on the order of a BQPS — far above the clients,
        // far below infinity.
        assert!(qps > 1.0e8, "got {qps}");
        assert!(qps < 1.0e10, "got {qps}");
    }

    #[test]
    fn recirculation_halves_switch_bound() {
        let (cluster, mut model) = testbed();
        model.client_injection_qps = 0.0;
        let one_pass = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            1.0,
            1,
        );
        let two_pass = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            1.0,
            2,
        );
        assert!(two_pass < one_pass);
        assert!(two_pass > one_pass * 0.4);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let (cluster, mut model) = testbed();
        model.client_injection_qps = 0.0;
        let read_only = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            0.0,
            1,
        );
        let write_only = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            1.0,
            1,
        );
        assert!(
            write_only < read_only,
            "writes traverse more hops: read={read_only}, write={write_only}"
        );
    }
}
