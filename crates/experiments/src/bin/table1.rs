//! Regenerates Table 1.
fn main() {
    netchain_experiments::table1::print_table1();
}
