//! Figure 11: transaction throughput vs contention index.
use netchain_experiments::{fig11, print_series};
fn main() {
    let clients = [1usize, 10, 100];
    let contention = [0.001, 0.01, 0.1, 1.0];
    let series = fig11::fig11(&clients, &contention, fig11::Fig11Params::default());
    print_series(
        "Figure 11: transaction throughput vs contention index",
        "contention index",
        "throughput (txn/s)",
        &series,
    );
}
