//! Figure 9(c): throughput vs write ratio.
use netchain_experiments::{fig9, print_series};
fn main() {
    let ratios = [0.0, 0.01, 0.2, 0.4, 0.6, 0.8, 1.0];
    let series = fig9::fig9c(&ratios);
    print_series(
        "Figure 9(c): throughput vs write ratio",
        "write ratio (%)",
        "throughput (QPS)",
        &series,
    );
}
