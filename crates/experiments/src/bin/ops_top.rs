//! Live text dashboard over the net or fabric dataplane.
//! See `crates/experiments/src/ops_top.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    netchain_experiments::ops_top::run_cli(&args);
}
