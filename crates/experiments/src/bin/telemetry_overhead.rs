//! The telemetry overhead guard: asserts the fabric's fast path with
//! tracing disabled is indistinguishable from noise against a traced run,
//! and exports the measurement as `BENCH_telemetry_overhead.jsonl`.
//!
//! `--smoke` runs a short configuration with a loose threshold (CI).

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netchain_experiments::telemetry_overhead::run_cli(smoke);
}
