//! Runs every table/figure reproduction in sequence (several minutes).
use netchain_experiments::{fabric_scale, failover_live, fig10, fig11, fig9, print_series, table1};
use netchain_sim::SimDuration;
fn main() {
    table1::print_table1();
    print_series(
        "Figure 9(a)",
        "value size (B)",
        "QPS",
        &fig9::fig9a(&[0, 16, 32, 64, 96, 128]),
    );
    print_series(
        "Figure 9(b)",
        "store size",
        "QPS",
        &fig9::fig9b(&[1_000, 20_000, 60_000, 100_000]),
    );
    print_series(
        "Figure 9(c)",
        "write ratio (%)",
        "QPS",
        &fig9::fig9c(&[0.0, 0.01, 0.2, 0.5, 1.0]),
    );
    print_series(
        "Figure 9(d)",
        "loss rate (%)",
        "QPS",
        &fig9::fig9d(&[0.0001, 0.001, 0.01, 0.1], SimDuration::from_millis(100)),
    );
    print_series(
        "Figure 9(e)",
        "QPS",
        "latency (µs)",
        &fig9::fig9e(SimDuration::from_millis(100)),
    );
    print_series(
        "Figure 9(f)",
        "switches",
        "BQPS",
        &fig9::fig9f(&[6, 12, 24, 48, 96]),
    );
    for groups in [1u32, 100] {
        let params = fig10::Fig10Params {
            virtual_groups: groups,
            ..Default::default()
        };
        let series = fig10::fig10(params);
        print_series(
            &format!("Figure 10 ({groups} vgroups)"),
            "time (s)",
            "QPS",
            &series,
        );
        println!("summary: {:?}\n", fig10::summarise(&params, &series[1]));
    }
    print_series(
        "Figure 11",
        "contention index",
        "txn/s",
        &fig11::fig11(
            &[1, 10, 100],
            &[0.001, 0.01, 0.1, 1.0],
            fig11::Fig11Params::default(),
        ),
    );
    let params = fabric_scale::FabricScaleParams::default();
    print_series(
        "Fabric scale: throughput vs worker shards",
        "worker shards",
        "ops/sec",
        &fabric_scale::throughput_vs_shards(params, &[1, 2, 4, 8]),
    );
    print_series(
        "Fabric scale: throughput vs chain length (4 shards)",
        "chain length (f+1)",
        "ops/sec",
        &fabric_scale::throughput_vs_chain_length(params, 4, &[1, 2, 3, 4, 5]),
    );
    print_series(
        "Fabric vs server baseline (measured, same load generator)",
        "workers (shards / servers)",
        "ops/sec",
        &fabric_scale::fabric_vs_baseline(params, &[1, 2, 4]),
    );
    // The live failover run (measured Figure 10 analogue).
    failover_live::run_cli(false);
}
