//! Measures the real-socket dataplane (`netchain-net`): open-loop ops/sec
//! and coordinated-omission-free latency quantiles, batched
//! (`recvmmsg`/`sendmmsg`) vs single-packet syscalls on the identical
//! pipeline. Writes the repo-top-level `BENCH_net.json`.
//!
//! `--smoke` runs a sub-second configuration (CI).

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netchain_experiments::net_scale::run_cli(smoke);
}
