//! Offline chain-consistency audit over exported JSONL artifacts.
//! See `crates/experiments/src/chain_audit.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(netchain_experiments::chain_audit::run_cli(&args));
}
