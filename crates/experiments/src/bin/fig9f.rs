//! Figure 9(f): scalability on spine-leaf fabrics (capacity model).
use netchain_experiments::{fig9, print_series};
fn main() {
    let switches = [6usize, 12, 24, 48, 96];
    let series = fig9::fig9f(&switches);
    print_series(
        "Figure 9(f): scalability",
        "number of switches",
        "throughput (BQPS)",
        &series,
    );
}
