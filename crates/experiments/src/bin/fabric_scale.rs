//! Measures the software fabric's aggregate ops/sec vs worker shard count
//! and vs chain length. Unlike the figure bins, these are real measurements
//! of this machine, not simulations of the paper's testbed. Results are
//! also exported as `BENCH_fabric_scale.jsonl` (one record per series plus
//! a traced live run's latency quantiles and per-hop summary), and a
//! machine-diffable summary — ops/sec per shard count, live p50/p99, and the
//! staged-vs-scalar burst comparison — is written to the repo-top-level
//! `BENCH_fabric.json` so the perf trajectory is diffable across PRs.
use netchain_experiments::{fabric_scale, print_series, Series};
use netchain_telemetry::{ArtifactWriter, Json};

fn record_series(artifact: &mut ArtifactWriter, sweep: &str, series: &[Series]) {
    for s in series {
        artifact.record(
            "series",
            vec![
                ("sweep", Json::str(sweep)),
                ("name", Json::str(&s.name)),
                (
                    "points",
                    Json::Arr(
                        s.points
                            .iter()
                            .map(|&(x, y)| Json::Arr(vec![Json::F64(x), Json::F64(y)]))
                            .collect(),
                    ),
                ),
            ],
        );
    }
}

fn main() {
    let params = fabric_scale::FabricScaleParams::default();
    let mut artifact = ArtifactWriter::new("fabric_scale");

    let shards = fabric_scale::throughput_vs_shards(params, &[1, 2, 4, 8, 16]);
    print_series(
        "Fabric scale: throughput vs worker shards",
        "worker shards",
        "ops/sec",
        &shards,
    );
    record_series(&mut artifact, "throughput_vs_shards", &shards);

    let chain = fabric_scale::throughput_vs_chain_length(params, 4, &[1, 2, 3, 4, 5]);
    print_series(
        "Fabric scale: throughput vs chain length (4 shards)",
        "chain length (f+1)",
        "ops/sec",
        &chain,
    );
    record_series(&mut artifact, "throughput_vs_chain_length", &chain);

    let baseline = fabric_scale::fabric_vs_baseline(params, &[1, 2, 4, 8]);
    print_series(
        "Fabric vs server baseline (measured, same load generator)",
        "workers (shards / servers)",
        "ops/sec",
        &baseline,
    );
    record_series(&mut artifact, "fabric_vs_baseline", &baseline);

    // One live (threaded, wall-clock) run with trace sampling on: the
    // latency and per-hop profile the capacity sweeps cannot see.
    let profile_params = fabric_scale::FabricScaleParams {
        ops: 50_000,
        ..params
    };
    let report = fabric_scale::live_profile(profile_params, 4);
    let quantiles = report.latency.quantiles();
    println!(
        "Live profile (4 shards, 50/40/10 mix, {}/4 shard threads pinned): {}",
        report.pinned_shards,
        quantiles.to_line()
    );
    let hops = report.trace_summary();
    if let Some(path) = hops.dominant_path() {
        println!(
            "traces: {} sampled; dominant path {}",
            hops.traces,
            netchain_telemetry::path_to_string(path),
        );
    }
    artifact.record(
        "latency",
        vec![
            ("shards", Json::U64(4)),
            ("quantiles", Json::from(quantiles)),
        ],
    );
    artifact.record("hops", vec![("summary", Json::from(&hops))]);

    // The staged-vs-scalar burst comparison (ISSUE 7 acceptance numbers).
    let (scalar_ns, staged_ns) = fabric_scale::staged_vs_scalar_burst(10_000, 5);
    let speedup = scalar_ns / staged_ns;
    println!(
        "Staged vs scalar (32-read burst): scalar {scalar_ns:.0} ns, staged {staged_ns:.0} ns, {speedup:.2}x"
    );

    // Machine-diffable top-level summary: ops/sec per shard count, the live
    // run's latency quantiles, and the staged-vs-scalar burst numbers.
    let series_json = |s: &Series| {
        Json::obj(vec![
            ("name", Json::str(&s.name)),
            (
                "points",
                Json::Arr(
                    s.points
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::F64(x), Json::F64(y)]))
                        .collect(),
                ),
            ),
        ])
    };
    let summary = Json::obj(vec![
        ("experiment", Json::str("fabric_scale")),
        (
            "ops_per_sec_vs_shards",
            Json::Arr(shards.iter().map(series_json).collect()),
        ),
        (
            "ops_per_sec_vs_chain_length",
            Json::Arr(chain.iter().map(series_json).collect()),
        ),
        (
            "live_profile",
            Json::obj(vec![
                ("shards", Json::U64(4)),
                ("pinned_shards", Json::U64(report.pinned_shards as u64)),
                ("quantiles", Json::from(quantiles)),
            ]),
        ),
        (
            "staged_vs_scalar_burst",
            Json::obj(vec![
                ("burst", Json::str("32 reads, chain tail")),
                ("scalar_ns_per_burst", Json::F64(scalar_ns)),
                ("staged_ns_per_burst", Json::F64(staged_ns)),
                ("speedup", Json::F64(speedup)),
            ]),
        ),
    ]);
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json");
    match std::fs::write(bench_path, summary.render() + "\n") {
        Ok(()) => println!("bench summary: {bench_path}"),
        Err(e) => eprintln!("bench summary not written ({bench_path}): {e}"),
    }

    if let Some(path) = artifact.write() {
        println!("artifact: {}", path.display());
    }
}
