//! Measures the software fabric's aggregate ops/sec vs worker shard count
//! and vs chain length. Unlike the figure bins, these are real measurements
//! of this machine, not simulations of the paper's testbed.
use netchain_experiments::{fabric_scale, print_series};

fn main() {
    let params = fabric_scale::FabricScaleParams::default();
    print_series(
        "Fabric scale: throughput vs worker shards",
        "worker shards",
        "ops/sec",
        &fabric_scale::throughput_vs_shards(params, &[1, 2, 4, 8, 16]),
    );
    print_series(
        "Fabric scale: throughput vs chain length (4 shards)",
        "chain length (f+1)",
        "ops/sec",
        &fabric_scale::throughput_vs_chain_length(params, 4, &[1, 2, 3, 4, 5]),
    );
    print_series(
        "Fabric vs server baseline (measured, same load generator)",
        "workers (shards / servers)",
        "ops/sec",
        &fabric_scale::fabric_vs_baseline(params, &[1, 2, 4, 8]),
    );
}
