//! Figure 9(d): throughput vs packet loss rate (measured by simulation).
use netchain_experiments::{fig9, print_series};
use netchain_sim::SimDuration;
fn main() {
    let losses = [0.00001, 0.0001, 0.001, 0.01, 0.1];
    let series = fig9::fig9d(&losses, SimDuration::from_millis(200));
    print_series(
        "Figure 9(d): throughput vs packet loss rate",
        "loss rate (%)",
        "throughput (QPS)",
        &series,
    );
}
