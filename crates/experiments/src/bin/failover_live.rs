//! Measured live failover: kills a switch inside the running multi-core
//! fabric, fails over, repairs the chains group by group, and prints the
//! throughput-vs-time series — the live analogue of Figure 10.
//!
//! `--smoke` runs a sub-second configuration (CI).

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netchain_experiments::failover_live::run_cli(smoke);
}
