//! Figure 9(a): throughput vs value size.
use netchain_experiments::{fig9, print_series};
fn main() {
    let sizes = [0usize, 16, 32, 64, 96, 128];
    let series = fig9::fig9a(&sizes);
    print_series(
        "Figure 9(a): throughput vs value size",
        "value size (B)",
        "throughput (QPS)",
        &series,
    );
}
