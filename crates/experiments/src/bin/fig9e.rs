//! Figure 9(e): latency vs throughput (measured by simulation).
use netchain_experiments::{fig9, print_series};
use netchain_sim::SimDuration;
fn main() {
    let series = fig9::fig9e(SimDuration::from_millis(200));
    print_series(
        "Figure 9(e): latency vs throughput",
        "throughput (QPS)",
        "latency (µs)",
        &series,
    );
}
