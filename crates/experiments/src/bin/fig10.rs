//! Figure 10: failure handling time series (1 and 100 virtual groups).
use netchain_experiments::{fig10, print_series};
fn main() {
    let vgroups: u32 = std::env::args()
        .skip_while(|a| a != "--vgroups")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runs: Vec<u32> = if vgroups == 0 {
        vec![1, 100]
    } else {
        vec![vgroups]
    };
    for groups in runs {
        let params = fig10::Fig10Params {
            virtual_groups: groups,
            ..Default::default()
        };
        let series = fig10::fig10(params);
        let summary = fig10::summarise(&params, &series[1]);
        print_series(
            &format!("Figure 10: failure handling, {groups} virtual group(s)"),
            "time (s)",
            "client throughput",
            &series,
        );
        println!("summary: {summary:?}\n");
    }
}
