//! CI perf gate: fresh BENCH_net.json / BENCH_fabric.json vs the committed
//! baseline. See `crates/experiments/src/bench_gate.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(netchain_experiments::bench_gate::run_cli(&args));
}
