//! Figure 9(b): throughput vs store size.
use netchain_experiments::{fig9, print_series};
fn main() {
    let sizes = [1_000u64, 20_000, 40_000, 60_000, 80_000, 100_000];
    let series = fig9::fig9b(&sizes);
    print_series(
        "Figure 9(b): throughput vs store size",
        "store size (items)",
        "throughput (QPS)",
        &series,
    );
}
