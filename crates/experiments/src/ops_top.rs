//! `ops_top`: a live text dashboard over the running dataplane.
//!
//! Two backends, matching the two real execution modes:
//!
//! * **net** — starts the socket dataplane plus a background open-loop
//!   generator, then polls every hosted switch replica with in-band
//!   [`netchain_wire::OpCode::Stat`] probes: ordinary UDP packets through
//!   the same worker sockets as data traffic. Each row diffs consecutive
//!   [`StatSnapshot`]s into rates and renders the coarse latency buckets as
//!   a sparkline.
//! * **fabric** — runs the live-controlled fabric via
//!   [`netchain_livectl::run_live_observed`] with a shared
//!   [`WindowRegistry`], and renders each shard's rolling per-slice ops as a
//!   sparkline, with queue depth and blocked counts alongside — the same
//!   windows the gray-failure detector judges.
//!
//! The rendering helpers are plain functions over snapshots and slices so
//! they are unit-testable without sockets or threads; `--once`/`--ticks N`
//! bound the dashboard for CI smoke use.

use netchain_core::HashRing;
use netchain_fabric::{FabricConfig, WorkloadSpec};
use netchain_livectl::{run_live_observed, LiveConfig};
use netchain_net::{run_open_loop, NetConfig, NetDataplane, OpenLoopConfig};
use netchain_switch::PipelineConfig;
use netchain_telemetry::{Json, SliceCounters, WindowChannel, WindowRegistry};
use netchain_wire::{
    ChainList, Ipv4Addr, Key, NetChainPacket, OpCode, StatSnapshot, Value, MAX_FRAME_LEN,
    STAT_LAT_BUCKETS,
};
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// Eight-level block sparkline of `values`, scaled to their maximum. All-zero
/// input renders as a flat baseline.
pub fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                BLOCKS[0]
            } else {
                BLOCKS[(v as u128 * 7 / max as u128) as usize]
            }
        })
        .collect()
}

/// The change between two consecutive probe snapshots of the same switch:
/// counters and latency buckets are saturating differences, gauges
/// (occupancy, queue) are taken from the newer snapshot.
pub fn stat_delta(prev: &StatSnapshot, cur: &StatSnapshot) -> StatSnapshot {
    let mut lat_buckets = [0u32; STAT_LAT_BUCKETS];
    for (d, (&c, &p)) in lat_buckets
        .iter_mut()
        .zip(cur.lat_buckets.iter().zip(&prev.lat_buckets))
    {
        *d = c.saturating_sub(p);
    }
    StatSnapshot {
        reads: cur.reads.saturating_sub(prev.reads),
        writes: cur.writes.saturating_sub(prev.writes),
        cas_ops: cur.cas_ops.saturating_sub(prev.cas_ops),
        deletes: cur.deletes.saturating_sub(prev.deletes),
        replies: cur.replies.saturating_sub(prev.replies),
        chain_forwards: cur.chain_forwards.saturating_sub(prev.chain_forwards),
        stale_drops: cur.stale_drops.saturating_sub(prev.stale_drops),
        misses: cur.misses.saturating_sub(prev.misses),
        blocked: cur.blocked.saturating_sub(prev.blocked),
        packets_seen: cur.packets_seen.saturating_sub(prev.packets_seen),
        store_size: cur.store_size,
        free_slots: cur.free_slots,
        queue_depth: cur.queue_depth,
        queue_cap: cur.queue_cap,
        lat_buckets,
    }
}

/// One dashboard row for a probed switch replica: rates from the snapshot
/// delta over `interval`, live queue gauge, and the latency-bucket
/// sparkline.
pub fn net_row(label: &str, delta: &StatSnapshot, interval: Duration) -> String {
    let secs = interval.as_secs_f64().max(1e-9);
    let lat: Vec<u64> = delta.lat_buckets.iter().map(|&b| u64::from(b)).collect();
    format!(
        "{label:<14} {:>9.0} ops/s {:>9.0} fwd/s {:>7.0} rep/s  q {:>4}/{:<4}  keys {:>6}  lat {}",
        delta.ops() as f64 / secs,
        delta.chain_forwards as f64 / secs,
        delta.replies as f64 / secs,
        delta.queue_depth,
        delta.queue_cap,
        delta.store_size,
        sparkline(&lat),
    )
}

/// The same probed-switch row as [`net_row`], as a machine-readable JSON
/// object (`--json` mode): rates, gauges, and the raw latency-bucket deltas.
pub fn net_row_json(label: &str, delta: &StatSnapshot, interval: Duration) -> Json {
    let secs = interval.as_secs_f64().max(1e-9);
    Json::obj(vec![
        ("target", Json::str(label)),
        ("ops_per_sec", Json::F64(delta.ops() as f64 / secs)),
        (
            "forwards_per_sec",
            Json::F64(delta.chain_forwards as f64 / secs),
        ),
        ("replies_per_sec", Json::F64(delta.replies as f64 / secs)),
        ("queue_depth", Json::U64(u64::from(delta.queue_depth))),
        ("queue_cap", Json::U64(u64::from(delta.queue_cap))),
        ("store_size", Json::U64(u64::from(delta.store_size))),
        (
            "lat_buckets",
            Json::Arr(
                delta
                    .lat_buckets
                    .iter()
                    .map(|&b| Json::U64(u64::from(b)))
                    .collect(),
            ),
        ),
    ])
}

/// One dashboard row for a fabric shard from its rolling-window series
/// (oldest slice first): per-slice ops sparkline plus the latest slice's
/// numbers.
pub fn fabric_row(shard: usize, series: &[SliceCounters], slice_len: Duration) -> String {
    let ops: Vec<u64> = series
        .iter()
        .map(|c| c[WindowChannel::Ops as usize])
        .collect();
    let last = series.last().copied().unwrap_or_default();
    let secs = slice_len.as_secs_f64().max(1e-9);
    format!(
        "shard {shard:<3} {} {:>9.0} ops/s  q {:>4}  blocked {:>5}",
        sparkline(&ops),
        last[WindowChannel::Ops as usize] as f64 / secs,
        last[WindowChannel::QueueDepth as usize],
        last[WindowChannel::Blocked as usize],
    )
}

/// The same shard row as [`fabric_row`] in JSON: the rolling per-slice ops
/// series plus the latest slice's gauges.
pub fn fabric_row_json(shard: usize, series: &[SliceCounters], slice_len: Duration) -> Json {
    let last = series.last().copied().unwrap_or_default();
    let secs = slice_len.as_secs_f64().max(1e-9);
    Json::obj(vec![
        ("shard", Json::U64(shard as u64)),
        (
            "slice_ops",
            Json::Arr(
                series
                    .iter()
                    .map(|c| Json::U64(c[WindowChannel::Ops as usize]))
                    .collect(),
            ),
        ),
        (
            "ops_per_sec",
            Json::F64(last[WindowChannel::Ops as usize] as f64 / secs),
        ),
        (
            "queue_depth",
            Json::U64(last[WindowChannel::QueueDepth as usize]),
        ),
        ("blocked", Json::U64(last[WindowChannel::Blocked as usize])),
    ])
}

/// Sends one in-band stat probe for `target` through the worker socket at
/// `addr` and decodes the reply, retrying inside a small budget.
fn probe(
    socket: &UdpSocket,
    addr: std::net::SocketAddr,
    prober_ip: Ipv4Addr,
    target: Ipv4Addr,
    request_id: &mut u64,
) -> Option<StatSnapshot> {
    let mut buf = [0u8; MAX_FRAME_LEN + 1];
    for _ in 0..5 {
        *request_id += 1;
        let pkt = NetChainPacket::query(
            prober_ip,
            40_000,
            target,
            OpCode::Stat,
            Key::from_u64(0),
            Value::empty(),
            ChainList::new(vec![]).ok()?,
            *request_id,
        );
        if socket.send_to(&pkt.to_bytes(), addr).is_err() {
            continue;
        }
        while let Ok((len, _)) = socket.recv_from(&mut buf) {
            let Ok(reply) = NetChainPacket::from_bytes(&buf[..len]) else {
                continue;
            };
            if reply.netchain.op == OpCode::StatReply && reply.netchain.request_id == *request_id {
                return StatSnapshot::decode(reply.netchain.value.as_bytes()).ok();
            }
        }
    }
    None
}

fn clear_screen(enabled: bool) {
    if enabled {
        print!("\x1b[2J\x1b[H");
    }
}

/// The net-mode dashboard: a 2-shard socket dataplane under open-loop load,
/// probed in band every `interval` for `ticks` refreshes. With `json`, each
/// tick prints one machine-readable JSON object instead of the text rows.
pub fn run_net(ticks: usize, interval: Duration, clear: bool, json: bool) {
    const SWITCHES: u32 = 4;
    const NUM_KEYS: u64 = 512;
    let ring = HashRing::new((0..SWITCHES).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
    let populate: Vec<(Key, Value)> = (0..NUM_KEYS)
        .map(|k| (Key::from_u64(k), Value::from_u64(0)))
        .collect();
    let config = NetConfig::new(ring, 2, PipelineConfig::tiny(1 << 16));
    let plane = NetDataplane::start(config, &populate).expect("start dataplane");

    let spec = WorkloadSpec::mixed(NUM_KEYS, u64::MAX, 80, 15);
    let duration = interval * (ticks as u32 + 2);
    let mut open_config = OpenLoopConfig::new(64, 2, 20_000.0, duration);
    open_config.drain_grace = Duration::from_secs(1);

    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind prober");
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("timeout");
    // Outside the generator's agent range (hosts 0..64): probe replies must
    // not be mistaken for data replies or vice versa.
    let prober_ip = Ipv4Addr::for_host(60_000);
    plane.register_client(prober_ip, socket.local_addr().expect("addr"));

    let shard_addrs = plane.shard_addrs();
    let mut request_id = 0u64;
    let mut prev: Vec<Vec<Option<StatSnapshot>>> =
        vec![vec![None; SWITCHES as usize]; shard_addrs.len()];

    let open = std::thread::scope(|scope| {
        let generator = scope.spawn(|| run_open_loop(&plane, spec, open_config));
        for tick in 0..ticks {
            std::thread::sleep(interval);
            let mut rows = Vec::new();
            let mut json_rows = Vec::new();
            for (s, &addr) in shard_addrs.iter().enumerate() {
                for sw in 0..SWITCHES {
                    let target = Ipv4Addr::for_switch(sw);
                    let label = format!("shard{s}/{target}");
                    let Some(snap) = probe(&socket, addr, prober_ip, target, &mut request_id)
                    else {
                        rows.push(format!("{label}   (no probe reply)"));
                        json_rows.push(Json::obj(vec![
                            ("target", Json::str(&label)),
                            ("probe_lost", Json::Bool(true)),
                        ]));
                        continue;
                    };
                    let delta = match &prev[s][sw as usize] {
                        Some(p) => stat_delta(p, &snap),
                        None => snap,
                    };
                    rows.push(net_row(&label, &delta, interval));
                    json_rows.push(net_row_json(&label, &delta, interval));
                    prev[s][sw as usize] = Some(snap);
                }
            }
            if json {
                println!(
                    "{}",
                    Json::obj(vec![
                        ("backend", Json::str("net")),
                        ("tick", Json::U64(tick as u64 + 1)),
                        ("interval_ms", Json::U64(interval.as_millis() as u64)),
                        ("rows", Json::Arr(json_rows)),
                    ])
                    .render()
                );
                continue;
            }
            clear_screen(clear);
            println!(
                "ops_top (net) — tick {}/{} — in-band stat probes every {:?}",
                tick + 1,
                ticks,
                interval
            );
            for row in rows {
                println!("{row}");
            }
            println!();
        }
        generator.join().expect("generator panicked")
    });
    let report = plane.shutdown();
    // In JSON mode stdout carries only JSON documents; the run summary goes
    // to stderr so pipelines can parse the output unfiltered.
    let summary = format!(
        "generator: offered {:.0} ops/s, achieved {:.0}; dataplane in/out {}/{} datagrams",
        open.offered_rate,
        open.achieved_rate,
        report.io.iter().map(|io| io.datagrams_in).sum::<u64>(),
        report.io.iter().map(|io| io.datagrams_out).sum::<u64>(),
    );
    if json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
}

/// The fabric-mode dashboard: a live-controlled fabric run observed through
/// a shared [`WindowRegistry`], polled every `interval`. With `json`, each
/// tick prints one machine-readable JSON object instead of the text rows.
pub fn run_fabric(ticks: usize, interval: Duration, clear: bool, json: bool) {
    const SHARDS: usize = 2;
    let fabric = FabricConfig {
        num_switches: 4,
        vnodes_per_switch: 8,
        ring_capacity: 256,
        ..FabricConfig::new(SHARDS)
    };
    let workload = WorkloadSpec::mixed(512, 0, 60, 30);
    let mut config = LiveConfig::new(fabric, workload, interval * (ticks as u32 + 1));
    config.retry_timeout = Duration::from_millis(200);
    let slice_len = config.slice;
    // Retain enough slices to cover the whole dashboard run.
    let slices = (config.duration.as_nanos() / slice_len.as_nanos().max(1) + 4) as usize;
    let windows = WindowRegistry::new(SHARDS, slices.max(8), slice_len);
    let poll = windows.clone();
    let runner = std::thread::spawn(move || run_live_observed(config, windows));

    let t0 = Instant::now();
    const SPARK_SLICES: usize = 24;
    for tick in 0..ticks {
        std::thread::sleep(interval);
        // Render up to the last *completed* slice; the current one is still
        // filling and would always read as a dip.
        let upto = poll.slice_of(t0.elapsed()).saturating_sub(1);
        if json {
            let rows: Vec<Json> = poll
                .series_across_shards(upto, SPARK_SLICES)
                .iter()
                .enumerate()
                .map(|(shard, series)| fabric_row_json(shard, series, slice_len))
                .collect();
            println!(
                "{}",
                Json::obj(vec![
                    ("backend", Json::str("fabric")),
                    ("tick", Json::U64(tick as u64 + 1)),
                    ("slice_ms", Json::U64(slice_len.as_millis() as u64)),
                    ("rows", Json::Arr(rows)),
                ])
                .render()
            );
            continue;
        }
        clear_screen(clear);
        println!(
            "ops_top (fabric) — tick {}/{} — {SPARK_SLICES} slices of {:?} per row",
            tick + 1,
            ticks,
            slice_len
        );
        for (shard, series) in poll
            .series_across_shards(upto, SPARK_SLICES)
            .iter()
            .enumerate()
        {
            println!("{}", fabric_row(shard, series, slice_len));
        }
        println!();
    }
    let report = runner.join().expect("live run panicked");
    let summary = format!(
        "run: {} ops at {:.0} ops/s, {} anomalies",
        report.completed_ops,
        report.ops_per_sec,
        report.anomalies.len(),
    );
    if json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
}

/// Command-line entry point shared by the experiment binary and the
/// workspace-root alias: `ops_top [--net|--fabric] [--once | --ticks N]
/// [--interval-ms N] [--no-clear] [--json]`.
///
/// `--json` implies a single tick unless `--ticks` is given, never clears
/// the screen, and prints one JSON document per tick on stdout (the run
/// summary moves to stderr) — the machine-readable one-shot mode.
pub fn run_cli(args: &[String]) {
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let json = has("--json");
    let ticks = if has("--once") || (json && value("--ticks").is_none()) {
        1
    } else {
        value("--ticks").unwrap_or(10) as usize
    };
    let interval = Duration::from_millis(value("--interval-ms").unwrap_or(500));
    let clear = !has("--no-clear") && !has("--once") && !json;
    if has("--fabric") {
        run_fabric(ticks, interval, clear, json);
    } else {
        run_net(ticks, interval, clear, json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_the_maximum() {
        assert_eq!(sparkline(&[0, 5, 10]), "▁▄█");
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        assert_eq!(sparkline(&[]), "");
        // A huge maximum must not overflow the scaling arithmetic.
        assert_eq!(sparkline(&[u64::MAX, 0]), "█▁");
    }

    #[test]
    fn stat_delta_diffs_counters_and_keeps_gauges() {
        let prev = StatSnapshot {
            reads: 100,
            replies: 40,
            packets_seen: 200,
            queue_depth: 9,
            store_size: 50,
            lat_buckets: [1, 2, 3, 4, 5, 6, 7, 8],
            ..Default::default()
        };
        let cur = StatSnapshot {
            reads: 160,
            replies: 70,
            packets_seen: 290,
            queue_depth: 3,
            queue_cap: 32,
            store_size: 51,
            lat_buckets: [2, 2, 10, 4, 5, 6, 7, 9],
            ..Default::default()
        };
        let d = stat_delta(&prev, &cur);
        assert_eq!(d.reads, 60);
        assert_eq!(d.replies, 30);
        assert_eq!(d.packets_seen, 90);
        assert_eq!(d.lat_buckets, [1, 0, 7, 0, 0, 0, 0, 1]);
        // Gauges are the live values, not differences.
        assert_eq!(d.queue_depth, 3);
        assert_eq!(d.queue_cap, 32);
        assert_eq!(d.store_size, 51);
        // A counter that went backwards (restarted worker) saturates at 0
        // instead of wrapping.
        assert_eq!(stat_delta(&cur, &prev).reads, 0);
    }

    #[test]
    fn stat_delta_clamps_every_counter_on_reset() {
        // A restarted worker reports counters far below the previous probe.
        // Every counter and every latency bucket must clamp to zero — an
        // underflowing wrap would render as a ~u64::MAX ops/s spike.
        let before_restart = StatSnapshot {
            reads: 1_000,
            writes: 900,
            cas_ops: 800,
            deletes: 700,
            replies: 600,
            chain_forwards: 500,
            stale_drops: 400,
            misses: 300,
            blocked: 200,
            packets_seen: 5_000,
            lat_buckets: [9; STAT_LAT_BUCKETS],
            ..Default::default()
        };
        let after_restart = StatSnapshot {
            reads: 3,
            writes: 2,
            queue_depth: 1,
            queue_cap: 32,
            store_size: 7,
            lat_buckets: [1; STAT_LAT_BUCKETS],
            ..Default::default()
        };
        let d = stat_delta(&before_restart, &after_restart);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 0);
        assert_eq!(d.cas_ops, 0);
        assert_eq!(d.deletes, 0);
        assert_eq!(d.replies, 0);
        assert_eq!(d.chain_forwards, 0);
        assert_eq!(d.stale_drops, 0);
        assert_eq!(d.misses, 0);
        assert_eq!(d.blocked, 0);
        assert_eq!(d.packets_seen, 0);
        assert_eq!(d.lat_buckets, [0; STAT_LAT_BUCKETS]);
        // Gauges always reflect the newer snapshot.
        assert_eq!(d.queue_depth, 1);
        assert_eq!(d.queue_cap, 32);
        assert_eq!(d.store_size, 7);
        // The rendered row stays finite and spike-free.
        let row = net_row("shard0/sw0", &d, Duration::from_millis(500));
        assert!(row.contains("0 ops/s"), "{row}");
    }

    #[test]
    fn json_rows_carry_the_same_numbers_as_text_rows() {
        let delta = StatSnapshot {
            reads: 500,
            writes: 100,
            chain_forwards: 250,
            replies: 550,
            queue_depth: 4,
            queue_cap: 32,
            store_size: 512,
            lat_buckets: [10, 20, 5, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        let doc = net_row_json("shard0/sw1", &delta, Duration::from_millis(500));
        assert_eq!(doc.get("target").and_then(Json::as_str), Some("shard0/sw1"));
        assert_eq!(doc.get("ops_per_sec").and_then(Json::as_f64), Some(1200.0));
        assert_eq!(doc.get("queue_depth").and_then(Json::as_f64), Some(4.0));
        // The render/parse round trip survives (what `--json` consumers do).
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(
            parsed.get("replies_per_sec").and_then(Json::as_f64),
            Some(1100.0)
        );

        let mut series = vec![SliceCounters::default(); 3];
        series[0][WindowChannel::Ops as usize] = 10;
        series[2][WindowChannel::Ops as usize] = 20;
        series[2][WindowChannel::QueueDepth as usize] = 6;
        let doc = fabric_row_json(1, &series, Duration::from_millis(20));
        assert_eq!(doc.get("shard").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("ops_per_sec").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(doc.get("queue_depth").and_then(Json::as_f64), Some(6.0));
        let Some(Json::Arr(ops)) = doc.get("slice_ops") else {
            panic!("slice_ops is an array");
        };
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn rows_render_rates_and_sparklines() {
        let delta = StatSnapshot {
            reads: 500,
            writes: 100,
            chain_forwards: 250,
            replies: 550,
            queue_depth: 4,
            queue_cap: 32,
            store_size: 512,
            lat_buckets: [10, 20, 5, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        let row = net_row("shard0/sw1", &delta, Duration::from_millis(500));
        // 600 ops over 0.5s = 1200 ops/s.
        assert!(row.contains("1200 ops/s"), "{row}");
        assert!(row.contains("q    4/32"), "{row}");
        assert!(row.contains('█'), "{row}");

        let mut series = vec![SliceCounters::default(); 3];
        series[0][WindowChannel::Ops as usize] = 10;
        series[2][WindowChannel::Ops as usize] = 20;
        series[2][WindowChannel::QueueDepth as usize] = 6;
        let row = fabric_row(1, &series, Duration::from_millis(20));
        // 20 ops in a 20 ms slice = 1000 ops/s.
        assert!(row.contains("1000 ops/s"), "{row}");
        assert!(row.contains("▄▁█"), "{row}");
        assert!(row.contains("q    6"), "{row}");
    }
}
