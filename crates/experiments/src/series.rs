//! Result series and plain-text/JSON reporting.

/// One named data series: `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (matches the paper's legend, e.g. "NetChain(4)").
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// Prints a figure's series as an aligned table followed by a JSON blob
/// (machine-readable, quoted in EXPERIMENTS.md).
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[Series]) {
    println!("== {title} ==");
    println!("   ({y_label} as a function of {x_label})");
    // Collect the union of x values, preserving order of first appearance.
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for &(x, _) in &s.points {
            if !xs.iter().any(|&e| (e - x).abs() < 1e-9) {
                xs.push(x);
            }
        }
    }
    print!("{:>16}", x_label);
    for s in series {
        print!("{:>22}", s.name);
    }
    println!();
    for &x in &xs {
        print!("{x:>16.6}");
        for s in series {
            match s.y_at(x) {
                Some(y) => print!("{y:>22.3}"),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }
    println!("JSON: {}", series_to_json(series));
    println!();
}

/// Serialises series to JSON by hand (the build is offline, so no serde).
/// The structure matches what `serde_json` would emit for the same struct —
/// `[{"name":"…","points":[[x,y],…]},…]` — though number *formatting* may
/// differ from serde's shortest-representation output for extreme
/// magnitudes (both parse to the same `f64`).
pub fn series_to_json(series: &[Series]) -> String {
    let mut out = String::from("[");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        for c in s.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\",\"points\":[");
        for (j, &(x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&json_f64(x));
            out.push(',');
            out.push_str(&json_f64(y));
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// JSON number formatting: integral floats keep a trailing `.0`, like serde.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/inf; null is what serde_json emits for them.
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let s = Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
    }

    #[test]
    fn printing_does_not_panic() {
        let series = vec![
            Series::new("x", vec![(1.0, 1.0)]),
            Series::new("y", vec![(1.0, 2.0), (2.0, 3.0)]),
        ];
        print_series("test", "param", "value", &series);
    }
}
