//! The net-mode scale run: *measured* ops/sec and open-loop latency
//! quantiles of the real-socket dataplane (`netchain-net`) on the machine it
//! runs on.
//!
//! Like [`crate::fabric_scale`], this is not a reproduction of a paper
//! figure — kernel UDP on one box is orders of magnitude slower than a
//! Tofino — but it is the honest measurement of what the repo's socket
//! deployment sustains, and it quantifies the one datapoint the tentpole
//! rewrite claims: batched syscalls (`recvmmsg`/`sendmmsg` via the vendored
//! `mmsg` shim) against the single-packet `recv_from`/`send_to` discipline,
//! on the *identical* sharded pipeline.
//!
//! Two runs per I/O mode:
//!
//! * a **latency run** at a modest offered rate, where the open-loop
//!   generator's coordinated-omission-free p50/p99/p999 is the result;
//! * a **saturation run** at an offered rate chosen above what the
//!   single-packet path sustains, where achieved ops/sec is the result and
//!   the burst/single ratio is the measured speedup.
//!
//! Results print as a table and land in the repo-top-level `BENCH_net.json`
//! so the perf trajectory is machine-diffable across PRs.

use netchain_fabric::WorkloadSpec;
use netchain_net::{
    run_open_loop, syscall_microbench, IoMode, IoStats, NetConfig, NetDataplane, OpenLoopConfig,
    OpenLoopReport,
};
use netchain_switch::PipelineConfig;
use netchain_telemetry::{
    merge_traces, trace_record_fields, ArtifactWriter, Json, PacketTrace, Quantiles, TraceConfig,
};
use netchain_wire::{Ipv4Addr, Key, Value};
use std::time::Duration;

use netchain_core::HashRing;

/// Trace sampling used by the latency runs: 1 in 2^6 queries carries in-band
/// evidence stamps end to end (client issue → shard register read → client
/// ack), enough for `chain_audit` to replay the run offline. Saturation runs
/// stay untraced — they measure capacity, not consistency.
const NET_TRACE_SAMPLING: TraceConfig = TraceConfig {
    enabled: true,
    sample_shift: 6,
    max_traces: 4096,
};

/// Shape of one net-scale measurement.
#[derive(Debug, Clone, Copy)]
pub struct NetScaleParams {
    /// Distinct keys, pre-populated and sampled by the workload.
    pub num_keys: u64,
    /// Dataplane worker shards (threads, each with its own socket).
    pub shards: usize,
    /// Concurrent sans-IO client agents in the generator.
    pub agents: usize,
    /// Generator threads.
    pub threads: usize,
    /// Offered rate of the latency run (ops/s) — modest, below saturation.
    pub latency_rate: f64,
    /// The saturation ladder: offered rates swept per I/O mode, capacity
    /// being the best achieved rate over the ladder. A ladder (rather than
    /// one "high enough" rate) keeps the measurement honest across machines:
    /// offering far beyond what co-located generators and workers sustain
    /// collapses *both* modes into scheduler thrash, so each mode's capacity
    /// is read at whichever rung it actually peaks.
    pub saturation_rates: [f64; 4],
    /// Issue window of each run.
    pub duration: Duration,
}

impl Default for NetScaleParams {
    fn default() -> Self {
        NetScaleParams {
            num_keys: 1024,
            shards: 2,
            agents: 128,
            threads: 2,
            latency_rate: 20_000.0,
            saturation_rates: [50_000.0, 100_000.0, 200_000.0, 400_000.0],
            duration: Duration::from_secs(1),
        }
    }
}

impl NetScaleParams {
    /// A fast CI configuration (finishes in a few seconds).
    pub fn smoke() -> Self {
        NetScaleParams {
            num_keys: 64,
            shards: 2,
            agents: 64,
            threads: 2,
            latency_rate: 4_000.0,
            saturation_rates: [25_000.0, 50_000.0, 100_000.0, 200_000.0],
            duration: Duration::from_millis(200),
        }
    }
}

/// One measured run: the open-loop report plus the dataplane's aggregated
/// syscall-layer counters.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// Which I/O discipline the dataplane workers used.
    pub io_mode: IoMode,
    /// The generator's aggregated report.
    pub open: OpenLoopReport,
    /// The dataplane workers' I/O counters, summed over shards.
    pub io: IoStats,
    /// Mean datagrams returned per successful receive call — the batching
    /// factor the burst path actually achieved (1.0 by construction for the
    /// single-packet path).
    pub batch_factor: f64,
    /// Merged client + worker trace fragments (empty unless the run was
    /// traced): full per-hop evidence paths on the dataplane's shared clock.
    pub traces: Vec<PacketTrace>,
}

fn sum_io(stats: &[IoStats]) -> IoStats {
    let mut total = IoStats::default();
    for s in stats {
        total.recv_calls += s.recv_calls;
        total.datagrams_in += s.datagrams_in;
        total.datagrams_out += s.datagrams_out;
        total.oversized += s.oversized;
        total.shim_dropped += s.shim_dropped;
        total.shim_duplicated += s.shim_duplicated;
        total.unrouted_replies += s.unrouted_replies;
        total.send_errors += s.send_errors;
        for (t, &f) in total.recv_fill.iter_mut().zip(&s.recv_fill) {
            *t += f;
        }
    }
    total
}

/// Starts a fresh dataplane in `io_mode`, offers `rate` ops/s of a
/// read-heavy mix (80% read / 15% write / 5% CAS) for the configured
/// duration, and returns the measured run.
pub fn run_mode(params: NetScaleParams, io_mode: IoMode, rate: f64) -> ModeRun {
    run_mode_traced(params, io_mode, rate, None)
}

/// [`run_mode`] with optional in-band trace sampling: workers and generator
/// clients stamp evidence against the dataplane's shared clock, and the
/// merged end-to-end traces come back in [`ModeRun::traces`].
pub fn run_mode_traced(
    params: NetScaleParams,
    io_mode: IoMode,
    rate: f64,
    trace: Option<TraceConfig>,
) -> ModeRun {
    let ring = HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
    let populate: Vec<(Key, Value)> = (0..params.num_keys)
        .map(|k| (Key::from_u64(k), Value::from_u64(0)))
        .collect();
    let config = NetConfig {
        io_mode,
        trace,
        ..NetConfig::new(ring, params.shards, PipelineConfig::tiny(1 << 16))
    };
    let plane = NetDataplane::start(config, &populate).expect("start dataplane");

    let spec = WorkloadSpec::mixed(params.num_keys, u64::MAX, 80, 15);
    let mut open_config = OpenLoopConfig::new(params.agents, params.threads, rate, params.duration);
    open_config.drain_grace = Duration::from_secs(2);
    open_config.trace = trace;
    let mut open = run_open_loop(&plane, spec, open_config);
    let report = plane.shutdown();
    let io = sum_io(&report.io);
    let batch_factor = if io.recv_calls > 0 {
        io.datagrams_in as f64 / io.recv_calls as f64
    } else {
        0.0
    };
    // Client fragments (issue/ack) and worker fragments (switch hops) carry
    // the same trace ids; merging yields whole per-query paths.
    let mut fragments = std::mem::take(&mut open.traces);
    fragments.extend(report.traces);
    let traces = merge_traces(fragments);
    ModeRun {
        io_mode,
        open,
        io,
        batch_factor,
        traces,
    }
}

/// Sweeps the saturation ladder in `io_mode` and returns every run plus the
/// index of the capacity point (best achieved rate).
pub fn capacity_sweep(params: NetScaleParams, io_mode: IoMode) -> (Vec<ModeRun>, usize) {
    let runs: Vec<ModeRun> = params
        .saturation_rates
        .iter()
        .map(|&rate| run_mode(params, io_mode, rate))
        .collect();
    let best = runs
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.open
                .achieved_rate
                .partial_cmp(&b.1.open.achieved_rate)
                .expect("achieved rates are finite")
        })
        .map(|(i, _)| i)
        .expect("ladder is non-empty");
    (runs, best)
}

fn print_run(label: &str, run: &ModeRun) {
    let q = run.open.latency.quantiles();
    println!(
        "  {label:<28} offered {:>9.0} ops/s  achieved {:>9.0} ops/s  \
         p50 {:>7.1}us  p99 {:>8.1}us  p999 {:>8.1}us  batch {:>4.1}",
        run.open.offered_rate,
        run.open.achieved_rate,
        q.p50_ns as f64 / 1e3,
        q.p99_ns as f64 / 1e3,
        q.p999_ns as f64 / 1e3,
        run.batch_factor,
    );
}

fn quantiles_json(q: &Quantiles) -> Json {
    Json::from(*q)
}

fn run_json(run: &ModeRun) -> Json {
    let q = run.open.latency.quantiles();
    Json::obj(vec![
        ("io_mode", Json::str(run.io_mode.label())),
        ("offered_ops_per_sec", Json::F64(run.open.offered_rate)),
        ("achieved_ops_per_sec", Json::F64(run.open.achieved_rate)),
        ("issued", Json::U64(run.open.issued)),
        ("completed", Json::U64(run.open.completed)),
        ("retries", Json::U64(run.open.retries)),
        ("abandoned", Json::U64(run.open.abandoned)),
        (
            "version_regressions",
            Json::U64(run.open.version_regressions),
        ),
        ("quantiles", quantiles_json(&q)),
        ("recv_calls", Json::U64(run.io.recv_calls)),
        ("datagrams_in", Json::U64(run.io.datagrams_in)),
        ("datagrams_out", Json::U64(run.io.datagrams_out)),
        ("batch_factor", Json::F64(run.batch_factor)),
        (
            "recv_fill",
            Json::Arr(run.io.recv_fill.iter().map(|&c| Json::U64(c)).collect()),
        ),
    ])
}

/// Renders the recv-batch-occupancy histogram as per-bucket percentages of
/// all recv calls, e.g. `≤1:82% ≤2:9% ≤4:5% ...` (empty buckets omitted).
fn fill_summary(io: &IoStats) -> String {
    let total: u64 = io.recv_fill.iter().sum();
    if total == 0 {
        return "n/a".to_string();
    }
    netchain_net::RECV_FILL_BOUNDS
        .iter()
        .zip(&io.recv_fill)
        .filter(|(_, &c)| c > 0)
        .map(|(b, &c)| format!("≤{b}:{:.0}%", 100.0 * c as f64 / total as f64))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs the full net-scale measurement (both I/O modes, latency and
/// saturation points), prints the table, and writes `BENCH_net.json`.
pub fn run_cli(smoke: bool) {
    let params = if smoke {
        NetScaleParams::smoke()
    } else {
        NetScaleParams::default()
    };
    let mut artifact = ArtifactWriter::new("net_scale");

    println!(
        "Net scale: {} shards, {} agents on {} generator threads, {} keys, {:?} per run{}",
        params.shards,
        params.agents,
        params.threads,
        params.num_keys,
        params.duration,
        if smoke { " (smoke)" } else { "" },
    );

    println!("Latency runs (open loop, coordinated-omission-free, traced):");
    let lat_burst = run_mode_traced(
        params,
        IoMode::Burst,
        params.latency_rate,
        Some(NET_TRACE_SAMPLING),
    );
    print_run("burst (recvmmsg/sendmmsg)", &lat_burst);
    let lat_single = run_mode_traced(
        params,
        IoMode::Single,
        params.latency_rate,
        Some(NET_TRACE_SAMPLING),
    );
    print_run("single (recv_from/send_to)", &lat_single);

    println!("Saturation ladder (capacity = best achieved rate per mode):");
    let (burst_runs, burst_best) = capacity_sweep(params, IoMode::Burst);
    for run in &burst_runs {
        print_run("burst (recvmmsg/sendmmsg)", run);
    }
    let (single_runs, single_best) = capacity_sweep(params, IoMode::Single);
    for run in &single_runs {
        print_run("single (recv_from/send_to)", run);
    }

    let burst_capacity = burst_runs[burst_best].open.achieved_rate;
    let single_capacity = single_runs[single_best].open.achieved_rate;
    let speedup = burst_capacity / single_capacity.max(1.0);
    println!(
        "Capacity: batched {:.0} ops/s vs single-packet {:.0} ops/s ({speedup:.2}x); \
         burst batch factor at capacity {:.1} datagrams/recv call",
        burst_capacity, single_capacity, burst_runs[burst_best].batch_factor,
    );
    // The batch-fill distribution explains the speedup (or its absence): a
    // recvmmsg that mostly returns 1–2 datagrams pays its extra setup cost
    // without amortising anything.
    println!(
        "Burst recv fill at capacity: {}",
        fill_summary(&burst_runs[burst_best].io),
    );

    // The controlled syscall comparison: one thread, one socket pair, the
    // same frames — the per-datagram cost the mmsg shim actually changes,
    // free of the scheduler placement noise the co-located system runs are
    // subject to on small machines.
    let bench = syscall_microbench(if smoke { 100 } else { 2_000 }, 5);
    println!(
        "Syscall microbench: single {:.0} ns/datagram, batched {:.0} ns/datagram \
         ({:.2}x) over {}-datagram bursts",
        bench.single_ns_per_datagram,
        bench.burst_ns_per_datagram,
        bench.speedup(),
        netchain_net::iobench::MAX_BURST,
    );

    for run in [&lat_burst, &lat_single]
        .into_iter()
        .chain(&burst_runs)
        .chain(&single_runs)
    {
        artifact.record("run", vec![("data", run_json(run))]);
    }
    // Per-trace evidence records from the traced latency runs, for offline
    // consistency auditing (`chain_audit`) of the real-socket path. The two
    // runs are separate dataplanes with separate timebases and version
    // histories; the `run` label keeps the auditor from mixing them.
    for (label, run) in [
        ("latency-burst", &lat_burst),
        ("latency-single", &lat_single),
    ] {
        for trace in &run.traces {
            let mut fields = trace_record_fields(trace);
            fields.push(("run", Json::str(label)));
            artifact.record("trace", fields);
        }
    }

    let summary = Json::obj(vec![
        ("experiment", Json::str("net_scale")),
        ("smoke", Json::Bool(smoke)),
        (
            "latency",
            Json::Arr(vec![run_json(&lat_burst), run_json(&lat_single)]),
        ),
        (
            "saturation_ladder",
            Json::obj(vec![
                (
                    "burst",
                    Json::Arr(burst_runs.iter().map(run_json).collect()),
                ),
                (
                    "single",
                    Json::Arr(single_runs.iter().map(run_json).collect()),
                ),
            ]),
        ),
        (
            "capacity",
            Json::obj(vec![
                ("burst_ops_per_sec", Json::F64(burst_capacity)),
                ("single_ops_per_sec", Json::F64(single_capacity)),
                ("burst_vs_single_speedup", Json::F64(speedup)),
            ]),
        ),
        (
            "syscall_microbench",
            Json::obj(vec![
                (
                    "burst_size",
                    Json::U64(netchain_net::iobench::MAX_BURST as u64),
                ),
                (
                    "single_ns_per_datagram",
                    Json::F64(bench.single_ns_per_datagram),
                ),
                (
                    "burst_ns_per_datagram",
                    Json::F64(bench.burst_ns_per_datagram),
                ),
                ("speedup", Json::F64(bench.speedup())),
            ]),
        ),
    ]);
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    match std::fs::write(bench_path, summary.render() + "\n") {
        Ok(()) => println!("bench summary: {bench_path}"),
        Err(e) => eprintln!("bench summary not written ({bench_path}): {e}"),
    }

    if let Some(path) = artifact.write() {
        println!("artifact: {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_both_modes() {
        let mut params = NetScaleParams::smoke();
        params.duration = Duration::from_millis(100);
        let burst = run_mode(params, IoMode::Burst, params.latency_rate);
        let single = run_mode(params, IoMode::Single, params.latency_rate);
        for run in [&burst, &single] {
            assert!(run.open.issued > 0);
            assert!(run.open.achieved_rate > 0.0);
            assert_eq!(run.open.version_regressions, 0);
            assert!(run.io.datagrams_in > 0);
        }
        // The single-packet path is one datagram per call by construction.
        assert!((single.batch_factor - 1.0).abs() < 1e-9);
        assert!(burst.batch_factor >= 1.0);
    }

    #[test]
    fn traced_latency_run_yields_clean_auditable_traces() {
        let mut params = NetScaleParams::smoke();
        params.duration = Duration::from_millis(100);
        let run = run_mode_traced(
            params,
            IoMode::Burst,
            params.latency_rate,
            Some(NET_TRACE_SAMPLING),
        );
        assert!(!run.traces.is_empty(), "sampled traces were recorded");
        // The merged traces must pass the full offline audit: no fault was
        // injected, so any violation here is a bug in the stamps, the merge,
        // or the dataplane itself.
        let journal = netchain_telemetry::Journal::new();
        let report = netchain_telemetry::audit(&run.traces, &journal, &Default::default());
        assert!(report.checked > 0, "the auditor judged real operations");
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }
}
