//! Table 1: comparison of packet-processing capabilities of a server and a
//! programmable switch. The rows are reproduced from the calibration
//! constants (spec-sheet numbers, not measurements this repository can make).

use crate::calib;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Metric name.
    pub metric: &'static str,
    /// Value for a highly-optimised server (NetBricks-class).
    pub server: String,
    /// Value for a Tofino-class switch.
    pub switch: String,
}

/// Produces the three rows of Table 1.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            metric: "Packets per second",
            server: format!("{:.0} million", calib::SERVER_PPS / 1e6),
            switch: format!("{:.1} billion", calib::SWITCH_PPS / 1e9),
        },
        Table1Row {
            metric: "Bandwidth",
            server: format!("{:.0} Gbps", calib::SERVER_BANDWIDTH_BPS / 1e9),
            switch: format!("{:.1} Tbps", calib::SWITCH_BANDWIDTH_BPS / 1e12),
        },
        Table1Row {
            metric: "Processing delay",
            server: format!("{:.0} µs", calib::SERVER_DELAY.as_micros_f64()),
            switch: format!("{:.1} µs", calib::SWITCH_DELAY.as_micros_f64()),
        },
    ]
}

/// Prints Table 1.
pub fn print_table1() {
    println!("== Table 1: packet-processing capabilities (server vs switch) ==");
    println!("{:<22}{:>18}{:>18}", "Metric", "Server", "Switch");
    for row in table1() {
        println!("{:<22}{:>18}{:>18}", row.metric, row.server, row.switch);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_rows_and_switch_wins() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        print_table1();
    }
}
