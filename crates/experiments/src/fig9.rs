//! Figure 9: throughput, latency and scalability of NetChain vs the
//! server-based baseline.
//!
//! * (a) throughput vs value size, (b) vs store size, (c) vs write ratio —
//!   NetChain lines come from the capacity model (they are client-bound at
//!   82 MQPS on the testbed, exactly as measured in the paper), the baseline
//!   from the calibrated analytic model.
//! * (d) throughput vs packet loss rate — both systems measured with the
//!   packet-level simulator at a scaled offered load; the NetChain result is
//!   reported as goodput fraction × the loss-free plateau.
//! * (e) latency vs throughput — both systems measured with the packet-level
//!   simulator.
//! * (f) scalability on spine–leaf fabrics — capacity model, the same method
//!   the paper's own §8.3 simulator uses.

use crate::calib;
use crate::capacity::CapacityModel;
use crate::series::Series;
use crate::zk;
use netchain_baseline::{BaselineCluster, BaselineConfig, BaselineWorkload, ServerCostModel};
use netchain_core::{ClusterConfig, NetChainCluster, WorkloadConfig};
use netchain_sim::{LinkParams, SimDuration};
use netchain_switch::PipelineConfig;

fn testbed_cluster() -> NetChainCluster {
    NetChainCluster::testbed(ClusterConfig::default())
}

fn netchain_plateau_qps(
    cluster: &NetChainCluster,
    write_ratio: f64,
    passes: usize,
    servers: usize,
) -> f64 {
    let model = CapacityModel {
        switch_pps: calib::SWITCH_PPS,
        client_injection_qps: 0.0,
    };
    let switch_bound = model.max_throughput(
        cluster.sim.topology(),
        cluster.sim.routing(),
        cluster.ring(),
        &cluster.layout.switches,
        &cluster.layout.hosts,
        write_ratio,
        passes,
    );
    switch_bound.min(calib::CLIENT_INJECTION_QPS * servers as f64)
}

/// Figure 9(a): throughput vs value size (bytes).
pub fn fig9a(value_sizes: &[usize]) -> Vec<Series> {
    let cluster = testbed_cluster();
    let pipeline = PipelineConfig::tofino_prototype();
    let zk_qps = zk::zk_saturation_qps(&ServerCostModel::zookeeper_calibrated(), 3, 0.01);
    let mut series: Vec<Series> = Vec::new();
    for servers in 1..=4 {
        let points = value_sizes
            .iter()
            .map(|&size| {
                let passes = pipeline.passes_for_value(size);
                (
                    size as f64,
                    netchain_plateau_qps(&cluster, 0.01, passes, servers),
                )
            })
            .collect();
        series.push(Series::new(format!("NetChain({servers})"), points));
    }
    let max_points = value_sizes
        .iter()
        .map(|&size| {
            let passes = pipeline.passes_for_value(size);
            let model = CapacityModel {
                switch_pps: calib::SWITCH_PPS,
                client_injection_qps: 0.0,
            };
            (
                size as f64,
                model.max_throughput(
                    cluster.sim.topology(),
                    cluster.sim.routing(),
                    cluster.ring(),
                    &cluster.layout.switches,
                    &cluster.layout.hosts,
                    0.01,
                    passes,
                ),
            )
        })
        .collect();
    series.push(Series::new("NetChain(max)", max_points));
    series.push(Series::new(
        "ZooKeeper",
        value_sizes.iter().map(|&s| (s as f64, zk_qps)).collect(),
    ));
    series
}

/// Figure 9(b): throughput vs store size (number of key-value items).
pub fn fig9b(store_sizes: &[u64]) -> Vec<Series> {
    let cluster = testbed_cluster();
    let pipeline = PipelineConfig::tofino_prototype();
    let zk_qps = zk::zk_saturation_qps(&ServerCostModel::zookeeper_calibrated(), 3, 0.01);
    let capacity_items = pipeline.slots_per_stage as u64;
    let mut series: Vec<Series> = Vec::new();
    for servers in 1..=4 {
        let plateau = netchain_plateau_qps(&cluster, 0.01, 1, servers);
        let points = store_sizes
            .iter()
            .map(|&n| {
                // Store sizes beyond the provisioned slots cannot be installed;
                // within the provisioned range throughput is flat (on-chip
                // lookups are O(1)).
                let y = if n <= capacity_items { plateau } else { 0.0 };
                (n as f64, y)
            })
            .collect();
        series.push(Series::new(format!("NetChain({servers})"), points));
    }
    series.push(Series::new(
        "NetChain(max)",
        store_sizes
            .iter()
            .map(|&n| {
                let y = if n <= capacity_items {
                    netchain_plateau_qps(&cluster, 0.01, 1, usize::MAX / 2)
                } else {
                    0.0
                };
                (n as f64, y)
            })
            .collect(),
    ));
    series.push(Series::new(
        "ZooKeeper",
        store_sizes.iter().map(|&n| (n as f64, zk_qps)).collect(),
    ));
    series
}

/// Figure 9(c): throughput vs write ratio (fraction of writes, 0–1).
pub fn fig9c(write_ratios: &[f64]) -> Vec<Series> {
    let cluster = testbed_cluster();
    let cost = ServerCostModel::zookeeper_calibrated();
    let mut series: Vec<Series> = Vec::new();
    for servers in 1..=4 {
        let points = write_ratios
            .iter()
            .map(|&w| (w * 100.0, netchain_plateau_qps(&cluster, w, 1, servers)))
            .collect();
        series.push(Series::new(format!("NetChain({servers})"), points));
    }
    series.push(Series::new(
        "NetChain(max)",
        write_ratios
            .iter()
            .map(|&w| {
                (
                    w * 100.0,
                    netchain_plateau_qps(&cluster, w, 1, usize::MAX / 2),
                )
            })
            .collect(),
    ));
    series.push(Series::new(
        "ZooKeeper",
        write_ratios
            .iter()
            .map(|&w| (w * 100.0, zk::zk_saturation_qps(&cost, 3, w)))
            .collect(),
    ));
    series
}

/// Figure 9(d): throughput vs packet loss rate (fraction, e.g. 0.01 = 1 %).
///
/// Both systems are measured with the packet-level simulator; `sim_duration`
/// bounds the simulated time per point (the default binary uses 200 ms).
pub fn fig9d(loss_rates: &[f64], sim_duration: SimDuration) -> Vec<Series> {
    let mut netchain_points = Vec::new();
    let mut zookeeper_points = Vec::new();
    for &loss in loss_rates {
        // --- NetChain: goodput fraction at a scaled offered load. ---
        let config = ClusterConfig {
            link: LinkParams::datacenter_40g().with_loss(loss),
            ..Default::default()
        };
        let mut cluster = NetChainCluster::testbed(config);
        cluster.populate_store(1_000, 64);
        let offered_per_client = 50_000.0;
        for host in 0..4 {
            cluster.install_workload_client(
                host,
                WorkloadConfig {
                    duration: sim_duration,
                    rate_qps: offered_per_client,
                    write_ratio: 0.01,
                    num_keys: 1_000,
                    throughput_bucket: sim_duration,
                    ..Default::default()
                },
            );
        }
        cluster
            .sim
            .run_for(sim_duration + SimDuration::from_millis(50));
        let mut issued = 0u64;
        let mut completed = 0u64;
        for host in 0..4 {
            let client = cluster.workload_client(host).expect("installed");
            issued += client.issued();
            completed += client.agent_stats().completed;
        }
        let goodput_fraction = if issued == 0 {
            0.0
        } else {
            completed as f64 / issued as f64
        };
        let plateau = calib::CLIENT_INJECTION_QPS * 4.0;
        netchain_points.push((loss * 100.0, plateau * goodput_fraction));

        // --- Baseline: measured saturation throughput under loss. ---
        let mut baseline_config = BaselineConfig::default();
        baseline_config.clients = 4;
        baseline_config.link = baseline_config.link.with_loss(loss);
        let workload = BaselineWorkload {
            duration: sim_duration,
            rate_qps: 0.0,
            closed_loop: 32,
            write_ratio: 0.01,
            num_keys: 1_000,
            throughput_bucket: sim_duration,
            ..Default::default()
        };
        let mut baseline = BaselineCluster::new(baseline_config, workload);
        baseline.populate_store(1_000, 64);
        baseline
            .sim
            .run_for(sim_duration + SimDuration::from_millis(50));
        let completed = baseline.total_completed();
        zookeeper_points.push((loss * 100.0, completed as f64 / sim_duration.as_secs_f64()));
    }
    vec![
        Series::new("NetChain(4)", netchain_points),
        Series::new("ZooKeeper", zookeeper_points),
    ]
}

/// Figure 9(e): latency vs throughput. Returns (NetChain read/write,
/// ZooKeeper read, ZooKeeper write) series with x = delivered QPS and
/// y = latency in µs.
pub fn fig9e(sim_duration: SimDuration) -> Vec<Series> {
    // --- NetChain: latency is flat until saturation; measure at a few
    // offered loads on the simulated testbed and add the calibrated
    // client-stack delay. ---
    let mut netchain_points = Vec::new();
    for &rate in &[1_000.0, 10_000.0, 50_000.0, 200_000.0] {
        let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
        cluster.populate_store(1_000, 64);
        cluster.install_workload_client(
            0,
            WorkloadConfig {
                duration: sim_duration,
                rate_qps: rate,
                write_ratio: 0.5,
                num_keys: 1_000,
                throughput_bucket: sim_duration,
                ..Default::default()
            },
        );
        cluster
            .sim
            .run_for(sim_duration + SimDuration::from_millis(10));
        let host = cluster.layout.hosts[0];
        let client = cluster
            .sim
            .node_as_mut::<netchain_core::WorkloadClient>(host)
            .expect("installed");
        let completed = client.agent_stats().completed;
        let fabric_latency = client
            .read_latency()
            .mean()
            .or_else(|| client.write_latency().mean())
            .map(|d| d.as_micros_f64())
            .unwrap_or(0.0);
        let latency = fabric_latency + calib::NETCHAIN_CLIENT_LATENCY.as_micros_f64();
        // Report the x axis at the *unscaled* equivalent: the measured point
        // demonstrates flatness; the plateau comes from Figure 9(a-c).
        netchain_points.push((completed as f64 / sim_duration.as_secs_f64(), latency));
    }

    // --- Baseline: drive increasing offered load and record read/write
    // latency separately. ---
    let mut zk_read_points = Vec::new();
    let mut zk_write_points = Vec::new();
    for &rate in &[1_000.0, 5_000.0, 20_000.0, 80_000.0, 200_000.0] {
        let workload = BaselineWorkload {
            duration: sim_duration,
            rate_qps: rate / 4.0,
            write_ratio: 0.1,
            num_keys: 1_000,
            throughput_bucket: sim_duration,
            ..Default::default()
        };
        let config = BaselineConfig {
            clients: 4,
            ..Default::default()
        };
        let mut baseline = BaselineCluster::new(config, workload);
        baseline.populate_store(1_000, 64);
        baseline
            .sim
            .run_for(sim_duration + SimDuration::from_millis(50));
        let delivered = baseline.total_completed() as f64 / sim_duration.as_secs_f64();
        let mut read_latency = Vec::new();
        let mut write_latency = Vec::new();
        for i in 0..4 {
            let client = baseline.client_mut(i);
            if let Some(l) = client.read_latency().mean() {
                read_latency.push(l.as_micros_f64());
            }
            if let Some(l) = client.write_latency().mean() {
                write_latency.push(l.as_micros_f64());
            }
        }
        if !read_latency.is_empty() {
            zk_read_points.push((
                delivered,
                read_latency.iter().sum::<f64>() / read_latency.len() as f64,
            ));
        }
        if !write_latency.is_empty() {
            zk_write_points.push((
                delivered,
                write_latency.iter().sum::<f64>() / write_latency.len() as f64,
            ));
        }
    }
    vec![
        Series::new("NetChain (read/write)", netchain_points),
        Series::new("ZooKeeper (read)", zk_read_points),
        Series::new("ZooKeeper (write)", zk_write_points),
    ]
}

/// Figure 9(f): read-only and write-only saturation throughput (BQPS) of
/// spine–leaf fabrics with the given total switch counts.
pub fn fig9f(switch_counts: &[usize]) -> Vec<Series> {
    let mut read_points = Vec::new();
    let mut write_points = Vec::new();
    for &total in switch_counts {
        // Non-blocking fabric: spines = half the leaves (paper §8.3), so a
        // total of n switches splits into n/3 spines and 2n/3 leaves.
        let spines = (total / 3).max(1);
        let leaves = total - spines;
        // Keep the modelled host count moderate: the capacity model samples
        // hosts anyway, and the client bound is disabled here.
        let hosts_per_leaf = 4;
        let config = ClusterConfig {
            vnodes_per_switch: 8,
            ..Default::default()
        };
        let cluster = NetChainCluster::spine_leaf(spines, leaves, hosts_per_leaf, config);
        let model = CapacityModel {
            switch_pps: calib::SWITCH_PPS,
            client_injection_qps: 0.0,
        };
        let read = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            0.0,
            1,
        );
        let write = model.max_throughput(
            cluster.sim.topology(),
            cluster.sim.routing(),
            cluster.ring(),
            &cluster.layout.switches,
            &cluster.layout.hosts,
            1.0,
            1,
        );
        read_points.push((total as f64, read / 1e9));
        write_points.push((total as f64, write / 1e9));
    }
    vec![
        Series::new("NetChain (read)", read_points),
        Series::new("NetChain (write)", write_points),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_netchain4_is_flat_at_82mqps_and_beats_zookeeper() {
        let series = fig9a(&[0, 64, 128]);
        let nc4 = series.iter().find(|s| s.name == "NetChain(4)").unwrap();
        for &(_, y) in &nc4.points {
            assert!(
                (y - 82.0e6).abs() < 1.0,
                "NetChain(4) should stay at 82 MQPS, got {y}"
            );
        }
        let zk = series.iter().find(|s| s.name == "ZooKeeper").unwrap();
        assert!(
            nc4.points[0].1 / zk.points[0].1 > 100.0,
            "orders of magnitude gap"
        );
    }

    #[test]
    fn fig9c_zookeeper_collapses_with_writes_netchain_does_not() {
        let series = fig9c(&[0.0, 0.5, 1.0]);
        let zk = series.iter().find(|s| s.name == "ZooKeeper").unwrap();
        assert!(zk.points[0].1 > 5.0 * zk.points[2].1);
        let nc4 = series.iter().find(|s| s.name == "NetChain(4)").unwrap();
        assert!((nc4.points[0].1 - nc4.points[2].1).abs() < 1.0);
    }

    #[test]
    fn fig9f_scales_linearly_and_reads_beat_writes() {
        let series = fig9f(&[6, 12, 24]);
        let read = &series[0];
        let write = &series[1];
        for (r, w) in read.points.iter().zip(&write.points) {
            assert!(r.1 > w.1, "reads must outpace writes");
        }
        // Roughly linear growth: quadrupling switches should at least triple
        // throughput.
        assert!(read.points[2].1 > read.points[0].1 * 3.0);
        assert!(write.points[2].1 > write.points[0].1 * 3.0);
    }

    #[test]
    fn fig9d_small_run_shows_zookeeper_hurt_more() {
        let series = fig9d(&[0.0, 0.05], SimDuration::from_millis(50));
        let nc = &series[0];
        let zk = &series[1];
        let nc_drop = nc.points[1].1 / nc.points[0].1.max(1.0);
        let zk_drop = zk.points[1].1 / zk.points[0].1.max(1.0);
        assert!(
            zk_drop < nc_drop,
            "loss should hurt the reliable-transport baseline more (zk {zk_drop:.3} vs nc {nc_drop:.3})"
        );
    }
}
