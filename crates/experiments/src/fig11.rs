//! Figure 11: distributed-transaction throughput vs contention index, with
//! NetChain or the server-based baseline as the lock server.
//!
//! The NetChain line is *measured*: closed-loop 2PL transaction clients
//! (`netchain_apps::TxnClient`) run against a simulated NetChain deployment,
//! acquiring ten CAS locks per transaction and aborting on conflict. The
//! baseline line uses the calibrated analytic lock-server model of
//! [`crate::zk`] (its lock operations are leader writes at millisecond
//! latency, so simulating them adds nothing but runtime).

use crate::series::Series;
use crate::zk;
use netchain_apps::{TxnClient, TxnWorkload};
use netchain_baseline::ServerCostModel;
use netchain_core::{ClusterConfig, NetChainCluster};
use netchain_sim::SimDuration;
use netchain_wire::Value;

/// Parameters for the transaction experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Params {
    /// How long each measured run lasts (simulated time).
    pub duration: SimDuration,
    /// Locks per transaction.
    pub locks_per_txn: usize,
    /// Size of the cold item set.
    pub cold_items: u64,
}

impl Default for Fig11Params {
    fn default() -> Self {
        Fig11Params {
            duration: SimDuration::from_millis(200),
            locks_per_txn: 10,
            cold_items: 10_000,
        }
    }
}

/// Measures NetChain transaction throughput (committed transactions per
/// second) for the given client count and contention index.
pub fn netchain_txn_throughput(clients: usize, contention_index: f64, params: Fig11Params) -> f64 {
    // A fabric with enough hosts for the requested client count.
    let hosts_per_leaf = clients.div_ceil(4).max(1);
    let config = ClusterConfig {
        vnodes_per_switch: 8,
        ..Default::default()
    };
    let mut cluster = NetChainCluster::spine_leaf(2, 4, hosts_per_leaf, config);

    let workload = TxnWorkload {
        namespace: 1,
        locks_per_txn: params.locks_per_txn,
        contention_index,
        cold_items: params.cold_items,
        start: SimDuration::ZERO,
        duration: params.duration,
        throughput_bucket: params.duration,
    };
    // Install every lock key on its chain.
    for key in workload.all_lock_keys() {
        cluster.populate_key(key, &Value::from_u64(0));
    }
    // Install the transaction clients on distinct hosts.
    let directory = cluster.directory();
    for client_idx in 0..clients {
        let host = cluster.layout.hosts[client_idx % cluster.layout.hosts.len()];
        let gw = cluster.layout.gateways[&host];
        let agent = cluster.agent_config(client_idx % cluster.layout.hosts.len());
        let txn_client = TxnClient::new(
            agent,
            directory.clone(),
            gw,
            client_idx as u64 + 1,
            workload,
        );
        cluster.sim.install_node(host, Box::new(txn_client));
    }
    cluster
        .sim
        .run_for(params.duration + SimDuration::from_millis(20));
    let mut committed = 0u64;
    for client_idx in 0..clients.min(cluster.layout.hosts.len()) {
        let host = cluster.layout.hosts[client_idx];
        if let Some(client) = cluster.sim.node_as::<TxnClient>(host) {
            committed += client.stats().committed;
        }
    }
    committed as f64 / params.duration.as_secs_f64()
}

/// Produces the Figure 11 series: one NetChain and one ZooKeeper line per
/// client count, over the given contention indices.
pub fn fig11(
    client_counts: &[usize],
    contention_indices: &[f64],
    params: Fig11Params,
) -> Vec<Series> {
    let cost = ServerCostModel::zookeeper_calibrated();
    let mut series = Vec::new();
    for &clients in client_counts {
        let netchain_points = contention_indices
            .iter()
            .map(|&ci| (ci, netchain_txn_throughput(clients, ci, params)))
            .collect();
        series.push(Series::new(
            format!("NetChain ({clients} clients)"),
            netchain_points,
        ));
        let zk_points = contention_indices
            .iter()
            .map(|&ci| {
                (
                    ci,
                    zk::zk_txn_throughput(&cost, 3, clients, params.locks_per_txn, ci),
                )
            })
            .collect();
        series.push(Series::new(
            format!("ZooKeeper ({clients} clients)"),
            zk_points,
        ));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> Fig11Params {
        Fig11Params {
            duration: SimDuration::from_millis(40),
            locks_per_txn: 4,
            cold_items: 500,
        }
    }

    #[test]
    fn netchain_beats_zookeeper_by_orders_of_magnitude() {
        let params = quick_params();
        let nc = netchain_txn_throughput(4, 0.01, params);
        let zk = zk::zk_txn_throughput(
            &ServerCostModel::zookeeper_calibrated(),
            3,
            4,
            params.locks_per_txn,
            0.01,
        );
        assert!(nc > 10.0 * zk, "NetChain {nc} vs ZooKeeper {zk}");
    }

    #[test]
    fn contention_reduces_netchain_throughput_with_many_clients() {
        let params = quick_params();
        let low = netchain_txn_throughput(8, 0.01, params);
        let high = netchain_txn_throughput(8, 1.0, params);
        assert!(
            high < low,
            "a single hot lock must reduce throughput: low-contention {low} vs high-contention {high}"
        );
    }
}
