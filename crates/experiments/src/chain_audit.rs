//! Offline chain-consistency audit over exported run artifacts.
//!
//! `chain_audit <dir-or-file>` replays the consistency story of a finished
//! run from its JSON-lines artifacts alone: `"trace"` records (the in-band
//! evidence stamps clients and switches left on sampled queries) plus the
//! control-plane journal (`"spans"` records in `BENCH_*.jsonl`,
//! `journal.span`/`journal.instant` events in `FLIGHT_*.jsonl`), fed through
//! [`netchain_telemetry::audit`]. Every matching file is audited
//! **independently** — trace ids and key fingerprints are only unique within
//! one run, so merging files would manufacture collisions. Within a file,
//! records are further partitioned by their optional `"run"` label
//! (`failover_live` emits one run per group count, `net_scale` one per I/O
//! mode — each with its own timebase and version history) and each labelled
//! run is audited against its own journal.
//!
//! Exit codes: `0` every audited file is clean, `1` at least one violation
//! (a structured report is also dumped through the flight recorder), `2`
//! usage error or no traces found anywhere.

use netchain_telemetry::{
    audit, journal_from_json, trace_from_json, AuditConfig, AuditReport, FlightRecorder, Journal,
    Json, PacketTrace,
};
use std::path::{Path, PathBuf};

/// What one artifact file contributed to the audit.
#[derive(Debug)]
pub struct FileAudit {
    /// The file that was audited.
    pub path: PathBuf,
    /// Decoded traces (evidence-bearing and bare alike).
    pub traces: usize,
    /// `"trace"` records rejected for a schema newer than this decoder —
    /// counted, never panicked over.
    pub rejected: usize,
    /// Lines that were not valid JSON objects.
    pub malformed: usize,
    /// The audit verdict over this file's traces and journal.
    pub report: AuditReport,
}

/// One run's worth of records inside an artifact file, keyed by the
/// optional `"run"` label (unlabelled records share the `""` run).
#[derive(Default)]
struct RunRecords {
    traces: Vec<PacketTrace>,
    journal: Journal,
}

/// Parses one JSONL artifact and audits each labelled run inside it against
/// that run's own journal, merging the verdicts into one per-file report.
pub fn audit_file(path: &Path, config: &AuditConfig) -> Result<FileAudit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut runs: std::collections::BTreeMap<String, RunRecords> =
        std::collections::BTreeMap::new();
    let mut rejected = 0usize;
    let mut malformed = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(line) else {
            malformed += 1;
            continue;
        };
        // BENCH records carry a "record" kind; FLIGHT events a "kind".
        let record = doc.get("record").and_then(Json::as_str).unwrap_or("");
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or("");
        let label = doc.get("run").and_then(Json::as_str).unwrap_or("");
        if record == "trace" {
            match trace_from_json(&doc) {
                Ok(t) => runs.entry(label.to_string()).or_default().traces.push(t),
                Err(_) => rejected += 1,
            }
        } else if record == "spans" {
            if let Some(j) = doc.get("journal") {
                merge_journal(
                    &mut runs.entry(label.to_string()).or_default().journal,
                    &journal_from_json(j),
                );
            }
        } else if kind == "journal.instant" {
            if let (Some(name), Some(at)) = (
                doc.get("name").and_then(Json::as_str),
                doc.get("at_ns").and_then(Json::as_u64),
            ) {
                let journal = &mut runs.entry(label.to_string()).or_default().journal;
                journal.instant(name, at);
            }
        } else if kind == "journal.span" {
            if let (Some(name), Some(start)) = (
                doc.get("name").and_then(Json::as_str),
                doc.get("at_ns").and_then(Json::as_u64),
            ) {
                let journal = &mut runs.entry(label.to_string()).or_default().journal;
                match doc.get("end_ns").and_then(Json::as_u64) {
                    Some(end) => journal.span(name, start, end),
                    None => {
                        journal.begin(name, start);
                    }
                }
            }
        }
    }
    let mut count = 0usize;
    let mut report = AuditReport::default();
    for run in runs.values() {
        count += run.traces.len();
        let part = audit(&run.traces, &run.journal, config);
        report.traces += part.traces;
        report.writes += part.writes;
        report.reads += part.reads;
        report.checked += part.checked;
        report.suppressed += part.suppressed;
        report.violations.extend(part.violations);
    }
    Ok(FileAudit {
        path: path.to_path_buf(),
        traces: count,
        rejected,
        malformed,
        report,
    })
}

fn merge_journal(into: &mut Journal, from: &Journal) {
    for i in from.instants() {
        into.instant(&i.name, i.at_ns);
    }
    for s in from.spans() {
        match s.end_ns {
            Some(end) => into.span(&s.name, s.start_ns, end),
            None => {
                into.begin(&s.name, s.start_ns);
            }
        }
    }
}

/// True for file names the auditor considers run artifacts.
fn is_artifact(name: &str) -> bool {
    (name.starts_with("BENCH_") || name.starts_with("FLIGHT_")) && name.ends_with(".jsonl")
}

/// Collects the artifact files under `target` (a directory scanned one level
/// deep, or a single file taken verbatim), sorted for stable output.
fn collect_files(target: &Path) -> Vec<PathBuf> {
    if target.is_file() {
        return vec![target.to_path_buf()];
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(target)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(is_artifact)
        })
        .collect();
    files.sort();
    files
}

/// The `chain_audit` command-line entry point. Returns the process exit
/// code: `0` clean, `1` violations found, `2` usage error / nothing to audit.
pub fn run_cli(args: &[String]) -> i32 {
    let target = match args.iter().find(|a| !a.starts_with("--")) {
        Some(t) => PathBuf::from(t),
        None => {
            eprintln!("usage: chain_audit <artifact-dir-or-file>");
            eprintln!("  audits BENCH_*.jsonl / FLIGHT_*.jsonl trace records for");
            eprintln!("  chain-consistency violations; exits 1 on any violation");
            return 2;
        }
    };
    let files = collect_files(&target);
    if files.is_empty() {
        eprintln!(
            "chain_audit: no BENCH_*.jsonl or FLIGHT_*.jsonl under {}",
            target.display()
        );
        return 2;
    }
    let config = AuditConfig::default();
    let mut audited_traces = 0usize;
    let mut all_violations = 0usize;
    let recorder = FlightRecorder::new(4096);
    for file in &files {
        let audit = match audit_file(file, &config) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("chain_audit: {e}");
                return 2;
            }
        };
        let name = audit
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?");
        println!(
            "{name}: {} traces ({} writes, {} reads), {} checked, {} suppressed, {} violations{}",
            audit.traces,
            audit.report.writes,
            audit.report.reads,
            audit.report.checked,
            audit.report.suppressed,
            audit.report.violations.len(),
            if audit.rejected > 0 {
                format!(" [{} future-schema records skipped]", audit.rejected)
            } else {
                String::new()
            },
        );
        for violation in &audit.report.violations {
            println!("  VIOLATION {}", violation.describe());
            recorder.record(
                violation.at_ns,
                "audit.violation",
                vec![
                    ("file", Json::str(name)),
                    ("violation", violation.to_json()),
                ],
            );
        }
        audited_traces += audit.traces;
        all_violations += audit.report.violations.len();
    }
    if audited_traces == 0 {
        eprintln!(
            "chain_audit: {} file(s) scanned but none contained trace records",
            files.len()
        );
        return 2;
    }
    if all_violations > 0 {
        if let Some(path) = recorder.dump("chain_audit") {
            eprintln!(
                "chain_audit: {all_violations} violation(s) — structured report at {}",
                path.display()
            );
        } else {
            eprintln!("chain_audit: {all_violations} violation(s)");
        }
        return 1;
    }
    println!(
        "chain_audit: clean — {audited_traces} trace(s) over {} file(s)",
        files.len()
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_telemetry::{
        trace_record_fields, Evidence, EvidenceOp, HopRole, HopStamp, ViolationKind, TRACE_SCHEMA,
    };

    fn ev(op: EvidenceOp, role: HopRole, ok: bool, fp: u32, seq: u64) -> Evidence {
        Evidence {
            op,
            role,
            ok,
            key_fp: fp,
            session: 0,
            seq,
        }
    }

    fn write_trace(id: u64, fp: u32, t: u64, pre: u64, next: u64) -> PacketTrace {
        PacketTrace {
            id,
            hops: vec![
                HopStamp {
                    hop_ip: 1,
                    at_ns: t,
                    evidence: Some(ev(EvidenceOp::Write, HopRole::ClientIssue, true, fp, 0)),
                },
                HopStamp {
                    hop_ip: 10,
                    at_ns: t + 10,
                    evidence: Some(ev(EvidenceOp::Write, HopRole::Head, pre > 0, fp, pre)),
                },
                HopStamp {
                    hop_ip: 11,
                    at_ns: t + 20,
                    evidence: Some(ev(EvidenceOp::Write, HopRole::Tail, pre > 0, fp, pre)),
                },
                HopStamp {
                    hop_ip: 1,
                    at_ns: t + 30,
                    evidence: Some(ev(EvidenceOp::Write, HopRole::ClientAck, true, fp, next)),
                },
            ],
        }
    }

    fn read_trace(id: u64, fp: u32, t: u64, seen: u64) -> PacketTrace {
        PacketTrace {
            id,
            hops: vec![
                HopStamp {
                    hop_ip: 1,
                    at_ns: t,
                    evidence: Some(ev(EvidenceOp::Read, HopRole::ClientIssue, true, fp, 0)),
                },
                HopStamp {
                    hop_ip: 11,
                    at_ns: t + 5,
                    evidence: Some(ev(EvidenceOp::Read, HopRole::Tail, true, fp, seen)),
                },
                HopStamp {
                    hop_ip: 1,
                    at_ns: t + 10,
                    evidence: Some(ev(EvidenceOp::Read, HopRole::ClientAck, true, fp, seen)),
                },
            ],
        }
    }

    fn record_line(kind: &str, fields: Vec<(&str, Json)>) -> String {
        let mut all = vec![("record", Json::str(kind))];
        all.extend(fields);
        Json::obj(all).render()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("netchain-chain-audit-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_artifact_audits_clean_and_dirty_artifact_trips() {
        let dir = tmp_dir("clean");
        let mut lines = vec![record_line(
            "trace",
            trace_record_fields(&write_trace(1, 7, 1_000, 1, 2)),
        )];
        lines.push(record_line(
            "trace",
            trace_record_fields(&read_trace(2, 7, 3_000, 2)),
        ));
        let clean = dir.join("BENCH_clean.jsonl");
        std::fs::write(&clean, lines.join("\n") + "\n").unwrap();
        let audit = audit_file(&clean, &AuditConfig::default()).unwrap();
        assert_eq!(audit.traces, 2);
        assert!(audit.report.is_clean(), "{:?}", audit.report.violations);
        assert_eq!(run_cli(&[dir.to_string_lossy().into_owned()]), 0);

        // A read that returns the pre-write version after the ack: stale.
        lines.push(record_line(
            "trace",
            trace_record_fields(&read_trace(3, 7, 5_000, 1)),
        ));
        std::fs::write(&clean, lines.join("\n") + "\n").unwrap();
        let audit = audit_file(&clean, &AuditConfig::default()).unwrap();
        // The seeded fault trips the freshness check (and, because the same
        // tail register had already served version 2, the per-replica
        // monotonicity check too — both are real).
        assert!(audit
            .report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::StaleRead));
        // Point the violation dump at the scratch dir, not the repo.
        std::env::set_var("NETCHAIN_ARTIFACT_DIR", &dir);
        let code = run_cli(&[dir.to_string_lossy().into_owned()]);
        std::env::remove_var("NETCHAIN_ARTIFACT_DIR");
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_spans_suppress_and_future_schemas_are_counted() {
        let dir = tmp_dir("journal");
        // Same stale read as above, but a repair span covering it: suppressed.
        let mut journal = Journal::new();
        journal.span("repair", 2_000, 6_000);
        let lines = [
            record_line(
                "trace",
                trace_record_fields(&write_trace(1, 7, 1_000, 1, 2)),
            ),
            record_line("trace", trace_record_fields(&read_trace(3, 7, 5_000, 1))),
            record_line("spans", vec![("journal", Json::from(&journal))]),
            // A future schema version: skipped and counted, never fatal.
            Json::obj(vec![
                ("record", Json::str("trace")),
                ("schema", Json::U64(TRACE_SCHEMA + 1)),
                ("id", Json::U64(9)),
                ("hops", Json::Arr(vec![])),
            ])
            .render(),
        ];
        let path = dir.join("BENCH_spans.jsonl");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let audit = audit_file(&path, &AuditConfig::default()).unwrap();
        assert!(audit.report.is_clean(), "{:?}", audit.report.violations);
        assert!(audit.report.suppressed > 0);
        assert_eq!(audit.rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_journal_events_feed_the_same_suppression() {
        let dir = tmp_dir("flight");
        let bench = [
            record_line(
                "trace",
                trace_record_fields(&write_trace(1, 7, 1_000, 1, 2)),
            ),
            record_line("trace", trace_record_fields(&read_trace(3, 7, 5_000, 1))),
            Json::obj(vec![
                ("kind", Json::str("journal.span")),
                ("name", Json::str("repair")),
                ("at_ns", Json::U64(2_000)),
                ("end_ns", Json::U64(6_000)),
            ])
            .render(),
        ];
        let path = dir.join("FLIGHT_run.jsonl");
        std::fs::write(&path, bench.join("\n") + "\n").unwrap();
        let audit = audit_file(&path, &AuditConfig::default()).unwrap();
        assert!(audit.report.is_clean(), "{:?}", audit.report.violations);
        assert!(audit.report.suppressed > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_labels_partition_one_file_into_independent_audits() {
        let dir = tmp_dir("runs");
        // Two runs in one artifact, as failover_live emits: each restarts
        // versions from scratch on the same keys and hop IPs. Mixed together
        // the second run's low versions look like regressions/stale reads;
        // partitioned by label both are clean.
        let mut labelled = Vec::new();
        for label in ["a", "b"] {
            for line in [
                trace_record_fields(&write_trace(1, 7, 1_000, 1, 2)),
                trace_record_fields(&read_trace(2, 7, 3_000, 2)),
            ] {
                let mut fields = line;
                fields.push(("run", Json::str(label)));
                labelled.push(record_line("trace", fields));
            }
        }
        let path = dir.join("BENCH_runs.jsonl");
        std::fs::write(&path, labelled.join("\n") + "\n").unwrap();
        let audit = audit_file(&path, &AuditConfig::default()).unwrap();
        assert_eq!(audit.traces, 4);
        assert!(audit.report.is_clean(), "{:?}", audit.report.violations);

        // The same records without labels collapse into one run and the
        // duplicated trace ids / restarted histories are (rightly) judged
        // as one inconsistent history — the partitioning is load-bearing.
        let unlabelled: Vec<String> = [
            trace_record_fields(&write_trace(1, 7, 1_000, 1, 2)),
            trace_record_fields(&read_trace(2, 7, 3_000, 2)),
            trace_record_fields(&write_trace(1, 7, 11_000, 0, 1)),
            trace_record_fields(&read_trace(2, 7, 13_000, 1)),
        ]
        .into_iter()
        .map(|fields| record_line("trace", fields))
        .collect();
        std::fs::write(&path, unlabelled.join("\n") + "\n").unwrap();
        let audit = audit_file(&path, &AuditConfig::default()).unwrap();
        assert!(!audit.report.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_targets_exit_with_usage_code() {
        let dir = tmp_dir("empty");
        assert_eq!(run_cli(&[]), 2);
        assert_eq!(run_cli(&[dir.to_string_lossy().into_owned()]), 2);
        // Files with no trace records at all: also "nothing to audit".
        std::fs::write(dir.join("BENCH_x.jsonl"), "{\"record\":\"summary\"}\n").unwrap();
        assert_eq!(run_cli(&[dir.to_string_lossy().into_owned()]), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
