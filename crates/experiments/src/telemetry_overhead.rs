//! The telemetry overhead guard: measures the fabric's capacity fast path
//! with tracing disabled (the default) against the same run with in-band
//! trace sampling enabled, and asserts the disabled path costs nothing.
//!
//! Tracing off is the shipping configuration: the only residue of the
//! telemetry layer on the hot path is one branch per wave group, so the
//! throughput delta between an untraced run and the pre-telemetry fabric
//! must be indistinguishable from run-to-run noise. The guard measures that
//! noise explicitly (off-vs-off) and then bounds the off-vs-on delta, so a
//! future change that accidentally drags stamping into the untraced path
//! fails CI instead of quietly taxing every run.

use netchain_fabric::{run_capacity, FabricConfig, WorkloadSpec};
use netchain_telemetry::{ArtifactWriter, Json, TraceConfig};

/// Shape of one overhead measurement.
#[derive(Debug, Clone, Copy)]
pub struct OverheadParams {
    /// Worker shards.
    pub shards: usize,
    /// Operations per run.
    pub ops: u64,
    /// Distinct keys.
    pub num_keys: u64,
    /// Interleaved rounds per configuration (the median is reported).
    pub rounds: usize,
    /// Maximum tolerated relative slowdown of the traced run, e.g. `0.02`.
    pub max_delta: f64,
}

impl Default for OverheadParams {
    fn default() -> Self {
        OverheadParams {
            shards: 4,
            ops: 200_000,
            num_keys: 1024,
            rounds: 5,
            max_delta: 0.02,
        }
    }
}

impl OverheadParams {
    /// A fast CI configuration. The threshold is loose: a smoke run is too
    /// short to resolve 2%, so it only guards against gross regressions.
    pub fn smoke() -> Self {
        OverheadParams {
            shards: 2,
            ops: 30_000,
            rounds: 3,
            max_delta: 0.25,
            ..Default::default()
        }
    }
}

/// The measured medians and the derived deltas.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Median aggregate ops/sec with tracing disabled.
    pub off_ops_per_sec: f64,
    /// Median aggregate ops/sec with tracing enabled (1 in 256 sampled).
    pub on_ops_per_sec: f64,
    /// Relative slowdown of the traced run: `1 - on/off` (negative when the
    /// traced run happened to be faster — pure noise).
    pub delta: f64,
    /// Relative spread of the disabled runs (max/min - 1): the noise floor
    /// the delta should be judged against.
    pub off_noise: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Runs the interleaved off/on measurement and returns the report.
pub fn measure(params: OverheadParams) -> OverheadReport {
    assert!(params.rounds > 0);
    let workload = WorkloadSpec::mixed(params.num_keys, params.ops, 50, 40);
    let off_config = FabricConfig::new(params.shards);
    let on_config = FabricConfig::new(params.shards).with_trace(TraceConfig::sampled(8, 4096));
    let mut off = Vec::new();
    let mut on = Vec::new();
    // Interleave so slow drift (thermal, other tenants) hits both equally.
    for _ in 0..params.rounds {
        off.push(run_capacity(off_config, workload).aggregate_ops_per_sec);
        on.push(run_capacity(on_config, workload).aggregate_ops_per_sec);
    }
    let off_min = off.iter().copied().fold(f64::INFINITY, f64::min);
    let off_max = off.iter().copied().fold(0.0, f64::max);
    let off_med = median(off);
    let on_med = median(on);
    OverheadReport {
        off_ops_per_sec: off_med,
        on_ops_per_sec: on_med,
        delta: 1.0 - on_med / off_med.max(1e-9),
        off_noise: off_max / off_min.max(1e-9) - 1.0,
    }
}

/// The `telemetry_overhead` CLI entry point: measures, prints, exports the
/// artifact, and asserts the bound.
pub fn run_cli(smoke: bool) {
    let params = if smoke {
        OverheadParams::smoke()
    } else {
        OverheadParams::default()
    };
    let report = measure(params);
    println!(
        "telemetry overhead: tracing off {:.0} ops/s | tracing on (1/256 sampled) {:.0} ops/s | \
         delta {:+.2}% | off-run noise {:.2}%",
        report.off_ops_per_sec,
        report.on_ops_per_sec,
        report.delta * 100.0,
        report.off_noise * 100.0,
    );
    let mut artifact = ArtifactWriter::new("telemetry_overhead");
    artifact.record(
        "summary",
        vec![
            ("shards", Json::U64(params.shards as u64)),
            ("ops", Json::U64(params.ops)),
            ("rounds", Json::U64(params.rounds as u64)),
            ("off_ops_per_sec", Json::F64(report.off_ops_per_sec)),
            ("on_ops_per_sec", Json::F64(report.on_ops_per_sec)),
            ("delta", Json::F64(report.delta)),
            ("off_noise", Json::F64(report.off_noise)),
            ("max_delta", Json::F64(params.max_delta)),
        ],
    );
    if let Some(path) = artifact.write() {
        println!("artifact: {}", path.display());
    }
    assert!(
        report.delta < params.max_delta,
        "sampled tracing costs {:.2}% > {:.2}% budget (off noise {:.2}%)",
        report.delta * 100.0,
        params.max_delta * 100.0,
        report.off_noise * 100.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_positive_rates_and_finite_delta() {
        let report = measure(OverheadParams {
            shards: 1,
            ops: 5_000,
            num_keys: 128,
            rounds: 1,
            max_delta: 1.0,
        });
        assert!(report.off_ops_per_sec > 0.0);
        assert!(report.on_ops_per_sec > 0.0);
        assert!(report.delta.is_finite());
    }
}
