//! CI perf gate: compares a freshly measured `BENCH_net.json` /
//! `BENCH_fabric.json` against the committed baseline and fails on
//! regression.
//!
//! Absolute rates (ops/sec, ns) are machine-dependent — CI runners and dev
//! boxes disagree by integer factors — so the gate only judges **scale-free
//! ratios** the repo's own optimisations claim (batched-vs-single syscall
//! speedup, staged-vs-scalar burst speedup) plus **must-be-zero** protocol
//! counters (abandoned ops, version regressions). A ratio check passes when
//! `fresh >= baseline * (1 - tolerance)`; a zero check passes only at
//! exactly zero.
//!
//! The rule set is auto-selected from the file's `"experiment"` field, and
//! the tolerance doubles when the fresh file is a `--smoke` run (smoke
//! measurements are short and noisy by design).

use std::path::Path;

use netchain_telemetry::Json;

/// What one gate rule demands of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Demand {
    /// Fresh must be at least `baseline * (1 - tolerance)`.
    Ratio,
    /// Fresh must be at most `baseline * (1 + tolerance)` — for
    /// lower-is-better metrics like latency quantiles.
    Ceiling,
    /// Fresh must be exactly zero (the baseline is ignored).
    Zero,
}

/// One metric the gate inspects: a key path into the bench JSON plus the
/// kind of demand made of it.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Dotted key path with indices, e.g. `"latency[0].abandoned"`.
    pub path: &'static str,
    /// How the fresh value is judged.
    pub demand: Demand,
}

/// The scale-free rule set for `BENCH_net.json` (`"experiment":"net_scale"`).
pub const NET_RULES: &[Rule] = &[
    Rule {
        path: "capacity.burst_vs_single_speedup",
        demand: Demand::Ratio,
    },
    Rule {
        path: "syscall_microbench.speedup",
        demand: Demand::Ratio,
    },
    Rule {
        path: "latency[0].abandoned",
        demand: Demand::Zero,
    },
    Rule {
        path: "latency[0].version_regressions",
        demand: Demand::Zero,
    },
];

/// The rule set for `BENCH_fabric.json` (`"experiment":"fabric_scale"`).
///
/// The live-profile latency quantiles are gated as **ceilings**: latency
/// points are machine-dependent in absolute terms, but a fresh run on the
/// same machine blowing past the committed p50/p99 by more than the slack is
/// exactly the regression this gate exists to catch.
pub const FABRIC_RULES: &[Rule] = &[
    Rule {
        path: "staged_vs_scalar_burst.speedup",
        demand: Demand::Ratio,
    },
    Rule {
        path: "live_profile.quantiles.p50_ns",
        demand: Demand::Ceiling,
    },
    Rule {
        path: "live_profile.quantiles.p99_ns",
        demand: Demand::Ceiling,
    },
];

/// Rule set for a bench file, keyed off its `"experiment"` field.
pub fn rules_for(experiment: &str) -> Option<&'static [Rule]> {
    match experiment {
        "net_scale" => Some(NET_RULES),
        "fabric_scale" => Some(FABRIC_RULES),
        _ => None,
    }
}

/// The verdict on one rule.
#[derive(Debug, Clone)]
pub struct Check {
    /// The metric's key path.
    pub path: String,
    /// The demand that was applied.
    pub demand: Demand,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// The passing bound: the lowest passing fresh value for [`Demand::Ratio`]
    /// and [`Demand::Zero`], the highest for [`Demand::Ceiling`].
    pub floor: f64,
    /// Whether the fresh value satisfies the demand.
    pub pass: bool,
}

impl Check {
    /// One aligned report line: metric, baseline, fresh, bound, verdict.
    pub fn to_line(&self) -> String {
        format!(
            "{:<38} baseline {:>9.4}  fresh {:>9.4}  bound {:>9.4}  {}",
            self.path,
            self.baseline,
            self.fresh,
            self.floor,
            if self.pass { "ok" } else { "REGRESSION" }
        )
    }
}

fn metric(doc: &Json, path: &str, which: &str) -> Result<f64, String> {
    doc.get(path)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{which} file has no numeric metric at '{path}'"))
}

/// Judges `fresh` against `baseline` with the rule set selected by the
/// baseline's `"experiment"` field. `tolerance` is the fractional slack on
/// ratio demands (0.2 = fresh may be 20% below baseline); it is doubled
/// when the fresh file marks itself `"smoke":true`. Errors (not failed
/// checks) signal a malformed or mismatched file pair.
pub fn run_gate(baseline: &Json, fresh: &Json, tolerance: f64) -> Result<Vec<Check>, String> {
    let experiment = baseline
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("baseline file has no \"experiment\" field")?;
    let fresh_experiment = fresh.get("experiment").and_then(Json::as_str).unwrap_or("");
    if experiment != fresh_experiment {
        return Err(format!(
            "experiment mismatch: baseline is '{experiment}', fresh is '{fresh_experiment}'"
        ));
    }
    let rules = rules_for(experiment)
        .ok_or_else(|| format!("no gate rules for experiment '{experiment}'"))?;
    let smoke = matches!(fresh.get("smoke"), Some(Json::Bool(true)));
    let slack = if smoke { tolerance * 2.0 } else { tolerance };

    let mut checks = Vec::with_capacity(rules.len());
    for rule in rules {
        let baseline_v = metric(baseline, rule.path, "baseline")?;
        let fresh_v = metric(fresh, rule.path, "fresh")?;
        let (floor, pass) = match rule.demand {
            Demand::Ratio => {
                let floor = baseline_v * (1.0 - slack);
                (floor, fresh_v >= floor)
            }
            Demand::Ceiling => {
                let ceiling = baseline_v * (1.0 + slack);
                (ceiling, fresh_v <= ceiling)
            }
            Demand::Zero => (0.0, fresh_v == 0.0),
        };
        checks.push(Check {
            path: rule.path.to_string(),
            demand: rule.demand,
            baseline: baseline_v,
            fresh: fresh_v,
            floor,
            pass,
        });
    }
    Ok(checks)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn usage() -> i32 {
    eprintln!("usage: bench_gate <baseline.json> <fresh.json> [--tolerance FRAC]");
    eprintln!("  exits 0 when every gated metric holds, 1 on regression or error");
    2
}

/// CLI entry: `bench_gate <baseline.json> <fresh.json> [--tolerance 0.2]`.
/// Prints one line per gated metric and returns the process exit code:
/// 0 all checks pass, 1 regression or bad input, 2 usage error.
pub fn run_cli(args: &[String]) -> i32 {
    let mut files = Vec::new();
    let mut tolerance = 0.2f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => files.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        return usage();
    };

    let gated = load(Path::new(baseline_path))
        .and_then(|baseline| load(Path::new(fresh_path)).map(|fresh| (baseline, fresh)))
        .and_then(|(baseline, fresh)| run_gate(&baseline, &fresh, tolerance));
    let checks = match gated {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return 1;
        }
    };

    println!(
        "bench gate: {baseline_path} (baseline) vs {fresh_path} (fresh), tolerance {tolerance}"
    );
    let mut failed = 0;
    for check in &checks {
        println!("  {}", check.to_line());
        if !check.pass {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("bench_gate: {failed}/{} checks FAILED", checks.len());
        1
    } else {
        println!("bench_gate: all {} checks pass", checks.len());
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_doc(burst: f64, syscall: f64, abandoned: u64, smoke: bool) -> Json {
        Json::parse(&format!(
            r#"{{"experiment":"net_scale","smoke":{smoke},
                "capacity":{{"burst_vs_single_speedup":{burst}}},
                "syscall_microbench":{{"speedup":{syscall}}},
                "latency":[{{"abandoned":{abandoned},"version_regressions":0}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn healthy_fresh_run_passes_all_net_checks() {
        let baseline = net_doc(0.87, 1.12, 0, false);
        let fresh = net_doc(0.85, 1.10, 0, false);
        let checks = run_gate(&baseline, &fresh, 0.2).unwrap();
        assert_eq!(checks.len(), NET_RULES.len());
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn ratio_regression_beyond_tolerance_fails() {
        let baseline = net_doc(0.87, 1.12, 0, false);
        let fresh = net_doc(0.60, 1.12, 0, false); // 31% drop > 20% slack
        let checks = run_gate(&baseline, &fresh, 0.2).unwrap();
        let burst = &checks[0];
        assert_eq!(burst.path, "capacity.burst_vs_single_speedup");
        assert!(!burst.pass);
        assert!(burst.to_line().contains("REGRESSION"));
        assert!(checks[1..].iter().all(|c| c.pass));
    }

    #[test]
    fn smoke_fresh_runs_get_double_slack() {
        let baseline = net_doc(0.87, 1.12, 0, false);
        // A 31% dip fails at full strictness but passes a smoke run, where
        // the tolerance doubles to 40%.
        let dip = net_doc(0.60, 1.12, 0, true);
        let checks = run_gate(&baseline, &dip, 0.2).unwrap();
        assert!(checks[0].pass, "{:?}", checks[0]);
    }

    #[test]
    fn zero_demand_is_exact_even_under_smoke_slack() {
        let baseline = net_doc(0.87, 1.12, 0, false);
        let fresh = net_doc(0.87, 1.12, 1, true);
        let checks = run_gate(&baseline, &fresh, 0.2).unwrap();
        let abandoned = checks
            .iter()
            .find(|c| c.path == "latency[0].abandoned")
            .unwrap();
        assert_eq!(abandoned.demand, Demand::Zero);
        assert!(!abandoned.pass);
    }

    fn fabric_doc(speedup: f64, p50: u64, p99: u64) -> Json {
        Json::parse(&format!(
            r#"{{"experiment":"fabric_scale",
                "staged_vs_scalar_burst":{{"speedup":{speedup}}},
                "live_profile":{{"quantiles":{{"p50_ns":{p50},"p99_ns":{p99}}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn fabric_rules_gate_the_staged_speedup() {
        let ok = run_gate(
            &fabric_doc(1.40, 70_000, 130_000),
            &fabric_doc(1.30, 70_000, 130_000),
            0.2,
        )
        .unwrap();
        assert_eq!(ok.len(), FABRIC_RULES.len());
        assert!(ok.iter().all(|c| c.pass));
        let bad = run_gate(
            &fabric_doc(1.40, 70_000, 130_000),
            &fabric_doc(1.00, 70_000, 130_000),
            0.2,
        )
        .unwrap();
        assert!(!bad[0].pass);
    }

    #[test]
    fn fabric_latency_ceilings_fail_on_blowup_not_on_improvement() {
        let baseline = fabric_doc(1.40, 70_000, 130_000);
        // Latency dropping is always fine — a ceiling, not a band.
        let faster = fabric_doc(1.40, 35_000, 65_000);
        assert!(run_gate(&baseline, &faster, 0.2)
            .unwrap()
            .iter()
            .all(|c| c.pass));
        // p99 blowing 50% past the committed point (> 20% slack) fails.
        let blowup = fabric_doc(1.40, 70_000, 195_000);
        let checks = run_gate(&baseline, &blowup, 0.2).unwrap();
        let p99 = checks
            .iter()
            .find(|c| c.path == "live_profile.quantiles.p99_ns")
            .unwrap();
        assert_eq!(p99.demand, Demand::Ceiling);
        assert!(!p99.pass);
        assert!(p99.to_line().contains("REGRESSION"));
        // A smoke fresh file doubles the ceiling slack too.
        let mild = Json::parse(&fabric_doc(1.40, 70_000, 175_000).render().replacen(
            "\"experiment\"",
            "\"smoke\":true,\"experiment\"",
            1,
        ))
        .unwrap();
        let checks = run_gate(&baseline, &mild, 0.2).unwrap();
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn mismatched_or_malformed_pairs_error_instead_of_passing() {
        let net = net_doc(0.87, 1.12, 0, false);
        let fabric = Json::parse(
            r#"{"experiment":"fabric_scale","staged_vs_scalar_burst":{"speedup":1.4}}"#,
        )
        .unwrap();
        assert!(run_gate(&net, &fabric, 0.2).is_err());
        // A baseline missing a gated metric is an error, not a silent pass.
        let hollow = Json::parse(r#"{"experiment":"net_scale"}"#).unwrap();
        assert!(run_gate(&hollow, &net, 0.2).is_err());
        let unknown = Json::parse(r#"{"experiment":"mystery"}"#).unwrap();
        assert!(run_gate(&unknown, &unknown, 0.2).is_err());
    }

    #[test]
    fn gate_accepts_the_committed_bench_files_against_themselves() {
        // Self-comparison of the real committed baselines must pass: this
        // pins the rule paths to the actual file shapes.
        for name in ["BENCH_net.json", "BENCH_fabric.json"] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + name;
            let doc = load(Path::new(&path)).unwrap();
            let checks = run_gate(&doc, &doc, 0.2).unwrap();
            assert!(!checks.is_empty());
            assert!(checks.iter().all(|c| c.pass), "{name}: {checks:?}");
        }
    }
}
