//! Analytic helpers for the ZooKeeper-like baseline, used where a closed-form
//! bound is clearer (and cheaper) than a full simulation: saturation
//! throughput versus write ratio, and the lock-server transaction model used
//! for the ZooKeeper line of Figure 11. The packet-level baseline simulation
//! (`netchain-baseline`) is used wherever transport dynamics matter (loss,
//! latency-vs-load).

use netchain_baseline::ServerCostModel;

/// Saturation throughput of the baseline ensemble for a given write ratio.
///
/// Writes all funnel through the leader (cost `leader_write_service` each);
/// reads spread over the ensemble (cost `read_service` each, `servers`-way
/// parallel). The leader is the bottleneck as soon as writes appear, giving
/// the characteristic collapse from 230 KQPS to 27 KQPS (Figure 9(c)).
pub fn zk_saturation_qps(cost: &ServerCostModel, servers: usize, write_ratio: f64) -> f64 {
    let read_cost = cost.read_service.as_secs_f64() / servers as f64;
    let write_cost =
        cost.leader_write_service.as_secs_f64() + cost.follower_write_service.as_secs_f64() * 0.0; // follower work is parallel
    let per_query = (1.0 - write_ratio) * read_cost + write_ratio * write_cost;
    // Each write additionally occupies the leader for the read share it would
    // otherwise serve; the leader serves 1/servers of the reads.
    let leader_per_query = (1.0 - write_ratio) * cost.read_service.as_secs_f64() / servers as f64
        + write_ratio * cost.leader_write_service.as_secs_f64();
    1.0 / per_query.max(leader_per_query)
}

/// Unloaded operation latency of the baseline: reads pay one RTT plus server
/// and client-stack time; writes additionally pay the quorum round and the
/// commit overhead.
pub fn zk_unloaded_latency_us(cost: &ServerCostModel, is_write: bool, rtt_us: f64) -> f64 {
    let base = rtt_us + cost.read_service.as_micros_f64() + cost.client_overhead.as_micros_f64();
    if is_write {
        base + rtt_us
            + cost.leader_write_service.as_micros_f64()
            + cost.commit_overhead.as_micros_f64()
    } else {
        base
    }
}

/// Transaction throughput of a 2PL workload using the baseline as the lock
/// server (the ZooKeeper line of Figure 11).
///
/// Each transaction performs `locks_per_txn` acquires and releases, all of
/// which are writes (ephemeral-node create/delete). Throughput is bounded by
/// (i) the clients' serial lock latency and (ii) the leader's write capacity,
/// and scaled by the probability that the hot-lock acquisition succeeds,
/// which falls as the contention index rises.
pub fn zk_txn_throughput(
    cost: &ServerCostModel,
    servers: usize,
    clients: usize,
    locks_per_txn: usize,
    contention_index: f64,
) -> f64 {
    let write_latency_s = zk_unloaded_latency_us(cost, true, 10.0) / 1e6;
    // Serial 2PL: acquire + release for every lock.
    let txn_time_s = write_latency_s * (2 * locks_per_txn) as f64;
    let per_client = 1.0 / txn_time_s;
    let client_bound = per_client * clients as f64;
    let leader_bound = zk_saturation_qps(cost, servers, 1.0) / (2 * locks_per_txn) as f64;
    let uncontended = client_bound.min(leader_bound);
    uncontended * success_probability(clients, contention_index, 0.5)
}

/// Probability that a transaction acquires its hot lock, given `clients`
/// competing over `1 / contention_index` hot items, each holding its hot lock
/// for a fraction `hold_fraction` of its transaction. A standard
/// birthday-style contention estimate; the paper does not give a formula, so
/// the same estimate is applied to both systems (the NetChain line is
/// *measured* by simulation, this is only used for the baseline).
pub fn success_probability(clients: usize, contention_index: f64, hold_fraction: f64) -> f64 {
    if clients <= 1 {
        return 1.0;
    }
    let hot_items = (1.0 / contention_index.max(1e-9)).max(1.0);
    let competitors = (clients - 1) as f64;
    let occupancy = (competitors * hold_fraction / hot_items).min(1.0);
    (1.0 - occupancy).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_matches_paper_anchors() {
        let cost = ServerCostModel::zookeeper_calibrated();
        let read_only = zk_saturation_qps(&cost, 3, 0.0);
        let write_only = zk_saturation_qps(&cost, 3, 1.0);
        assert!((200_000.0..260_000.0).contains(&read_only), "{read_only}");
        assert!((24_000.0..30_000.0).contains(&write_only), "{write_only}");
        // Monotone decreasing in the write ratio.
        let mut prev = read_only;
        for w in [0.01, 0.1, 0.5, 1.0] {
            let t = zk_saturation_qps(&cost, 3, w);
            assert!(t <= prev + 1.0);
            prev = t;
        }
    }

    #[test]
    fn latency_anchors() {
        let cost = ServerCostModel::zookeeper_calibrated();
        let read = zk_unloaded_latency_us(&cost, false, 10.0);
        let write = zk_unloaded_latency_us(&cost, true, 10.0);
        assert!((150.0..250.0).contains(&read), "{read}");
        assert!((2_000.0..2_700.0).contains(&write), "{write}");
    }

    #[test]
    fn txn_throughput_falls_with_contention_and_rises_with_clients() {
        let cost = ServerCostModel::zookeeper_calibrated();
        let low = zk_txn_throughput(&cost, 3, 100, 10, 0.001);
        let high = zk_txn_throughput(&cost, 3, 100, 10, 1.0);
        assert!(low > high, "contention must hurt: {low} vs {high}");
        let one = zk_txn_throughput(&cost, 3, 1, 10, 0.001);
        assert!(low > one, "more clients must help at low contention");
    }

    #[test]
    fn success_probability_bounds() {
        assert_eq!(success_probability(1, 1.0, 0.5), 1.0);
        assert!(success_probability(100, 1.0, 0.5) < 0.05);
        assert!(success_probability(10, 0.001, 0.5) > 0.9);
    }
}
