//! # netchain-experiments
//!
//! The reproduction harness: one module (and one binary) per table and figure
//! of the NetChain evaluation (§8). Each experiment returns plain data series
//! that the binaries print as aligned tables and JSON, so EXPERIMENTS.md can
//! quote them directly.
//!
//! Two measurement methods are used, mirroring how the paper itself was
//! evaluated:
//!
//! * **Packet-level discrete-event simulation** (`netchain-sim` +
//!   `netchain-core` + `netchain-baseline`) wherever protocol dynamics matter:
//!   latency, loss and retries, failover/recovery time series, lock
//!   contention. Rates are scaled down where the paper's absolute rates
//!   (tens of MQPS) would be computationally meaningless to simulate packet
//!   by packet; scaling factors are reported alongside the results.
//! * **A flow-level capacity model** ([`capacity`]) wherever the paper itself
//!   reasons analytically (the §8.3 scalability simulation and the saturation
//!   throughput of the testbed): it counts how many times each switch must
//!   process a packet per query and divides the per-switch packet budget by
//!   that load.
//!
//! A third kind of run, [`fabric_scale`], is *not* a reproduction: it
//! measures the repo's own multi-core software fabric (`netchain-fabric`)
//! on the machine at hand — real ops/sec versus worker shards and chain
//! length, the baseline future scaling PRs are compared against.
//!
//! Calibration constants taken from the paper's own measurements (server
//! rates, client stack delays, ZooKeeper reference points) are concentrated
//! in [`calib`] and clearly labelled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_gate;
pub mod calib;
pub mod capacity;
pub mod chain_audit;
pub mod fabric_scale;
pub mod failover_live;
pub mod fig10;
pub mod fig11;
pub mod fig9;
pub mod net_scale;
pub mod ops_top;
pub mod series;
pub mod table1;
pub mod telemetry_overhead;
pub mod zk;

pub use capacity::CapacityModel;
pub use series::{print_series, Series};
