//! # netchain-switch
//!
//! A behavioural model of a programmable switch data plane (a Barefoot
//! Tofino-class ASIC programmed in P4), faithful to the constructs the
//! NetChain paper builds on:
//!
//! * **exact-match tables** that map a 16-byte key to the index of its value
//!   slot (Figure 3),
//! * **register arrays** — per-stage on-chip SRAM words that can be read and
//!   modified once per packet at line rate,
//! * a **multi-stage pipeline** with a bounded number of stages and a bounded
//!   number of bytes each stage can touch, which is what limits value sizes
//!   (§6) and forces recirculation for larger values,
//! * the **NetChain program** itself (Algorithm 1): sequence-gated writes,
//!   head sequence assignment, chain forwarding by destination-IP rewriting,
//!   plus the compare-and-swap primitive used for locks (§8.5),
//! * the **failover / recovery rules** the controller installs in neighbour
//!   switches (Algorithms 2 and 3).
//!
//! What is *not* modelled is the physical ASIC: there is no notion of clock
//! cycles or TCAM geometry. Line rate appears as a per-switch capacity number
//! used by the capacity model in `netchain-experiments`, not as cycle-level
//! timing here. The paper's consistency argument depends only on the
//! per-packet behaviour reproduced in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forward;
pub mod kv;
pub mod pipeline;
pub mod program;
pub mod register;
pub mod stats;
pub mod table;

pub use forward::{stable_hash_batch, FailoverAction, FailoverRule, ForwardingTable, RuleScope};
pub use kv::{ExportedEntry, KvError, SwitchKvStore};
pub use pipeline::{PipelineConfig, ResourceUsage};
pub use program::{
    cas_value, DropReason, NetChainSwitch, StagedOutcome, StagedPacket, SwitchAction, SwitchRole,
};
pub use register::RegisterArray;
pub use stats::{ProbeGauges, SwitchStats};
pub use table::MatchTable;
