//! Pipeline geometry and resource accounting.
//!
//! A Tofino-class pipeline has a fixed number of match-action stages, each of
//! which can read or write a bounded number of bytes of a register array per
//! packet. The paper's prototype (§7) uses 8 stages of 64 K × 16-byte slots
//! (8 MB of value storage) and supports values up to 128 bytes at line rate;
//! §6 explains that larger values need recirculation, which halves (or worse)
//! effective throughput. This module captures exactly those knobs so the
//! experiments can reason about store size limits (Figure 9(b)) and value
//! size limits (Figure 9(a)).

/// Static description of the pipeline resources allocated to NetChain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Number of pipeline stages that carry value register arrays.
    pub value_stages: usize,
    /// Bytes of value each stage can read/write per packet.
    pub bytes_per_stage: usize,
    /// Register slots per stage (the prototype allocates 64 K).
    pub slots_per_stage: usize,
    /// Total on-chip SRAM the switch allots to NetChain, in bytes. The paper
    /// assumes ~10 MB per switch can be allocated (§6).
    pub sram_budget_bytes: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::tofino_prototype()
    }
}

impl PipelineConfig {
    /// The prototype configuration from §7: 8 stages × 64 K slots × 16 bytes
    /// (8 MB of values) with a 10 MB SRAM budget.
    pub fn tofino_prototype() -> Self {
        PipelineConfig {
            value_stages: 8,
            bytes_per_stage: 16,
            slots_per_stage: 64 * 1024,
            sram_budget_bytes: 10 * 1024 * 1024,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(slots: usize) -> Self {
        PipelineConfig {
            value_stages: 2,
            bytes_per_stage: 16,
            slots_per_stage: slots,
            sram_budget_bytes: 64 * 1024,
        }
    }

    /// Maximum value size processed in a single pipeline pass.
    pub fn max_line_rate_value(&self) -> usize {
        self.value_stages * self.bytes_per_stage
    }

    /// Number of pipeline passes needed for a value of `len` bytes: one pass
    /// for anything the stages can cover, plus one recirculation per extra
    /// `value_stages × bytes_per_stage` chunk (§6).
    pub fn passes_for_value(&self, len: usize) -> usize {
        let per_pass = self.max_line_rate_value().max(1);
        1 + len.saturating_sub(1) / per_pass
    }

    /// Total value-register SRAM implied by the geometry.
    pub fn value_sram_bytes(&self) -> usize {
        self.value_stages * self.bytes_per_stage * self.slots_per_stage
    }
}

/// A snapshot of SRAM consumption, reported by [`crate::SwitchKvStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Bytes consumed by the key index table.
    pub index_bytes: usize,
    /// Bytes consumed by value register arrays (provisioned, not per-entry —
    /// register arrays are statically allocated on the ASIC).
    pub value_register_bytes: usize,
    /// Bytes consumed by the sequence-number and session register arrays.
    pub ordering_register_bytes: usize,
}

impl ResourceUsage {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.index_bytes + self.value_register_bytes + self.ordering_register_bytes
    }

    /// True if the usage fits the pipeline's SRAM budget.
    pub fn fits(&self, config: &PipelineConfig) -> bool {
        self.total() <= config.sram_budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_numbers() {
        let p = PipelineConfig::tofino_prototype();
        assert_eq!(p.max_line_rate_value(), 128);
        assert_eq!(p.value_sram_bytes(), 8 * 1024 * 1024);
        assert_eq!(p.passes_for_value(0), 1);
        assert_eq!(p.passes_for_value(128), 1);
        assert_eq!(p.passes_for_value(129), 2);
        assert_eq!(p.passes_for_value(256), 2);
        assert_eq!(p.passes_for_value(257), 3);
    }

    #[test]
    fn resource_usage_totals_and_budget() {
        let usage = ResourceUsage {
            index_bytes: 1_000,
            value_register_bytes: 8 * 1024 * 1024,
            ordering_register_bytes: 512 * 1024,
        };
        assert_eq!(usage.total(), 1_000 + 8 * 1024 * 1024 + 512 * 1024);
        assert!(usage.fits(&PipelineConfig::tofino_prototype()));
        let tiny = PipelineConfig::tiny(16);
        assert!(!usage.fits(&tiny));
    }
}
