//! The NetChain switch program: Algorithm 1 (ProcessQuery) plus chain
//! forwarding, failover/recovery rule handling, and the compare-and-swap
//! primitive used to build locks.
//!
//! A switch does not statically know whether it is the head, a middle replica
//! or the tail of any particular chain — that information is carried by the
//! query itself: a mutation arriving with `seq == 0` has not been sequenced
//! yet, so the receiving switch *is* the head for that query and assigns the
//! next sequence number; a mutation with `seq > 0` is mid-chain and is applied
//! only if its `(session, seq)` tuple is newer than the stored one; a query
//! with an empty remaining-chain list is at the tail and generates the reply.

use crate::forward::{FailoverAction, ForwardingTable};
use crate::kv::SwitchKvStore;
use crate::pipeline::PipelineConfig;
use crate::stats::{ProbeGauges, SwitchStats};
use netchain_wire::{
    BatchEncoder, Ipv4Addr, Key, NetChainPacket, OpCode, QueryStatus, StatSnapshot, Value,
};

/// Why a switch dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The packet carried a stale (session, sequence) tuple (Algorithm 1
    /// line 13).
    StaleSequence,
    /// A mid-chain mutation referenced a key this replica does not hold
    /// (can only happen transiently during reconfiguration).
    MidChainMiss,
    /// A recovery "block" rule is in effect for the destination (Algorithm 3
    /// phase 1).
    Blocked,
    /// The switch has not been activated yet (a replacement switch before
    /// Algorithm 3 phase 2).
    Inactive,
    /// The packet was not a NetChain packet and the switch model has nothing
    /// to do with it (pure transit is handled by the caller's L3 logic).
    NotNetChain,
}

/// The data-plane's verdict on a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchAction {
    /// Forward the (possibly rewritten) packet; the destination IP says where.
    Forward(NetChainPacket),
    /// Drop the packet.
    Drop(DropReason),
}

/// One item of a staged burst handed to [`NetChainSwitch::step_batch_staged`].
///
/// The caller's stage-3 prepass decides the lane: read queries addressed to a
/// live, rule-free switch ride the borrowed fast lane with their probed index
/// slot; everything else is materialised into an owned packet and takes the
/// scalar path.
#[derive(Debug)]
pub enum StagedPacket<'a> {
    /// A validated read-query frame plus its probed register slot (`None` on
    /// an index miss). `client` and `request_id` are the query's source IP
    /// and request id, echoed back in the outcome so the caller can account
    /// for the reply without re-parsing the frame.
    FastRead {
        /// The raw query frame (borrowed from the receive buffer).
        frame: &'a [u8],
        /// Stage-3 probe result: the key's register slot, if indexed.
        slot: Option<usize>,
        /// The queried key, kept alongside the probed slot so observers
        /// (trace evidence stamps) can fingerprint the read without
        /// re-parsing the frame.
        key: Key,
        /// The querying client's IP (the frame's IPv4 source).
        client: Ipv4Addr,
        /// The query's request id.
        request_id: u64,
    },
    /// Any other packet; handled exactly like [`NetChainSwitch::step_batch`].
    Owned(NetChainPacket),
}

/// Per-item outcome of [`NetChainSwitch::step_batch_staged`], in item order.
#[derive(Debug)]
pub enum StagedOutcome {
    /// A fast-lane read reply, already written into the encoder. Carries the
    /// client IP and request id for the caller's reply accounting.
    FastReply {
        /// Destination of the emitted reply.
        client: Ipv4Addr,
        /// Request id of the answered query.
        request_id: u64,
    },
    /// An owned packet turned into a reply, already written into the encoder;
    /// the packet itself is returned for buffer pooling.
    Reply(NetChainPacket),
    /// A non-reply verdict on an owned packet (chain forward or drop).
    Action(SwitchAction),
}

/// Role a switch plays for a given query, derived per packet (diagnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchRole {
    /// First chain hop of a mutation (assigns sequence numbers).
    Head,
    /// Intermediate chain hop.
    Replica,
    /// Last chain hop (generates the reply).
    Tail,
}

/// A NetChain-programmed switch data plane.
#[derive(Debug, Clone)]
pub struct NetChainSwitch {
    ip: Ipv4Addr,
    kv: SwitchKvStore,
    forwarding: ForwardingTable,
    stats: SwitchStats,
    /// Session number this switch stamps on writes it sequences as head.
    /// Bumped by the controller whenever this switch becomes the head of a
    /// chain during recovery (§5.2).
    session: u64,
    /// Whether the switch processes queries addressed to it. A replacement
    /// switch is installed deactivated and activated in recovery phase 2.
    active: bool,
    /// Executor-published gauges echoed in stat probe replies.
    gauges: ProbeGauges,
}

impl NetChainSwitch {
    /// Creates a switch with the given IP and pipeline geometry.
    pub fn new(ip: Ipv4Addr, config: PipelineConfig) -> Self {
        NetChainSwitch {
            ip,
            kv: SwitchKvStore::new(config),
            forwarding: ForwardingTable::new(),
            stats: SwitchStats::default(),
            session: 0,
            active: true,
            gauges: ProbeGauges::default(),
        }
    }

    /// This switch's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Read access to the on-chip store (control plane / tests).
    pub fn kv(&self) -> &SwitchKvStore {
        &self.kv
    }

    /// Mutable access to the on-chip store (control-plane operations:
    /// insertions, garbage collection, state synchronisation).
    pub fn kv_mut(&mut self) -> &mut SwitchKvStore {
        &mut self.kv
    }

    /// Read access to the failover rule table.
    pub fn forwarding(&self) -> &ForwardingTable {
        &self.forwarding
    }

    /// Mutable access to the failover rule table (controller only).
    pub fn forwarding_mut(&mut self) -> &mut ForwardingTable {
        &mut self.forwarding
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Resets counters (used between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }

    /// Publishes executor gauges (queue depth, service-latency buckets) for
    /// the next stat probe reply. Called at burst boundaries, never per
    /// packet.
    pub fn set_probe_gauges(&mut self, gauges: ProbeGauges) {
        self.gauges = gauges;
    }

    /// The compact telemetry snapshot a [`netchain_wire::OpCode::Stat`] probe
    /// is answered with: live counters, register occupancy, and whatever
    /// gauges the executor last published.
    pub fn stat_snapshot(&self) -> StatSnapshot {
        StatSnapshot {
            reads: self.stats.reads,
            writes: self.stats.writes,
            cas_ops: self.stats.cas_ops,
            deletes: self.stats.deletes,
            replies: self.stats.replies_generated,
            chain_forwards: self.stats.chain_forwards,
            stale_drops: self.stats.stale_drops,
            misses: self.stats.misses,
            blocked: self.stats.blocked,
            packets_seen: self.stats.packets_seen,
            store_size: self.kv.store_size() as u32,
            free_slots: self.kv.free_slots() as u32,
            queue_depth: self.gauges.queue_depth,
            queue_cap: self.gauges.queue_cap,
            lat_buckets: self.gauges.lat_buckets,
        }
    }

    /// The session number stamped on writes sequenced by this switch.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sets the session number (controller, when this switch becomes a head).
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    /// Whether the switch processes queries addressed to it.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Activates or deactivates query processing (Algorithm 3 phase 2).
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Wipes all NetChain state (a switch that rejoins after failing starts
    /// empty and must be resynchronised by the controller).
    pub fn wipe(&mut self) {
        self.kv.clear_all();
        self.forwarding = ForwardingTable::new();
        self.session = 0;
    }

    /// Handles a burst of packets in one call, appending one
    /// [`SwitchAction`] per packet (in order) to `out`.
    ///
    /// This is the entry point the multi-core fabric (`netchain-fabric`)
    /// uses: processing in bursts of ~32 amortises the per-call overhead and
    /// keeps the match tables and register arrays hot in cache across the
    /// burst, the software analogue of a hardware pipeline staying full. The
    /// per-packet semantics are exactly [`Self::handle`] — a batch is a
    /// sequential application, not a transaction.
    pub fn step_batch(
        &mut self,
        pkts: impl IntoIterator<Item = NetChainPacket>,
        out: &mut Vec<SwitchAction>,
    ) {
        for pkt in pkts {
            out.push(self.handle(pkt));
        }
    }

    /// Stage 4 of the staged batch pipeline: executes a burst whose frames
    /// were already validated (stage 1), hashed (stage 2) and probed
    /// (stage 3), pushing per-item outcomes to `out` **in item order**.
    ///
    /// Fast-lane read queries never materialise a [`NetChainPacket`]: the
    /// reply is emitted straight from the query frame and the register arrays
    /// into `replies`. Everything else goes through [`Self::handle`] exactly
    /// as [`Self::step_batch`] would, and reply packets are *also* pushed
    /// into `replies` so the encoder sees replies in the same order a scalar
    /// pass would produce them. Stats, per-key ordering within the burst and
    /// reply bytes are identical to the scalar path (pinned by tests).
    pub fn step_batch_staged<'a>(
        &mut self,
        pkts: impl IntoIterator<Item = StagedPacket<'a>>,
        replies: &mut BatchEncoder,
        out: &mut Vec<StagedOutcome>,
    ) {
        for item in pkts {
            match item {
                StagedPacket::FastRead {
                    frame,
                    slot,
                    key: _,
                    client,
                    request_id,
                } => {
                    self.staged_read_reply(frame, slot, replies);
                    out.push(StagedOutcome::FastReply { client, request_id });
                }
                StagedPacket::Owned(pkt) => match self.handle(pkt) {
                    SwitchAction::Forward(p) if p.netchain.op.is_reply() => {
                        replies.push(&p).expect("replies are bounded like queries");
                        out.push(StagedOutcome::Reply(p));
                    }
                    action => out.push(StagedOutcome::Action(action)),
                },
            }
        }
    }

    /// The fast read lane: [`Self::process_read`] semantics (same stats, same
    /// reply bytes) executed against a stage-3 probed slot, writing the reply
    /// directly into the batch encoder.
    fn staged_read_reply(&mut self, frame: &[u8], slot: Option<usize>, replies: &mut BatchEncoder) {
        self.stats.packets_seen += 1;
        self.stats.reads += 1;
        let live = slot.filter(|&s| self.kv.is_valid(s));
        let (status, session, seq, value_len) = match live {
            Some(s) => (
                QueryStatus::Ok,
                self.kv.session(s) as u16,
                self.kv.seq(s),
                self.kv.value_len(s),
            ),
            None => {
                self.stats.misses += 1;
                (QueryStatus::NotFound, 0, 0, 0)
            }
        };
        let kv = &self.kv;
        replies.push_read_reply(frame, self.ip, status, session, seq, value_len, |buf| {
            if let Some(s) = live {
                kv.copy_value_into(s, buf);
            }
        });
        self.stats.replies_generated += 1;
    }

    /// Handles one NetChain packet arriving at this switch. The caller (the
    /// simulator adapter or the UDP deployment) is responsible for the
    /// underlay forwarding of whatever comes back.
    pub fn handle(&mut self, pkt: NetChainPacket) -> SwitchAction {
        if !pkt.is_netchain() {
            return SwitchAction::Drop(DropReason::NotNetChain);
        }
        self.stats.packets_seen += 1;

        // A packet can bounce between the local program and the failover
        // rules a small number of times: a rule rewrite may point the packet
        // at this very switch (it is the next chain hop after the failed
        // one), and a switch that is itself a neighbour of a failed switch
        // applies its rules to packets it forwards onwards ("if N overlaps
        // with S0/S2, it updates the destination IP after/before it processes
        // the query", §5.1). Chains are short, so the bound is generous.
        let mut action = SwitchAction::Forward(pkt);
        let mut processed_locally = false;
        for _ in 0..8 {
            let current = match action {
                SwitchAction::Forward(p) => p,
                drop => return drop,
            };
            if current.ip.dst == self.ip && current.netchain.op.is_query() && !processed_locally {
                // The packet is addressed to us: run Algorithm 1.
                if !self.active {
                    return SwitchAction::Drop(DropReason::Inactive);
                }
                if current.netchain.value.len() > self.kv.config().max_line_rate_value() {
                    // Larger values recirculate; the behaviour is identical,
                    // the cost is accounted for by the capacity model.
                    self.stats.recirculations += (self
                        .kv
                        .config()
                        .passes_for_value(current.netchain.value.len())
                        - 1) as u64;
                }
                processed_locally = true;
                action = match current.netchain.op {
                    OpCode::Read => self.process_read(current),
                    OpCode::Write | OpCode::Cas | OpCode::Delete => self.process_mutation(current),
                    OpCode::Stat => self.process_stat(current),
                    other => self.process_other(other, current),
                };
            } else if current.ip.dst != self.ip {
                if let Some(rule) = self
                    .forwarding
                    .action_for(current.ip.dst, &current.netchain.key)
                {
                    action = self.apply_failover(rule, current);
                } else {
                    if !processed_locally {
                        self.stats.transits += 1;
                    }
                    return SwitchAction::Forward(current);
                }
            } else {
                // A reply addressed to the switch itself, or a query bouncing
                // back after local processing: nothing further to do here.
                return SwitchAction::Forward(current);
            }
        }
        action
    }

    /// Answers an in-band stat probe: encode the current snapshot into the
    /// reply value and send it straight back. Probes never touch the
    /// key-value registers or the chain, so a probe is as cheap as a read
    /// miss and cannot perturb data traffic.
    fn process_stat(&mut self, mut pkt: NetChainPacket) -> SwitchAction {
        self.stats.stat_probes += 1;
        let value = Value::new(self.stat_snapshot().encode().to_vec())
            .expect("snapshot length is bounded by MAX_VALUE_LEN");
        pkt.make_reply(self.ip, QueryStatus::Ok, value);
        self.stats.replies_generated += 1;
        SwitchAction::Forward(pkt)
    }

    fn process_other(&mut self, op: OpCode, mut pkt: NetChainPacket) -> SwitchAction {
        match op {
            OpCode::Insert => {
                // Insertions go through the control plane (§4.1); a data-plane
                // insert is answered with a retry indication.
                pkt.make_reply(self.ip, QueryStatus::Declined, Value::empty());
                self.stats.replies_generated += 1;
                SwitchAction::Forward(pkt)
            }
            // Replies transit back to the client; if one is addressed to the
            // switch itself something is misconfigured — drop it.
            _ => SwitchAction::Drop(DropReason::NotNetChain),
        }
    }

    fn apply_failover(&mut self, action: FailoverAction, mut pkt: NetChainPacket) -> SwitchAction {
        match action {
            FailoverAction::ChainFailover => {
                self.stats.failover_hits += 1;
                if pkt.advance_to_next_hop() {
                    SwitchAction::Forward(pkt)
                } else {
                    // The failed switch was the last hop: answer the client on
                    // its behalf (Algorithm 2 lines 5–6). The value echoed is
                    // whatever the query carried — for writes that is the
                    // value already applied by the surviving prefix.
                    let value = pkt.netchain.value.clone();
                    pkt.make_reply(self.ip, QueryStatus::Ok, value);
                    self.stats.replies_generated += 1;
                    SwitchAction::Forward(pkt)
                }
            }
            FailoverAction::Block => {
                self.stats.blocked += 1;
                SwitchAction::Drop(DropReason::Blocked)
            }
            FailoverAction::Redirect(new_ip) => {
                self.stats.failover_hits += 1;
                pkt.ip.dst = new_ip;
                pkt.fix_lengths();
                SwitchAction::Forward(pkt)
            }
        }
    }

    fn process_read(&mut self, mut pkt: NetChainPacket) -> SwitchAction {
        self.stats.reads += 1;
        let (status, value, seq, session) = match self.kv.lookup(&pkt.netchain.key) {
            Some(slot) if self.kv.is_valid(slot) => (
                QueryStatus::Ok,
                self.kv.read_value(slot),
                self.kv.seq(slot),
                self.kv.session(slot),
            ),
            _ => {
                self.stats.misses += 1;
                (QueryStatus::NotFound, Value::empty(), 0, 0)
            }
        };
        pkt.netchain.seq = seq;
        pkt.netchain.session = session as u16;
        pkt.make_reply(self.ip, status, value);
        self.stats.replies_generated += 1;
        SwitchAction::Forward(pkt)
    }

    fn process_mutation(&mut self, mut pkt: NetChainPacket) -> SwitchAction {
        let is_head = pkt.netchain.seq == 0;
        let Some(slot) = self.kv.lookup(&pkt.netchain.key) else {
            self.stats.misses += 1;
            if is_head {
                pkt.make_reply(self.ip, QueryStatus::NotFound, Value::empty());
                self.stats.replies_generated += 1;
                return SwitchAction::Forward(pkt);
            }
            return SwitchAction::Drop(DropReason::MidChainMiss);
        };

        if is_head {
            // Head: sequence the write (Algorithm 1 lines 6–9), stamping the
            // switch's session number for head-replacement ordering.
            if pkt.netchain.op == OpCode::Cas {
                self.stats.cas_ops += 1;
                let stored = self.kv.read_value(slot);
                let (expected, new_value) = split_cas_value(&pkt.netchain.value);
                let current = stored.as_u64().unwrap_or(0);
                if !self.kv.is_valid(slot) || current != expected {
                    self.stats.cas_failures += 1;
                    pkt.make_reply(self.ip, QueryStatus::CasFailed, stored);
                    self.stats.replies_generated += 1;
                    return SwitchAction::Forward(pkt);
                }
                // The CAS succeeded: downstream replicas apply the new value
                // unconditionally (subject to the sequence check), so rewrite
                // the carried value to just the new value.
                pkt.netchain.value = Value::from_u64(new_value);
            }
            let seq = self.kv.seq(slot) + 1;
            pkt.netchain.seq = seq;
            pkt.netchain.session = self.session as u16;
            self.apply_mutation(slot, &pkt);
        } else {
            // Replica/tail: apply only if newer (Algorithm 1 lines 10–13).
            let incoming = (u64::from(pkt.netchain.session), pkt.netchain.seq);
            if incoming <= self.kv.ordering(slot) {
                self.stats.stale_drops += 1;
                return SwitchAction::Drop(DropReason::StaleSequence);
            }
            self.apply_mutation(slot, &pkt);
        }

        if pkt.advance_to_next_hop() {
            self.stats.chain_forwards += 1;
            SwitchAction::Forward(pkt)
        } else {
            // Tail: reply to the client with the applied value.
            let value = pkt.netchain.value.clone();
            pkt.make_reply(self.ip, QueryStatus::Ok, value);
            self.stats.replies_generated += 1;
            SwitchAction::Forward(pkt)
        }
    }

    fn apply_mutation(&mut self, slot: usize, pkt: &NetChainPacket) {
        match pkt.netchain.op {
            OpCode::Write | OpCode::Cas => {
                self.kv.write_value(slot, &pkt.netchain.value);
                self.kv.revalidate(slot);
                if pkt.netchain.op == OpCode::Write {
                    self.stats.writes += 1;
                } else if pkt.netchain.seq != 0 {
                    // Downstream replicas count CAS applications as writes of
                    // the already-decided value.
                    self.stats.writes += 1;
                }
            }
            OpCode::Delete => {
                self.kv.invalidate(slot);
                self.stats.deletes += 1;
            }
            _ => unreachable!("apply_mutation is only called for mutations"),
        }
        self.kv.set_seq(slot, pkt.netchain.seq);
        self.kv.set_session(slot, u64::from(pkt.netchain.session));
    }
}

/// Splits a CAS value payload into `(expected, new)`: the first 8 bytes are
/// the expected current value, the next 8 bytes the replacement.
fn split_cas_value(value: &Value) -> (u64, u64) {
    let bytes = value.as_bytes();
    let mut expected = [0u8; 8];
    let mut new = [0u8; 8];
    if bytes.len() >= 8 {
        expected.copy_from_slice(&bytes[..8]);
    }
    if bytes.len() >= 16 {
        new.copy_from_slice(&bytes[8..16]);
    }
    (u64::from_be_bytes(expected), u64::from_be_bytes(new))
}

// The whole data-plane state is owned (no Rc/RefCell/raw pointers), so a
// switch can be moved onto a fabric worker shard. Compile-time proof — if a
// future change breaks this, the build fails here rather than in the fabric.
const _: () = {
    const fn assert_send_state<T: Send + 'static>() {}
    assert_send_state::<NetChainSwitch>();
};

/// Builds the 16-byte CAS payload from `(expected, new)`.
pub fn cas_value(expected: u64, new: u64) -> Value {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(&expected.to_be_bytes());
    bytes.extend_from_slice(&new.to_be_bytes());
    Value::new(bytes).expect("16 bytes is well under the maximum value size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_wire::{ChainList, Key};

    fn switch(id: u32) -> NetChainSwitch {
        let mut sw = NetChainSwitch::new(Ipv4Addr::for_switch(id), PipelineConfig::tiny(16));
        sw.kv_mut()
            .insert(Key::from_name("foo"), &Value::from_u64(0))
            .unwrap();
        sw
    }

    fn write_query(dst: u32, chain: Vec<u32>, value: u64) -> NetChainPacket {
        NetChainPacket::query(
            Ipv4Addr::for_host(0),
            40000,
            Ipv4Addr::for_switch(dst),
            OpCode::Write,
            Key::from_name("foo"),
            Value::from_u64(value),
            ChainList::new(
                chain
                    .into_iter()
                    .map(Ipv4Addr::for_switch)
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            1,
        )
    }

    fn read_query(dst: u32) -> NetChainPacket {
        NetChainPacket::query(
            Ipv4Addr::for_host(0),
            40000,
            Ipv4Addr::for_switch(dst),
            OpCode::Read,
            Key::from_name("foo"),
            Value::empty(),
            ChainList::empty(),
            2,
        )
    }

    #[test]
    fn head_assigns_sequence_and_forwards() {
        let mut s0 = switch(0);
        let pkt = write_query(0, vec![1, 2], 42);
        let out = match s0.handle(pkt) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.seq, 1);
        assert_eq!(out.ip.dst, Ipv4Addr::for_switch(1));
        assert_eq!(out.netchain.chain.len(), 1);
        let slot = s0.kv().lookup(&Key::from_name("foo")).unwrap();
        assert_eq!(s0.kv().read_value(slot).as_u64(), Some(42));
        assert_eq!(s0.kv().seq(slot), 1);
        assert_eq!(s0.stats().writes, 1);
        assert_eq!(s0.stats().chain_forwards, 1);
    }

    #[test]
    fn tail_applies_and_replies() {
        let mut s2 = switch(2);
        let mut pkt = write_query(2, vec![], 7);
        pkt.netchain.seq = 5; // already sequenced by the head
        let out = match s2.handle(pkt) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::WriteReply);
        assert_eq!(out.ip.dst, Ipv4Addr::for_host(0));
        assert_eq!(out.netchain.status, QueryStatus::Ok);
        let slot = s2.kv().lookup(&Key::from_name("foo")).unwrap();
        assert_eq!(s2.kv().seq(slot), 5);
        assert_eq!(s2.kv().read_value(slot).as_u64(), Some(7));
    }

    #[test]
    fn stale_sequence_is_dropped() {
        let mut s1 = switch(1);
        let mut newer = write_query(1, vec![], 2);
        newer.netchain.seq = 10;
        s1.handle(newer);
        let mut stale = write_query(1, vec![], 1);
        stale.netchain.seq = 9;
        assert_eq!(
            s1.handle(stale),
            SwitchAction::Drop(DropReason::StaleSequence)
        );
        let slot = s1.kv().lookup(&Key::from_name("foo")).unwrap();
        assert_eq!(s1.kv().read_value(slot).as_u64(), Some(2));
        assert_eq!(s1.stats().stale_drops, 1);
    }

    #[test]
    fn newer_session_overrides_equal_sequence_space() {
        let mut s1 = switch(1);
        let mut w = write_query(1, vec![], 3);
        w.netchain.seq = 10;
        w.netchain.session = 0;
        s1.handle(w);
        // A new head with session 1 restarts sequence numbers at 1; it must
        // still be accepted because the session is newer.
        let mut w2 = write_query(1, vec![], 4);
        w2.netchain.seq = 1;
        w2.netchain.session = 1;
        assert!(matches!(s1.handle(w2), SwitchAction::Forward(_)));
        let slot = s1.kv().lookup(&Key::from_name("foo")).unwrap();
        assert_eq!(s1.kv().read_value(slot).as_u64(), Some(4));
        assert_eq!(s1.kv().ordering(slot), (1, 1));
    }

    #[test]
    fn read_replies_with_current_value_and_miss_is_not_found() {
        let mut s2 = switch(2);
        let slot = s2.kv().lookup(&Key::from_name("foo")).unwrap();
        s2.kv_mut().write_value(slot, &Value::from_u64(99));
        let out = match s2.handle(read_query(2)) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::ReadReply);
        assert_eq!(out.netchain.value.as_u64(), Some(99));
        assert_eq!(out.netchain.status, QueryStatus::Ok);

        let mut miss = read_query(2);
        miss.netchain.key = Key::from_name("absent");
        let out = match s2.handle(miss) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.status, QueryStatus::NotFound);
        assert_eq!(s2.stats().misses, 1);
    }

    #[test]
    fn cas_succeeds_then_fails() {
        let mut s0 = switch(0);
        // Acquire: expect 0, set 77.
        let mut acquire = write_query(0, vec![], 0);
        acquire.netchain.op = OpCode::Cas;
        acquire.netchain.value = cas_value(0, 77);
        let out = match s0.handle(acquire) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::CasReply);
        assert_eq!(out.netchain.status, QueryStatus::Ok);
        let slot = s0.kv().lookup(&Key::from_name("foo")).unwrap();
        assert_eq!(s0.kv().read_value(slot).as_u64(), Some(77));

        // Second acquire by someone else: expect 0, but the lock holds 77.
        let mut steal = write_query(0, vec![], 0);
        steal.netchain.op = OpCode::Cas;
        steal.netchain.value = cas_value(0, 88);
        let out = match s0.handle(steal) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.status, QueryStatus::CasFailed);
        assert_eq!(out.netchain.value.as_u64(), Some(77));
        assert_eq!(s0.stats().cas_failures, 1);

        // Release by the owner: expect 77, set 0.
        let mut release = write_query(0, vec![], 0);
        release.netchain.op = OpCode::Cas;
        release.netchain.value = cas_value(77, 0);
        let out = match s0.handle(release) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.status, QueryStatus::Ok);
        assert_eq!(s0.kv().read_value(slot).as_u64(), Some(0));
    }

    #[test]
    fn cas_forwards_plain_new_value_down_the_chain() {
        let mut s0 = switch(0);
        let mut acquire = write_query(0, vec![1], 0);
        acquire.netchain.op = OpCode::Cas;
        acquire.netchain.value = cas_value(0, 55);
        let out = match s0.handle(acquire) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        // Mid-chain packet carries the decided value and a sequence number.
        assert_eq!(out.ip.dst, Ipv4Addr::for_switch(1));
        assert_eq!(out.netchain.value.as_u64(), Some(55));
        assert!(out.netchain.seq > 0);
        // The replica applies it via the ordinary write path.
        let mut s1 = switch(1);
        let applied = match s1.handle(out) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(applied.netchain.op, OpCode::CasReply);
        let slot = s1.kv().lookup(&Key::from_name("foo")).unwrap();
        assert_eq!(s1.kv().read_value(slot).as_u64(), Some(55));
    }

    #[test]
    fn delete_invalidates_then_read_misses() {
        let mut s0 = switch(0);
        let mut del = write_query(0, vec![], 0);
        del.netchain.op = OpCode::Delete;
        del.netchain.value = Value::empty();
        let out = match s0.handle(del) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::DeleteReply);
        let out = match s0.handle(read_query(0)) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.status, QueryStatus::NotFound);
        assert_eq!(s0.stats().deletes, 1);
    }

    #[test]
    fn mutation_miss_behaviour_depends_on_role() {
        let mut s0 = switch(0);
        let mut head_miss = write_query(0, vec![1], 9);
        head_miss.netchain.key = Key::from_name("absent");
        let out = match s0.handle(head_miss) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.status, QueryStatus::NotFound);

        let mut mid_miss = write_query(0, vec![1], 9);
        mid_miss.netchain.key = Key::from_name("absent");
        mid_miss.netchain.seq = 3;
        assert_eq!(
            s0.handle(mid_miss),
            SwitchAction::Drop(DropReason::MidChainMiss)
        );
    }

    #[test]
    fn failover_rule_skips_failed_hop_or_replies() {
        // Neighbour N holds a ChainFailover rule for S1.
        let mut n = switch(5);
        n.forwarding_mut()
            .install_chain_failover(Ipv4Addr::for_switch(1));
        // A write in flight towards failed S1 with S2 still to visit.
        let mut pkt = write_query(1, vec![2], 3);
        pkt.netchain.seq = 4;
        let out = match n.handle(pkt) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.ip.dst, Ipv4Addr::for_switch(2));
        assert!(out.netchain.chain.is_empty());
        assert_eq!(n.stats().failover_hits, 1);

        // A write whose failed hop was the last one is answered for the client.
        let mut pkt = write_query(1, vec![], 3);
        pkt.netchain.seq = 4;
        let out = match n.handle(pkt) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::WriteReply);
        assert_eq!(out.ip.dst, Ipv4Addr::for_host(0));
    }

    #[test]
    fn block_and_redirect_rules() {
        use crate::forward::{FailoverRule, RuleScope};
        let mut n = switch(5);
        n.forwarding_mut().install(
            Ipv4Addr::for_switch(1),
            FailoverRule {
                priority: 2,
                scope: RuleScope::All,
                action: FailoverAction::Block,
            },
        );
        let mut pkt = write_query(1, vec![2], 3);
        pkt.netchain.seq = 2;
        assert_eq!(n.handle(pkt), SwitchAction::Drop(DropReason::Blocked));
        assert_eq!(n.stats().blocked, 1);

        n.forwarding_mut().install(
            Ipv4Addr::for_switch(1),
            FailoverRule {
                priority: 3,
                scope: RuleScope::All,
                action: FailoverAction::Redirect(Ipv4Addr::for_switch(3)),
            },
        );
        let mut pkt = write_query(1, vec![2], 3);
        pkt.netchain.seq = 2;
        let out = match n.handle(pkt) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.ip.dst, Ipv4Addr::for_switch(3));
        // The chain list is untouched by a redirect.
        assert_eq!(out.netchain.chain.len(), 1);
    }

    #[test]
    fn transit_packets_pass_through_untouched() {
        let mut s1 = switch(1);
        let pkt = write_query(2, vec![], 5); // destined to S2, transiting S1
        let out = match s1.handle(pkt.clone()) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out, pkt);
        assert_eq!(s1.stats().transits, 1);
        assert_eq!(s1.stats().processed(), 0);
    }

    #[test]
    fn inactive_switch_drops_queries_addressed_to_it() {
        let mut s3 = switch(3);
        s3.set_active(false);
        let pkt = read_query(3);
        assert_eq!(s3.handle(pkt), SwitchAction::Drop(DropReason::Inactive));
        s3.set_active(true);
        assert!(matches!(s3.handle(read_query(3)), SwitchAction::Forward(_)));
    }

    #[test]
    fn insert_via_data_plane_is_declined() {
        let mut s0 = switch(0);
        let mut pkt = write_query(0, vec![], 1);
        pkt.netchain.op = OpCode::Insert;
        let out = match s0.handle(pkt) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::InsertReply);
        assert_eq!(out.netchain.status, QueryStatus::Declined);
    }

    #[test]
    fn stat_probe_replies_with_snapshot_and_leaves_state_alone() {
        let mut s0 = switch(0);
        s0.handle(read_query(0));
        s0.handle(write_query(0, vec![], 5));
        s0.set_probe_gauges(ProbeGauges {
            queue_depth: 3,
            queue_cap: 256,
            lat_buckets: [1, 0, 2, 0, 0, 0, 0, 7],
        });
        let size_before = s0.kv().store_size();

        let mut probe = read_query(0);
        probe.netchain.op = OpCode::Stat;
        let out = match s0.handle(probe) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(out.netchain.op, OpCode::StatReply);
        assert_eq!(out.netchain.status, QueryStatus::Ok);
        assert_eq!(out.ip.dst, Ipv4Addr::for_host(0));

        let snap = StatSnapshot::decode(out.netchain.value.as_bytes()).unwrap();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.store_size, size_before as u32);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.queue_cap, 256);
        assert_eq!(snap.lat_buckets[7], 7);
        // The probe itself is counted but never touches the registers.
        assert_eq!(s0.stats().stat_probes, 1);
        assert_eq!(s0.kv().store_size(), size_before);

        // A second probe sees the first one's packet count.
        let mut probe2 = read_query(0);
        probe2.netchain.op = OpCode::Stat;
        let out2 = match s0.handle(probe2) {
            SwitchAction::Forward(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        let snap2 = StatSnapshot::decode(out2.netchain.value.as_bytes()).unwrap();
        assert_eq!(snap2.packets_seen, snap.packets_seen + 1);
        assert!(snap2.replies > snap.replies);
    }

    #[test]
    fn non_netchain_traffic_is_ignored() {
        let mut s0 = switch(0);
        let mut pkt = write_query(0, vec![], 1);
        pkt.udp.dst_port = 53;
        pkt.udp.src_port = 1234;
        assert_eq!(s0.handle(pkt), SwitchAction::Drop(DropReason::NotNetChain));
    }

    #[test]
    fn step_batch_matches_sequential_handle() {
        let mut batched = switch(0);
        let mut sequential = switch(0);
        let pkts: Vec<NetChainPacket> = (0..40)
            .map(|i| match i % 3 {
                0 => write_query(0, vec![1], 100 + i),
                1 => read_query(0),
                _ => {
                    let mut p = write_query(0, vec![], 0);
                    p.netchain.op = OpCode::Cas;
                    p.netchain.value = cas_value(0, i);
                    p
                }
            })
            .collect();
        let mut batch_out = Vec::new();
        batched.step_batch(pkts.clone(), &mut batch_out);
        let seq_out: Vec<SwitchAction> = pkts.into_iter().map(|p| sequential.handle(p)).collect();
        assert_eq!(batch_out, seq_out);
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn staged_batch_matches_scalar_path() {
        let mut staged = switch(0);
        let mut scalar = switch(0);
        let miss = {
            let mut p = read_query(0);
            p.netchain.key = Key::from_name("absent");
            p
        };
        // Interleave fast-lane reads (hit and miss) with tail writes (reply)
        // and chain-forward writes (non-reply) so the staged path is checked
        // against mutations landing between reads of the same key.
        let pkts: Vec<NetChainPacket> = (0..16)
            .map(|i| match i % 4 {
                0 => read_query(0),
                1 => write_query(0, vec![], 500 + i),
                2 => miss.clone(),
                _ => write_query(0, vec![1], 900 + i),
            })
            .collect();

        let mut scalar_replies = BatchEncoder::new();
        let mut scalar_actions = Vec::new();
        for p in pkts.clone() {
            let act = scalar.handle(p);
            if let SwitchAction::Forward(ref r) = act {
                if r.netchain.op.is_reply() {
                    scalar_replies.push(r).unwrap();
                }
            }
            scalar_actions.push(act);
        }

        // The staged prepass probes slots before any packet executes — the
        // index never changes mid-burst, so the slots stay correct even with
        // writes in between; values are re-read at execution time.
        let frames: Vec<Vec<u8>> = pkts.iter().map(|p| p.to_bytes()).collect();
        let items: Vec<StagedPacket> = pkts
            .iter()
            .zip(&frames)
            .map(|(p, f)| {
                if p.netchain.op == OpCode::Read {
                    StagedPacket::FastRead {
                        frame: f.as_slice(),
                        slot: staged.kv().lookup(&p.netchain.key),
                        key: p.netchain.key,
                        client: p.ip.src,
                        request_id: p.netchain.request_id,
                    }
                } else {
                    StagedPacket::Owned(p.clone())
                }
            })
            .collect();
        let mut staged_replies = BatchEncoder::new();
        let mut outcomes = Vec::new();
        staged.step_batch_staged(items, &mut staged_replies, &mut outcomes);

        assert_eq!(staged.stats(), scalar.stats());
        assert_eq!(staged_replies.len(), scalar_replies.len());
        for (i, (a, b)) in staged_replies
            .frames()
            .zip(scalar_replies.frames())
            .enumerate()
        {
            assert_eq!(a, b, "reply frame {i} diverges from the scalar bytes");
        }
        assert_eq!(outcomes.len(), scalar_actions.len());
        for (o, a) in outcomes.iter().zip(&scalar_actions) {
            match (o, a) {
                (StagedOutcome::FastReply { client, request_id }, SwitchAction::Forward(p)) => {
                    assert!(p.netchain.op.is_reply());
                    assert_eq!(*client, p.ip.dst);
                    assert_eq!(*request_id, p.netchain.request_id);
                }
                (StagedOutcome::Reply(rp), SwitchAction::Forward(p)) => {
                    assert!(p.netchain.op.is_reply());
                    assert_eq!(rp, p);
                }
                (StagedOutcome::Action(sa), act) => assert_eq!(sa, act),
                other => panic!("mismatched outcome/action pair: {other:?}"),
            }
        }
    }

    #[test]
    fn wipe_clears_everything() {
        let mut s0 = switch(0);
        s0.set_session(4);
        s0.forwarding_mut()
            .install_chain_failover(Ipv4Addr::for_switch(9));
        s0.wipe();
        assert_eq!(s0.kv().store_size(), 0);
        assert!(s0.forwarding().is_empty());
        assert_eq!(s0.session(), 0);
    }
}
