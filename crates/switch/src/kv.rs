//! The on-chip key-value store: a match table for the key index plus register
//! arrays for values, sequence numbers and session numbers (Figure 3).
//!
//! Values are stored the way the prototype stores them: split across the
//! value stages, `bytes_per_stage` bytes per stage, with a separate length
//! register so variable-length values round-trip exactly.

use crate::pipeline::{PipelineConfig, ResourceUsage};
use crate::register::RegisterArray;
use crate::table::MatchTable;
use netchain_wire::{Key, Value};

/// Errors returned by control-plane operations on the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// No free value slot remains.
    Full,
    /// The key is already installed.
    KeyExists,
    /// The key is not installed.
    KeyNotFound,
    /// The value exceeds what the provisioned stages can hold even with
    /// recirculation disabled.
    ValueTooLarge,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Full => write!(f, "no free slots in the on-chip store"),
            KvError::KeyExists => write!(f, "key already installed"),
            KvError::KeyNotFound => write!(f, "key not installed"),
            KvError::ValueTooLarge => write!(f, "value exceeds provisioned stage capacity"),
        }
    }
}

impl std::error::Error for KvError {}

/// One exported key-value entry, used for state synchronisation during
/// failure recovery (§5.2 pre-synchronisation / synchronisation steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedEntry {
    /// The key.
    pub key: Key,
    /// Current value.
    pub value: Value,
    /// Stored sequence number.
    pub seq: u64,
    /// Stored session number.
    pub session: u64,
    /// Whether the entry is live (false = invalidated by a `Delete` awaiting
    /// garbage collection).
    pub valid: bool,
}

/// The switch-resident key-value store.
#[derive(Debug, Clone)]
pub struct SwitchKvStore {
    config: PipelineConfig,
    index: MatchTable,
    /// One register array per value stage.
    value_stages: Vec<RegisterArray>,
    /// Value lengths, one register per slot.
    lengths: RegisterArray,
    /// Per-key sequence numbers (Algorithm 1).
    seqs: RegisterArray,
    /// Per-key session numbers (§5.2, NOPaxos-style head replacement).
    sessions: RegisterArray,
    /// Validity flags (a `Delete` invalidates; the controller garbage
    /// collects later).
    valid: Vec<bool>,
    /// Free slot list.
    free: Vec<usize>,
}

impl SwitchKvStore {
    /// Creates an empty store with the given pipeline geometry.
    pub fn new(config: PipelineConfig) -> Self {
        let slots = config.slots_per_stage;
        let value_stages = (0..config.value_stages)
            .map(|_| RegisterArray::new(slots, config.bytes_per_stage))
            .collect();
        SwitchKvStore {
            config,
            index: MatchTable::new(slots),
            value_stages,
            lengths: RegisterArray::new(slots, 8),
            seqs: RegisterArray::new(slots, 8),
            sessions: RegisterArray::new(slots, 8),
            valid: vec![false; slots],
            free: (0..slots).rev().collect(),
        }
    }

    /// The pipeline geometry this store was built for.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of installed keys.
    pub fn store_size(&self) -> usize {
        self.index.len()
    }

    /// Number of slots still available.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Looks up the slot index of a key (data-plane match, Algorithm 1 line 1).
    pub fn lookup(&self, key: &Key) -> Option<usize> {
        self.index.lookup(key)
    }

    /// True if the slot currently holds a live (not invalidated) entry.
    pub fn is_valid(&self, slot: usize) -> bool {
        self.valid[slot]
    }

    /// Installs a new key with an initial value (control-plane `Insert`).
    pub fn insert(&mut self, key: Key, value: &Value) -> Result<usize, KvError> {
        if value.len() > self.config.max_line_rate_value() {
            return Err(KvError::ValueTooLarge);
        }
        if self.index.lookup(&key).is_some() {
            return Err(KvError::KeyExists);
        }
        let slot = self.free.pop().ok_or(KvError::Full)?;
        let inserted = self.index.insert(key, slot);
        debug_assert!(inserted, "index capacity mirrors slot count");
        self.write_value(slot, value);
        self.seqs.write_u64(slot, 0);
        self.sessions.write_u64(slot, 0);
        self.valid[slot] = true;
        Ok(slot)
    }

    /// Invalidates a key's entry (data-plane effect of `Delete`): the slot
    /// stays allocated until [`Self::garbage_collect`] reclaims it.
    pub fn invalidate(&mut self, slot: usize) {
        self.valid[slot] = false;
    }

    /// Re-validates a slot (a `Write` to an invalidated but not yet collected
    /// key resurrects it, matching register-array semantics).
    pub fn revalidate(&mut self, slot: usize) {
        self.valid[slot] = true;
    }

    /// Removes a key entirely and frees its slot (control-plane garbage
    /// collection after a `Delete`).
    pub fn garbage_collect(&mut self, key: &Key) -> Result<(), KvError> {
        let slot = self.index.remove(key).ok_or(KvError::KeyNotFound)?;
        self.valid[slot] = false;
        self.lengths.write_u64(slot, 0);
        self.seqs.write_u64(slot, 0);
        self.sessions.write_u64(slot, 0);
        for stage in &mut self.value_stages {
            stage.clear(slot);
        }
        self.free.push(slot);
        Ok(())
    }

    /// Reads the value stored in `slot`, reassembled across stages.
    pub fn read_value(&self, slot: usize) -> Value {
        let len = self.lengths.read_u64(slot) as usize;
        let mut bytes = Vec::with_capacity(len);
        let mut remaining = len;
        for stage in &self.value_stages {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(self.config.bytes_per_stage);
            bytes.extend_from_slice(&stage.read(slot)[..take]);
            remaining -= take;
        }
        Value::new(bytes).expect("stored values never exceed the wire maximum")
    }

    /// Length in bytes of the value stored in `slot`, without reassembling
    /// it (the staged read path sizes its in-place reply emission with this).
    pub fn value_len(&self, slot: usize) -> usize {
        self.lengths.read_u64(slot) as usize
    }

    /// Copies the value stored in `slot` into `out` (which must be exactly
    /// [`Self::value_len`] bytes), reassembling across stages without the
    /// `Vec` allocation [`Self::read_value`] pays. Returns the bytes copied.
    pub fn copy_value_into(&self, slot: usize, out: &mut [u8]) -> usize {
        let len = self.value_len(slot);
        debug_assert_eq!(out.len(), len, "output must be sized by value_len");
        let mut copied = 0;
        for stage in &self.value_stages {
            if copied == len {
                break;
            }
            let take = (len - copied).min(self.config.bytes_per_stage);
            out[copied..copied + take].copy_from_slice(&stage.read(slot)[..take]);
            copied += take;
        }
        copied
    }

    /// Stage 3 of the staged batch pipeline: resolves the slot of every lane
    /// through the index's open-addressed mirror using **precomputed** stable
    /// hashes (see `stable_hash_batch`), and touches each hit's ordering and
    /// length registers so the slot state stage 4 executes against is
    /// cache-hot — the software analogue of a hardware prefetch. Stage 4
    /// re-reads the registers at execution time, so interleaved mutations in
    /// the same burst observe and produce exactly the scalar path's state.
    pub fn probe_slots(&self, keys: &[Key], hashes: &[u64], out: &mut Vec<Option<usize>>) {
        debug_assert_eq!(keys.len(), hashes.len());
        let mut touch = 0u64;
        for (key, &hash) in keys.iter().zip(hashes) {
            let slot = self.index.lookup_with_hash(hash, key);
            if let Some(s) = slot {
                touch ^=
                    self.seqs.read_u64(s) ^ self.sessions.read_u64(s) ^ self.lengths.read_u64(s);
            }
            out.push(slot);
        }
        std::hint::black_box(touch);
    }

    /// Writes a value into `slot`, splitting it across stages.
    pub fn write_value(&mut self, slot: usize, value: &Value) {
        let bytes = value.as_bytes();
        self.lengths.write_u64(slot, bytes.len() as u64);
        for (i, stage) in self.value_stages.iter_mut().enumerate() {
            let start = i * self.config.bytes_per_stage;
            if start >= bytes.len() {
                stage.clear(slot);
            } else {
                let end = (start + self.config.bytes_per_stage).min(bytes.len());
                stage.write(slot, &bytes[start..end]);
            }
        }
    }

    /// The stored sequence number of `slot`.
    pub fn seq(&self, slot: usize) -> u64 {
        self.seqs.read_u64(slot)
    }

    /// Sets the stored sequence number of `slot`.
    pub fn set_seq(&mut self, slot: usize, seq: u64) {
        self.seqs.write_u64(slot, seq);
    }

    /// The stored session number of `slot`.
    pub fn session(&self, slot: usize) -> u64 {
        self.sessions.read_u64(slot)
    }

    /// Sets the stored session number of `slot`.
    pub fn set_session(&mut self, slot: usize, session: u64) {
        self.sessions.write_u64(slot, session);
    }

    /// The `(session, seq)` ordering tuple of `slot`.
    pub fn ordering(&self, slot: usize) -> (u64, u64) {
        (self.session(slot), self.seq(slot))
    }

    /// Exports every installed entry, for state synchronisation.
    pub fn export_entries(&self) -> Vec<ExportedEntry> {
        let mut out: Vec<ExportedEntry> = self
            .index
            .entries()
            .map(|(key, slot)| ExportedEntry {
                key: *key,
                value: self.read_value(slot),
                seq: self.seq(slot),
                session: self.session(slot),
                valid: self.valid[slot],
            })
            .collect();
        out.sort_by_key(|e| e.key);
        out
    }

    /// Imports one entry (used on a replacement switch during recovery).
    /// Existing entries are overwritten only if the imported ordering tuple
    /// is at least as new, preserving Invariant 1 when synchronisation races
    /// with live writes.
    pub fn import_entry(&mut self, entry: &ExportedEntry) -> Result<(), KvError> {
        let slot = match self.index.lookup(&entry.key) {
            Some(slot) => {
                if (entry.session, entry.seq) < self.ordering(slot) {
                    return Ok(());
                }
                slot
            }
            None => self.insert(entry.key, &entry.value).map_err(|e| match e {
                KvError::KeyExists => unreachable!("lookup said the key is absent"),
                other => other,
            })?,
        };
        self.write_value(slot, &entry.value);
        self.set_seq(slot, entry.seq);
        self.set_session(slot, entry.session);
        self.valid[slot] = entry.valid;
        Ok(())
    }

    /// Wipes every entry (a recovered switch starts empty before being
    /// resynchronised).
    pub fn clear_all(&mut self) {
        let keys: Vec<Key> = self.index.entries().map(|(k, _)| *k).collect();
        for key in keys {
            let _ = self.garbage_collect(&key);
        }
    }

    /// SRAM consumption snapshot.
    pub fn resource_usage(&self) -> ResourceUsage {
        ResourceUsage {
            index_bytes: self.index.memory_bytes(),
            value_register_bytes: self
                .value_stages
                .iter()
                .map(RegisterArray::memory_bytes)
                .sum(),
            ordering_register_bytes: self.seqs.memory_bytes()
                + self.sessions.memory_bytes()
                + self.lengths.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SwitchKvStore {
        SwitchKvStore::new(PipelineConfig::tiny(8))
    }

    #[test]
    fn insert_read_write_roundtrip() {
        let mut kv = store();
        let key = Key::from_name("foo");
        let slot = kv
            .insert(key, &Value::new(b"hello".to_vec()).unwrap())
            .unwrap();
        assert_eq!(kv.lookup(&key), Some(slot));
        assert_eq!(kv.read_value(slot).as_bytes(), b"hello");
        assert!(kv.is_valid(slot));
        kv.write_value(
            slot,
            &Value::new(b"a longer value spanning stages!".to_vec()).unwrap(),
        );
        assert_eq!(
            kv.read_value(slot).as_bytes(),
            b"a longer value spanning stages!"
        );
        assert_eq!(kv.store_size(), 1);
    }

    #[test]
    fn values_span_multiple_stages_exactly() {
        let mut kv = store(); // 2 stages × 16 bytes
        let key = Key::from_u64(9);
        let v32 = Value::filled(0x5a, 32).unwrap();
        let slot = kv.insert(key, &v32).unwrap();
        assert_eq!(kv.read_value(slot), v32);
        // Shrinking the value must not leak old bytes.
        let v3 = Value::new(b"abc".to_vec()).unwrap();
        kv.write_value(slot, &v3);
        assert_eq!(kv.read_value(slot), v3);
    }

    #[test]
    fn insert_rejects_duplicates_oversize_and_overflow() {
        let mut kv = store();
        let key = Key::from_u64(1);
        kv.insert(key, &Value::empty()).unwrap();
        assert_eq!(kv.insert(key, &Value::empty()), Err(KvError::KeyExists));
        assert_eq!(
            kv.insert(Key::from_u64(2), &Value::filled(0, 33).unwrap()),
            Err(KvError::ValueTooLarge),
            "2 stages x 16B = 32B maximum for the tiny config"
        );
        for i in 3..10u64 {
            let r = kv.insert(Key::from_u64(i), &Value::empty());
            if kv.free_slots() == 0 && r == Err(KvError::Full) {
                return; // overflow observed
            }
        }
        assert_eq!(
            kv.insert(Key::from_u64(99), &Value::empty()),
            Err(KvError::Full)
        );
    }

    #[test]
    fn delete_invalidate_and_gc_cycle() {
        let mut kv = store();
        let key = Key::from_name("k");
        let slot = kv.insert(key, &Value::from_u64(1)).unwrap();
        kv.invalidate(slot);
        assert!(!kv.is_valid(slot));
        kv.revalidate(slot);
        assert!(kv.is_valid(slot));
        kv.invalidate(slot);
        let before = kv.free_slots();
        kv.garbage_collect(&key).unwrap();
        assert_eq!(kv.free_slots(), before + 1);
        assert_eq!(kv.lookup(&key), None);
        assert_eq!(kv.garbage_collect(&key), Err(KvError::KeyNotFound));
    }

    #[test]
    fn ordering_registers() {
        let mut kv = store();
        let slot = kv.insert(Key::from_u64(5), &Value::empty()).unwrap();
        assert_eq!(kv.ordering(slot), (0, 0));
        kv.set_seq(slot, 7);
        kv.set_session(slot, 2);
        assert_eq!(kv.ordering(slot), (2, 7));
    }

    #[test]
    fn export_import_preserves_state_and_respects_ordering() {
        let mut a = store();
        let key = Key::from_name("cfg");
        let slot = a.insert(key, &Value::from_u64(10)).unwrap();
        a.set_seq(slot, 5);
        a.set_session(slot, 1);

        let mut b = store();
        for entry in a.export_entries() {
            b.import_entry(&entry).unwrap();
        }
        let bslot = b.lookup(&key).unwrap();
        assert_eq!(b.read_value(bslot).as_u64(), Some(10));
        assert_eq!(b.ordering(bslot), (1, 5));

        // A stale import must not clobber newer local state.
        b.set_seq(bslot, 9);
        b.write_value(bslot, &Value::from_u64(99));
        for entry in a.export_entries() {
            b.import_entry(&entry).unwrap();
        }
        assert_eq!(b.read_value(bslot).as_u64(), Some(99));
        assert_eq!(b.seq(bslot), 9);
    }

    #[test]
    fn clear_all_frees_everything() {
        let mut kv = store();
        for i in 0..5u64 {
            kv.insert(Key::from_u64(i), &Value::from_u64(i)).unwrap();
        }
        kv.clear_all();
        assert_eq!(kv.store_size(), 0);
        assert_eq!(kv.free_slots(), 8);
    }

    #[test]
    fn resource_usage_reflects_geometry() {
        let kv = SwitchKvStore::new(PipelineConfig::tofino_prototype());
        let usage = kv.resource_usage();
        assert_eq!(usage.value_register_bytes, 8 * 1024 * 1024);
        assert!(usage.fits(&PipelineConfig::tofino_prototype()));
        assert_eq!(usage.index_bytes, 0);
    }
}
