//! Failover and redirection rules installed by the controller in the
//! neighbours of a failed switch (Algorithms 2 and 3).
//!
//! These rules match on the packet's *destination IP* — they apply to traffic
//! merely transiting a neighbour switch on its way to the failed device, which
//! is exactly why updating only the neighbours is sufficient (§5.1).
//!
//! Rules carry a priority and an optional *virtual-group scope*. The scope is
//! how the model expresses "recover one virtual group at a time" (§5.2): in a
//! real deployment each virtual group is a distinct chain whose traffic is
//! distinguishable by its chain IPs, so the controller's per-group rules
//! naturally affect only that group's queries; the model keys the same
//! distinction off the key's group id, which every switch can compute from
//! the key hash it already has.

use netchain_wire::{Ipv4Addr, Key, FNV64_OFFSET, FNV64_PRIME, KEY_LEN};
use std::collections::HashMap;

/// Stage 2 of the staged batch pipeline: `Key::stable_hash` (FNV-1a 64) over
/// a whole batch of keys in one pass. The loop is lane-major — the outer
/// loop walks the 16 byte positions, the inner loop sweeps all lanes — so
/// the compiler can vectorise the independent u64 hash states instead of
/// chasing one key's bytes serially. Produces bit-identical results to
/// calling `stable_hash` per key (pinned by a unit test below).
pub fn stable_hash_batch(keys: &[[u8; KEY_LEN]], out: &mut [u64]) {
    assert!(out.len() >= keys.len(), "output must cover every lane");
    let out = &mut out[..keys.len()];
    for h in out.iter_mut() {
        *h = FNV64_OFFSET;
    }
    for pos in 0..KEY_LEN {
        for (h, key) in out.iter_mut().zip(keys) {
            *h = (*h ^ u64::from(key[pos])).wrapping_mul(FNV64_PRIME);
        }
    }
}

/// Which queries a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleScope {
    /// Every query destined to the failed switch.
    All,
    /// Only queries whose key falls in virtual group `group` out of
    /// `modulus` groups.
    Group {
        /// The virtual-group id the rule targets.
        group: u32,
        /// Total number of virtual groups.
        modulus: u32,
    },
}

impl RuleScope {
    /// True if a query for `key` falls under this scope.
    pub fn matches(&self, key: &Key) -> bool {
        match *self {
            RuleScope::All => true,
            RuleScope::Group { group, modulus } => {
                modulus > 0 && (key.stable_hash() % u64::from(modulus)) as u32 == group
            }
        }
    }
}

/// What a neighbour switch does with a matching packet destined to a failed
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverAction {
    /// Fast failover (Algorithm 2): skip the failed hop — pop the next chain
    /// IP into the destination, or reply to the client if the failed hop was
    /// the last one.
    ChainFailover,
    /// Failure recovery phase 1 (Algorithm 3, "stop and synchronisation"):
    /// drop queries destined to the failed switch so the replacement can
    /// catch up consistently.
    Block,
    /// Failure recovery phase 2 ("activation"): forward queries to the
    /// replacement switch instead.
    Redirect(Ipv4Addr),
}

/// One installed rule: match on destination IP (the map key in
/// [`ForwardingTable`]), refine by scope, act with `action`. Higher priority
/// wins; the controller uses priority 1 for fast failover, 2 for recovery
/// blocks and 3 for recovery redirects, mirroring "they override the rules of
/// fast failover by using higher rule priorities" (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRule {
    /// Rule priority; larger values win.
    pub priority: u8,
    /// Which keys the rule applies to.
    pub scope: RuleScope,
    /// What to do with matching packets.
    pub action: FailoverAction,
}

/// The per-switch table of failover rules, keyed by the failed switch's IP.
#[derive(Debug, Clone, Default)]
pub struct ForwardingTable {
    rules: HashMap<Ipv4Addr, Vec<FailoverRule>>,
}

impl ForwardingTable {
    /// Creates an empty rule table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule for packets destined to `failed_ip`. A rule with the
    /// same priority *and* scope replaces the previous one (the controller
    /// re-programs a rule slot); otherwise rules coexist and priority decides.
    pub fn install(&mut self, failed_ip: Ipv4Addr, rule: FailoverRule) {
        let slot = self.rules.entry(failed_ip).or_default();
        if let Some(existing) = slot
            .iter_mut()
            .find(|r| r.priority == rule.priority && r.scope == rule.scope)
        {
            *existing = rule;
        } else {
            slot.push(rule);
        }
        slot.sort_by_key(|r| std::cmp::Reverse(r.priority));
    }

    /// Convenience: installs the fast-failover rule (priority 1, all keys).
    pub fn install_chain_failover(&mut self, failed_ip: Ipv4Addr) {
        self.install(
            failed_ip,
            FailoverRule {
                priority: 1,
                scope: RuleScope::All,
                action: FailoverAction::ChainFailover,
            },
        );
    }

    /// Removes every rule matching `failed_ip` with the given priority and
    /// scope. Returns the number of rules removed.
    pub fn remove(&mut self, failed_ip: Ipv4Addr, priority: u8, scope: RuleScope) -> usize {
        let Some(slot) = self.rules.get_mut(&failed_ip) else {
            return 0;
        };
        let before = slot.len();
        slot.retain(|r| !(r.priority == priority && r.scope == scope));
        let removed = before - slot.len();
        if slot.is_empty() {
            self.rules.remove(&failed_ip);
        }
        removed
    }

    /// Removes all rules for `failed_ip`.
    pub fn remove_all(&mut self, failed_ip: Ipv4Addr) -> usize {
        self.rules.remove(&failed_ip).map_or(0, |v| v.len())
    }

    /// The action that applies to a query for `key` destined to `dst`, if any
    /// (highest priority rule whose scope matches).
    pub fn action_for(&self, dst: Ipv4Addr, key: &Key) -> Option<FailoverAction> {
        self.rules
            .get(&dst)?
            .iter()
            .find(|rule| rule.scope.matches(key))
            .map(|rule| rule.action)
    }

    /// Number of installed rules (across all destinations).
    pub fn len(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_hash_matches_scalar_stable_hash() {
        let keys: Vec<[u8; KEY_LEN]> = (0..37u64)
            .map(|i| Key::from_u64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).0)
            .collect();
        let mut hashes = vec![0u64; keys.len()];
        stable_hash_batch(&keys, &mut hashes);
        for (k, h) in keys.iter().zip(&hashes) {
            assert_eq!(Key::from_bytes(*k).stable_hash(), *h);
        }
        // Empty batch is a no-op.
        stable_hash_batch(&[], &mut []);
    }

    fn key_in_group(group: u32, modulus: u32) -> Key {
        (0..)
            .map(Key::from_u64)
            .find(|k| (k.stable_hash() % u64::from(modulus)) as u32 == group)
            .expect("some key falls in every group")
    }

    #[test]
    fn scope_matching() {
        let k = Key::from_name("foo");
        assert!(RuleScope::All.matches(&k));
        let g = (k.stable_hash() % 10) as u32;
        assert!(RuleScope::Group {
            group: g,
            modulus: 10
        }
        .matches(&k));
        assert!(!RuleScope::Group {
            group: (g + 1) % 10,
            modulus: 10
        }
        .matches(&k));
        assert!(!RuleScope::Group {
            group: 0,
            modulus: 0
        }
        .matches(&k));
    }

    #[test]
    fn install_lookup_remove_roundtrip() {
        let mut t = ForwardingTable::new();
        let failed = Ipv4Addr::for_switch(1);
        let key = Key::from_name("foo");
        assert!(t.is_empty());
        assert_eq!(t.action_for(failed, &key), None);

        t.install_chain_failover(failed);
        assert_eq!(
            t.action_for(failed, &key),
            Some(FailoverAction::ChainFailover)
        );
        assert_eq!(t.len(), 1);

        assert_eq!(t.remove(failed, 1, RuleScope::All), 1);
        assert!(t.is_empty());
        assert_eq!(t.remove(failed, 1, RuleScope::All), 0);
    }

    #[test]
    fn higher_priority_rules_override() {
        let mut t = ForwardingTable::new();
        let failed = Ipv4Addr::for_switch(1);
        let key = Key::from_name("foo");
        let replacement = Ipv4Addr::for_switch(3);
        t.install_chain_failover(failed);
        t.install(
            failed,
            FailoverRule {
                priority: 2,
                scope: RuleScope::All,
                action: FailoverAction::Block,
            },
        );
        assert_eq!(t.action_for(failed, &key), Some(FailoverAction::Block));
        t.install(
            failed,
            FailoverRule {
                priority: 3,
                scope: RuleScope::All,
                action: FailoverAction::Redirect(replacement),
            },
        );
        assert_eq!(
            t.action_for(failed, &key),
            Some(FailoverAction::Redirect(replacement))
        );
        // Dropping the high-priority rules falls back to fast failover.
        t.remove(failed, 3, RuleScope::All);
        t.remove(failed, 2, RuleScope::All);
        assert_eq!(
            t.action_for(failed, &key),
            Some(FailoverAction::ChainFailover)
        );
    }

    #[test]
    fn group_scoped_rules_only_affect_their_group() {
        let mut t = ForwardingTable::new();
        let failed = Ipv4Addr::for_switch(1);
        t.install_chain_failover(failed);
        let blocked_key = key_in_group(3, 100);
        let other_key = key_in_group(4, 100);
        t.install(
            failed,
            FailoverRule {
                priority: 2,
                scope: RuleScope::Group {
                    group: 3,
                    modulus: 100,
                },
                action: FailoverAction::Block,
            },
        );
        assert_eq!(
            t.action_for(failed, &blocked_key),
            Some(FailoverAction::Block)
        );
        assert_eq!(
            t.action_for(failed, &other_key),
            Some(FailoverAction::ChainFailover)
        );
    }

    #[test]
    fn reinstalling_same_slot_replaces() {
        let mut t = ForwardingTable::new();
        let failed = Ipv4Addr::for_switch(2);
        let key = Key::from_name("x");
        t.install(
            failed,
            FailoverRule {
                priority: 3,
                scope: RuleScope::All,
                action: FailoverAction::Redirect(Ipv4Addr::for_switch(7)),
            },
        );
        t.install(
            failed,
            FailoverRule {
                priority: 3,
                scope: RuleScope::All,
                action: FailoverAction::Redirect(Ipv4Addr::for_switch(8)),
            },
        );
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.action_for(failed, &key),
            Some(FailoverAction::Redirect(Ipv4Addr::for_switch(8)))
        );
        assert_eq!(t.remove_all(failed), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn rules_are_per_destination() {
        let mut t = ForwardingTable::new();
        let key = Key::from_name("k");
        t.install_chain_failover(Ipv4Addr::for_switch(1));
        t.install(
            Ipv4Addr::for_switch(2),
            FailoverRule {
                priority: 2,
                scope: RuleScope::All,
                action: FailoverAction::Block,
            },
        );
        assert_eq!(
            t.action_for(Ipv4Addr::for_switch(1), &key),
            Some(FailoverAction::ChainFailover)
        );
        assert_eq!(
            t.action_for(Ipv4Addr::for_switch(2), &key),
            Some(FailoverAction::Block)
        );
        assert_eq!(t.action_for(Ipv4Addr::for_switch(3), &key), None);
    }
}
