//! Register arrays: the on-chip SRAM word arrays a P4 program can read and
//! modify per packet at line rate.
//!
//! NetChain stores values in register arrays (one array per pipeline stage,
//! each stage contributing up to 16 bytes of the value) and sequence numbers
//! in a dedicated array sharing the same index space (§4.1, §4.3).

use std::fmt;

/// A fixed-geometry array of fixed-width registers.
///
/// Geometry is chosen at construction: `slots` registers of `width` bytes
/// each. Reads and writes are per-slot; a write shorter than the width zero
/// pads, which matches how a P4 action writes a header field into a wider
/// register.
#[derive(Clone)]
pub struct RegisterArray {
    width: usize,
    data: Vec<u8>,
    slots: usize,
}

impl fmt::Debug for RegisterArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisterArray")
            .field("slots", &self.slots)
            .field("width", &self.width)
            .finish()
    }
}

impl RegisterArray {
    /// Creates an array of `slots` registers, each `width` bytes wide, zeroed.
    pub fn new(slots: usize, width: usize) -> Self {
        assert!(width > 0, "register width must be non-zero");
        RegisterArray {
            width,
            data: vec![0; slots * width],
            slots,
        }
    }

    /// Number of registers.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Width of each register in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total SRAM footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len()
    }

    /// Reads the register at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range — the match table only ever produces
    /// in-range indexes, so an out-of-range access is a logic bug.
    pub fn read(&self, index: usize) -> &[u8] {
        assert!(index < self.slots, "register index {index} out of range");
        &self.data[index * self.width..(index + 1) * self.width]
    }

    /// Writes `value` to the register at `index`, zero-padding or truncating
    /// to the register width (truncation cannot happen for NetChain because
    /// the stage geometry is sized for the maximum value, but the model stays
    /// total).
    pub fn write(&mut self, index: usize, value: &[u8]) {
        assert!(index < self.slots, "register index {index} out of range");
        let slot = &mut self.data[index * self.width..(index + 1) * self.width];
        let n = value.len().min(slot.len());
        slot[..n].copy_from_slice(&value[..n]);
        for byte in slot[n..].iter_mut() {
            *byte = 0;
        }
    }

    /// Reads the register at `index` as a big-endian `u64` (registers wider
    /// than 8 bytes use their first 8 bytes). Convenient for sequence-number
    /// and session-number arrays.
    pub fn read_u64(&self, index: usize) -> u64 {
        let slot = self.read(index);
        let mut buf = [0u8; 8];
        let n = slot.len().min(8);
        buf[..n].copy_from_slice(&slot[..n]);
        u64::from_be_bytes(buf)
    }

    /// Writes a big-endian `u64` into the register at `index`.
    pub fn write_u64(&mut self, index: usize, value: u64) {
        let bytes = value.to_be_bytes();
        self.write(index, &bytes);
    }

    /// Zeroes the register at `index`.
    pub fn clear(&mut self, index: usize) {
        self.write(index, &[]);
    }

    /// Zeroes every register (used when a recovered switch is wiped before
    /// state synchronisation).
    pub fn clear_all(&mut self) {
        self.data.iter_mut().for_each(|b| *b = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_memory() {
        let arr = RegisterArray::new(64, 16);
        assert_eq!(arr.slots(), 64);
        assert_eq!(arr.width(), 16);
        assert_eq!(arr.memory_bytes(), 1024);
    }

    #[test]
    fn write_pads_and_truncates() {
        let mut arr = RegisterArray::new(4, 4);
        arr.write(1, &[0xaa, 0xbb]);
        assert_eq!(arr.read(1), &[0xaa, 0xbb, 0, 0]);
        arr.write(1, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(arr.read(1), &[1, 2, 3, 4]);
        arr.clear(1);
        assert_eq!(arr.read(1), &[0, 0, 0, 0]);
    }

    #[test]
    fn u64_roundtrip() {
        let mut arr = RegisterArray::new(8, 8);
        arr.write_u64(3, 0xdead_beef_cafe);
        assert_eq!(arr.read_u64(3), 0xdead_beef_cafe);
        // Wider registers keep the number in the first 8 bytes.
        let mut wide = RegisterArray::new(2, 16);
        wide.write_u64(0, 42);
        assert_eq!(wide.read_u64(0), 42);
    }

    #[test]
    fn clear_all_zeroes_everything() {
        let mut arr = RegisterArray::new(4, 2);
        for i in 0..4 {
            arr.write(i, &[0xff, 0xff]);
        }
        arr.clear_all();
        for i in 0..4 {
            assert_eq!(arr.read(i), &[0, 0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        RegisterArray::new(2, 2).read(2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_rejected() {
        RegisterArray::new(2, 0);
    }
}
