//! Exact-match tables.
//!
//! The NetChain key index (Figure 3) is an exact-match table whose action
//! returns the register-array location of the matched key. Entries are
//! installed and removed by the control plane (`Insert`/`Delete` queries go
//! through the controller, §4.1); the data plane only performs lookups.

use netchain_wire::Key;
use std::collections::HashMap;

/// One cell of the open-addressed probe mirror.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ProbeSlot {
    Empty,
    /// A removed entry: probes continue past it, inserts may reuse it.
    Tombstone,
    Full {
        hash: u64,
        key: Key,
        index: usize,
    },
}

/// An exact-match table from [`Key`] to a register-array index, with a fixed
/// capacity (the number of value slots provisioned in the pipeline).
///
/// Besides the `HashMap` that serves the scalar [`MatchTable::lookup`], the
/// table maintains an open-addressed mirror keyed by the key's *stable* FNV
/// hash. The staged batch path hashes all keys of a burst in one pass
/// (`stable_hash_batch`) and then probes the mirror with those precomputed
/// hashes ([`MatchTable::lookup_with_hash`]), skipping the per-lookup SipHash
/// the `HashMap` would charge. Both structures are updated together on the
/// (control-plane) insert/remove paths, so they can never disagree.
#[derive(Debug, Clone)]
pub struct MatchTable {
    entries: HashMap<Key, usize>,
    capacity: usize,
    probe: Vec<ProbeSlot>,
    /// `probe.len() - 1`; the probe table is a power of two at least twice
    /// the capacity, keeping the load factor at or below one half.
    mask: usize,
}

impl MatchTable {
    /// Creates an empty table that can hold at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        MatchTable {
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
            capacity,
            probe: vec![ProbeSlot::Empty; slots],
            mask: slots - 1,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if no further entries can be installed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the register index of `key` (the match-action lookup of
    /// Algorithm 1 line 1). Returns `None` on a table miss, in which case the
    /// switch drops the query or replies "not found".
    pub fn lookup(&self, key: &Key) -> Option<usize> {
        self.entries.get(key).copied()
    }

    /// Looks up `key` through the open-addressed mirror using its
    /// **precomputed** stable hash (`key.stable_hash()`), the stage-3 probe
    /// of the staged batch path. Returns exactly what [`MatchTable::lookup`]
    /// returns.
    pub fn lookup_with_hash(&self, hash: u64, key: &Key) -> Option<usize> {
        let mut i = (hash as usize) & self.mask;
        // Bounded by a full sweep: a table saturated with tombstones (only
        // reachable through pathological churn) must still terminate.
        for _ in 0..self.probe.len() {
            match &self.probe[i] {
                ProbeSlot::Empty => return None,
                ProbeSlot::Full {
                    hash: h,
                    key: k,
                    index,
                } if *h == hash && k == key => return Some(*index),
                _ => i = (i + 1) & self.mask,
            }
        }
        None
    }

    /// Installs an entry (control-plane operation). Returns `false` if the
    /// table is full or the key already exists.
    pub fn insert(&mut self, key: Key, index: usize) -> bool {
        if self.entries.contains_key(&key) || self.is_full() {
            return false;
        }
        self.entries.insert(key, index);
        let hash = key.stable_hash();
        let mut i = (hash as usize) & self.mask;
        while matches!(self.probe[i], ProbeSlot::Full { .. }) {
            i = (i + 1) & self.mask;
        }
        self.probe[i] = ProbeSlot::Full { hash, key, index };
        true
    }

    /// Removes an entry (control-plane operation), returning the index it
    /// pointed at.
    pub fn remove(&mut self, key: &Key) -> Option<usize> {
        let removed = self.entries.remove(key)?;
        let hash = key.stable_hash();
        let mut i = (hash as usize) & self.mask;
        loop {
            match &self.probe[i] {
                ProbeSlot::Full {
                    hash: h, key: k, ..
                } if *h == hash && k == key => {
                    self.probe[i] = ProbeSlot::Tombstone;
                    break;
                }
                ProbeSlot::Empty => {
                    debug_assert!(false, "probe mirror out of sync with entries");
                    break;
                }
                _ => i = (i + 1) & self.mask,
            }
        }
        Some(removed)
    }

    /// Iterates over all `(key, index)` pairs (used by state synchronisation
    /// during failure recovery).
    pub fn entries(&self) -> impl Iterator<Item = (&Key, usize)> {
        self.entries.iter().map(|(k, &v)| (k, v))
    }

    /// Approximate SRAM footprint: each entry stores the 16-byte key plus a
    /// 4-byte action parameter (the index), which is how the paper's 8 MB
    /// storage figure accounts for keys.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (netchain_wire::KEY_LEN + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = MatchTable::new(4);
        let k = Key::from_name("x");
        assert!(t.is_empty());
        assert!(t.insert(k, 7));
        assert!(!t.insert(k, 8), "duplicate insert must be rejected");
        assert_eq!(t.lookup(&k), Some(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.memory_bytes(), 20);
        assert_eq!(t.remove(&k), Some(7));
        assert_eq!(t.lookup(&k), None);
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = MatchTable::new(2);
        assert!(t.insert(Key::from_u64(1), 0));
        assert!(t.insert(Key::from_u64(2), 1));
        assert!(t.is_full());
        assert!(!t.insert(Key::from_u64(3), 2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn hashed_probe_agrees_with_map_lookup_under_churn() {
        let mut t = MatchTable::new(64);
        for i in 0..64u64 {
            assert!(t.insert(Key::from_u64(i), i as usize));
        }
        // Remove every third key (leaves tombstones), then re-insert a few.
        for i in (0..64u64).step_by(3) {
            assert!(t.remove(&Key::from_u64(i)).is_some());
        }
        for i in (0..30u64).step_by(3) {
            assert!(t.insert(Key::from_u64(i), 1000 + i as usize));
        }
        for i in 0..80u64 {
            let k = Key::from_u64(i);
            assert_eq!(
                t.lookup_with_hash(k.stable_hash(), &k),
                t.lookup(&k),
                "divergence for key {i}"
            );
        }
    }

    #[test]
    fn entries_iterates_everything() {
        let mut t = MatchTable::new(8);
        for i in 0..5u64 {
            t.insert(Key::from_u64(i), i as usize);
        }
        let mut pairs: Vec<(u64, usize)> = t.entries().map(|(k, v)| (k.low_u64(), v)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }
}
