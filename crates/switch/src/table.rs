//! Exact-match tables.
//!
//! The NetChain key index (Figure 3) is an exact-match table whose action
//! returns the register-array location of the matched key. Entries are
//! installed and removed by the control plane (`Insert`/`Delete` queries go
//! through the controller, §4.1); the data plane only performs lookups.

use netchain_wire::Key;
use std::collections::HashMap;

/// An exact-match table from [`Key`] to a register-array index, with a fixed
/// capacity (the number of value slots provisioned in the pipeline).
#[derive(Debug, Clone)]
pub struct MatchTable {
    entries: HashMap<Key, usize>,
    capacity: usize,
}

impl MatchTable {
    /// Creates an empty table that can hold at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        MatchTable {
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if no further entries can be installed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the register index of `key` (the match-action lookup of
    /// Algorithm 1 line 1). Returns `None` on a table miss, in which case the
    /// switch drops the query or replies "not found".
    pub fn lookup(&self, key: &Key) -> Option<usize> {
        self.entries.get(key).copied()
    }

    /// Installs an entry (control-plane operation). Returns `false` if the
    /// table is full or the key already exists.
    pub fn insert(&mut self, key: Key, index: usize) -> bool {
        if self.entries.contains_key(&key) || self.is_full() {
            return false;
        }
        self.entries.insert(key, index);
        true
    }

    /// Removes an entry (control-plane operation), returning the index it
    /// pointed at.
    pub fn remove(&mut self, key: &Key) -> Option<usize> {
        self.entries.remove(key)
    }

    /// Iterates over all `(key, index)` pairs (used by state synchronisation
    /// during failure recovery).
    pub fn entries(&self) -> impl Iterator<Item = (&Key, usize)> {
        self.entries.iter().map(|(k, &v)| (k, v))
    }

    /// Approximate SRAM footprint: each entry stores the 16-byte key plus a
    /// 4-byte action parameter (the index), which is how the paper's 8 MB
    /// storage figure accounts for keys.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (netchain_wire::KEY_LEN + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = MatchTable::new(4);
        let k = Key::from_name("x");
        assert!(t.is_empty());
        assert!(t.insert(k, 7));
        assert!(!t.insert(k, 8), "duplicate insert must be rejected");
        assert_eq!(t.lookup(&k), Some(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.memory_bytes(), 20);
        assert_eq!(t.remove(&k), Some(7));
        assert_eq!(t.lookup(&k), None);
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = MatchTable::new(2);
        assert!(t.insert(Key::from_u64(1), 0));
        assert!(t.insert(Key::from_u64(2), 1));
        assert!(t.is_full());
        assert!(!t.insert(Key::from_u64(3), 2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn entries_iterates_everything() {
        let mut t = MatchTable::new(8);
        for i in 0..5u64 {
            t.insert(Key::from_u64(i), i as usize);
        }
        let mut pairs: Vec<(u64, usize)> = t.entries().map(|(k, v)| (k.low_u64(), v)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }
}
