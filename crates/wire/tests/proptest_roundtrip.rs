//! Property-based tests for the wire formats: every structurally valid header
//! survives an emit → parse round trip, and parsers never panic on arbitrary
//! bytes.

use netchain_wire::{
    ChainList, EthernetHeader, Ipv4Addr, Ipv4Header, Key, MacAddr, NetChainHeader, NetChainPacket,
    OpCode, QueryStatus, UdpHeader, Value, MAX_CHAIN_LEN, MAX_VALUE_LEN,
};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = OpCode> {
    prop_oneof![
        Just(OpCode::Read),
        Just(OpCode::Write),
        Just(OpCode::Insert),
        Just(OpCode::Delete),
        Just(OpCode::Cas),
        Just(OpCode::ReadReply),
        Just(OpCode::WriteReply),
        Just(OpCode::InsertReply),
        Just(OpCode::DeleteReply),
        Just(OpCode::CasReply),
    ]
}

fn arb_status() -> impl Strategy<Value = QueryStatus> {
    prop_oneof![
        Just(QueryStatus::Ok),
        Just(QueryStatus::NotFound),
        Just(QueryStatus::CasFailed),
        Just(QueryStatus::Declined),
        Just(QueryStatus::Retry),
    ]
}

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

fn arb_header() -> impl Strategy<Value = NetChainHeader> {
    (
        arb_opcode(),
        arb_status(),
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<[u8; 16]>(),
        proptest::collection::vec(arb_addr(), 0..=MAX_CHAIN_LEN),
        proptest::collection::vec(any::<u8>(), 0..=MAX_VALUE_LEN),
    )
        .prop_map(
            |(op, status, session, seq, request_id, key, chain, value)| NetChainHeader {
                op,
                status,
                session,
                seq,
                request_id,
                key: Key::from_bytes(key),
                chain: ChainList::new(chain).expect("bounded by strategy"),
                value: Value::new(value).expect("bounded by strategy"),
            },
        )
}

proptest! {
    #[test]
    fn netchain_header_roundtrip(hdr in arb_header()) {
        let mut buf = vec![0u8; hdr.wire_len()];
        let written = hdr.emit(&mut buf).unwrap();
        prop_assert_eq!(written, hdr.wire_len());
        let (parsed, consumed) = NetChainHeader::parse(&buf).unwrap();
        prop_assert_eq!(consumed, written);
        prop_assert_eq!(parsed, hdr);
    }

    #[test]
    fn ipv4_header_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        payload_len in 0usize..1400,
        ttl in 1u8..=255,
        dscp in any::<u8>(),
    ) {
        let mut hdr = Ipv4Header::udp(src, dst, payload_len);
        hdr.ttl = ttl;
        hdr.dscp_ecn = dscp;
        let mut buf = [0u8; 20];
        hdr.emit(&mut buf).unwrap();
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, hdr);
    }

    #[test]
    fn udp_header_roundtrip(src in any::<u16>(), dst in any::<u16>(), len in 0usize..9000) {
        let hdr = UdpHeader::new(src, dst, len);
        let mut buf = [0u8; 8];
        hdr.emit(&mut buf).unwrap();
        let (parsed, _) = UdpHeader::parse(&buf).unwrap();
        prop_assert_eq!(parsed, hdr);
    }

    #[test]
    fn ethernet_header_roundtrip(src in any::<[u8; 6]>(), dst in any::<[u8; 6]>(), et in any::<u16>()) {
        let hdr = EthernetHeader {
            src: MacAddr(src),
            dst: MacAddr(dst),
            ethertype: netchain_wire::EtherType::from_u16(et),
        };
        let mut buf = [0u8; 14];
        hdr.emit(&mut buf).unwrap();
        let (parsed, _) = EthernetHeader::parse(&buf).unwrap();
        prop_assert_eq!(parsed, hdr);
    }

    #[test]
    fn full_packet_roundtrip(
        hdr in arb_header(),
        client in arb_addr(),
        first_hop in arb_addr(),
        port in 1024u16..,
    ) {
        let pkt = NetChainPacket::query(
            client,
            port,
            first_hop,
            hdr.op,
            hdr.key,
            hdr.value.clone(),
            hdr.chain.clone(),
            hdr.request_id,
        );
        let bytes = pkt.to_bytes();
        let parsed = NetChainPacket::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn parsers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Outcome (Ok or Err) is irrelevant; the property is "no panic".
        let _ = NetChainHeader::parse(&bytes);
        let _ = Ipv4Header::parse(&bytes);
        let _ = UdpHeader::parse(&bytes);
        let _ = EthernetHeader::parse(&bytes);
        let _ = NetChainPacket::from_bytes(&bytes);
    }

    #[test]
    fn advance_preserves_remaining_chain_order(
        hops in proptest::collection::vec(arb_addr(), 1..=MAX_CHAIN_LEN),
        client in arb_addr(),
    ) {
        let mut pkt = NetChainPacket::query(
            client,
            40000,
            hops[0],
            OpCode::Write,
            Key::from_u64(1),
            Value::empty(),
            ChainList::new(hops[1..].to_vec()).unwrap(),
            0,
        );
        let mut visited = vec![pkt.ip.dst];
        while pkt.advance_to_next_hop() {
            visited.push(pkt.ip.dst);
        }
        prop_assert_eq!(visited, hops);
    }
}
