//! Forward-compatibility pin for the in-band stat probe format: a
//! [`StatSnapshot`] stamped with a **newer** version byte must be rejected
//! cleanly — a typed error naming the version, never a panic and never a
//! silent misparse of a layout this decoder does not understand. A probing
//! dashboard counts such replies and keeps running; an old `ops_top` against
//! a newer dataplane degrades to "no probe reply", not to garbage rates.

use netchain_wire::{StatSnapshot, WireError, STAT_SNAPSHOT_LEN, STAT_VERSION};

fn encoded_sample() -> [u8; STAT_SNAPSHOT_LEN] {
    StatSnapshot {
        reads: 12,
        writes: 34,
        replies: 46,
        packets_seen: 99,
        store_size: 7,
        queue_depth: 3,
        queue_cap: 32,
        lat_buckets: [1, 2, 3, 4, 5, 6, 7, 8],
        ..Default::default()
    }
    .encode()
}

#[test]
fn current_version_round_trips() {
    let buf = encoded_sample();
    assert_eq!(buf[0], STAT_VERSION);
    let snap = StatSnapshot::decode(&buf).expect("own version decodes");
    assert_eq!(snap.reads, 12);
    assert_eq!(snap.lat_buckets, [1, 2, 3, 4, 5, 6, 7, 8]);
}

#[test]
fn higher_version_byte_is_rejected_with_the_version_named() {
    // Every future version byte, including the extremes, must come back as
    // a clean typed error carrying the offending version — that is what
    // lets a consumer count and report "peer is newer than me".
    for future in [STAT_VERSION + 1, STAT_VERSION + 7, u8::MAX] {
        let mut buf = encoded_sample();
        buf[0] = future;
        match StatSnapshot::decode(&buf) {
            Err(WireError::InvalidField {
                layer: "stat",
                field: "version",
                value,
            }) => assert_eq!(value, u64::from(future)),
            other => panic!("version {future}: expected InvalidField, got {other:?}"),
        }
    }
}

#[test]
fn future_version_with_trailing_extension_bytes_still_rejects() {
    // A plausible future shape: bumped version plus appended fields. The
    // decoder must reject on the version byte, not attempt the old layout
    // over the longer buffer.
    let mut buf = encoded_sample().to_vec();
    buf[0] = STAT_VERSION + 1;
    buf.extend_from_slice(&[0xAB; 24]);
    assert!(matches!(
        StatSnapshot::decode(&buf),
        Err(WireError::InvalidField {
            layer: "stat",
            field: "version",
            ..
        })
    ));
}

#[test]
fn a_probing_loop_counts_rejects_without_panicking() {
    // The consumer-side discipline the dashboard relies on: mixed replies,
    // some newer-versioned, decode to Ok/Err with the rejects countable.
    let good = encoded_sample();
    let mut newer = encoded_sample();
    newer[0] = STAT_VERSION + 1;
    let replies = [good.as_slice(), newer.as_slice(), good.as_slice()];
    let mut decoded = 0usize;
    let mut too_new = 0usize;
    for reply in replies {
        match StatSnapshot::decode(reply) {
            Ok(_) => decoded += 1,
            Err(WireError::InvalidField {
                field: "version", ..
            }) => too_new += 1,
            Err(other) => panic!("unexpected error shape: {other:?}"),
        }
    }
    assert_eq!((decoded, too_new), (2, 1));
}
