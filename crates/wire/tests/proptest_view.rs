//! Property-based equivalence of the zero-copy view parsers
//! (`NetChainView` / `PacketView`) against the owned parsers: on every byte
//! string — well-formed, mutated, or arbitrary garbage — both must agree on
//! accept/reject, and on acceptance the view's owned conversion must equal
//! the owned parse exactly. The same equivalence is pinned for the staged
//! batch parser ([`BatchView`] / [`validate_frame`]): its branch-free
//! accept-set and its structure-of-arrays lanes must match the scalar
//! [`PacketView`] on every frame, well-formed or not.

use netchain_wire::{
    validate_frame, BatchView, ChainList, Ipv4Addr, Key, NetChainHeader, NetChainPacket,
    NetChainView, OpCode, PacketView, QueryStatus, Value, BATCH_WIDTH, MAX_CHAIN_LEN,
    MAX_VALUE_LEN,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn arb_opcode() -> impl Strategy<Value = OpCode> {
    prop_oneof![
        Just(OpCode::Read),
        Just(OpCode::Write),
        Just(OpCode::Insert),
        Just(OpCode::Delete),
        Just(OpCode::Cas),
        Just(OpCode::ReadReply),
        Just(OpCode::WriteReply),
        Just(OpCode::InsertReply),
        Just(OpCode::DeleteReply),
        Just(OpCode::CasReply),
    ]
}

fn arb_status() -> impl Strategy<Value = QueryStatus> {
    prop_oneof![
        Just(QueryStatus::Ok),
        Just(QueryStatus::NotFound),
        Just(QueryStatus::CasFailed),
        Just(QueryStatus::Declined),
        Just(QueryStatus::Retry),
    ]
}

fn arb_header() -> impl Strategy<Value = NetChainHeader> {
    (
        arb_opcode(),
        arb_status(),
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<[u8; 16]>(),
        proptest::collection::vec(any::<[u8; 4]>().prop_map(Ipv4Addr), 0..=MAX_CHAIN_LEN),
        proptest::collection::vec(any::<u8>(), 0..=MAX_VALUE_LEN),
    )
        .prop_map(
            |(op, status, session, seq, request_id, key, chain, value)| NetChainHeader {
                op,
                status,
                session,
                seq,
                request_id,
                key: Key::from_bytes(key),
                chain: ChainList::new(chain).expect("bounded by strategy"),
                value: Value::new(value).expect("bounded by strategy"),
            },
        )
}

fn arb_packet() -> impl Strategy<Value = NetChainPacket> {
    (arb_header(), any::<[u8; 4]>(), any::<[u8; 4]>(), 1024u16..).prop_map(
        |(hdr, client, first_hop, port)| {
            NetChainPacket::query(
                Ipv4Addr(client),
                port,
                Ipv4Addr(first_hop),
                hdr.op,
                hdr.key,
                hdr.value.clone(),
                hdr.chain.clone(),
                hdr.request_id,
            )
        },
    )
}

/// One frame of any provenance: a well-formed packet, a truncation of one,
/// a single-byte corruption of one, or arbitrary garbage — the mix a shard's
/// ingress ring can actually contain.
fn arb_frame() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        arb_packet().prop_map(|p| p.to_bytes()),
        (arb_packet(), 0.0f64..1.0).prop_map(|(p, frac)| {
            let bytes = p.to_bytes();
            let cut = (bytes.len() as f64 * frac) as usize;
            bytes[..cut].to_vec()
        }),
        (arb_packet(), 0.0f64..1.0, any::<u8>()).prop_map(|(p, frac, byte)| {
            let mut bytes = p.to_bytes();
            let pos = ((bytes.len() - 1) as f64 * frac) as usize;
            bytes[pos] = byte;
            bytes
        }),
        proptest::collection::vec(any::<u8>(), 0..200),
    ]
}

/// Asserts that the view parser and the owned parser agree on `bytes`:
/// both reject, or both accept with equal consumed lengths and equal decoded
/// headers.
fn assert_header_parsers_agree(bytes: &[u8]) -> Result<(), TestCaseError> {
    match (NetChainHeader::parse(bytes), NetChainView::parse(bytes)) {
        (Ok((owned, owned_used)), Ok((view, view_used))) => {
            prop_assert_eq!(owned_used, view_used);
            prop_assert_eq!(view.wire_len(), view_used);
            prop_assert_eq!(view.to_owned(), owned);
        }
        (Err(_), Err(_)) => {}
        (owned, view) => prop_assert!(
            false,
            "parsers diverged: owned={owned:?} view={}",
            if view.is_ok() { "Ok" } else { "Err" }
        ),
    }
    Ok(())
}

proptest! {
    /// Well-formed packets: the view decodes every field identically to the
    /// owned parser, via both the accessors and the owned conversion.
    #[test]
    fn view_roundtrips_valid_packets(pkt in arb_packet()) {
        let bytes = pkt.to_bytes();
        let owned = NetChainPacket::from_bytes(&bytes).unwrap();
        let view = PacketView::parse(&bytes).unwrap();
        prop_assert_eq!(view.eth, owned.eth);
        prop_assert_eq!(view.ip, owned.ip);
        prop_assert_eq!(view.udp, owned.udp);
        prop_assert_eq!(view.netchain.op(), owned.netchain.op);
        prop_assert_eq!(view.netchain.status(), owned.netchain.status);
        prop_assert_eq!(view.netchain.session(), owned.netchain.session);
        prop_assert_eq!(view.netchain.seq(), owned.netchain.seq);
        prop_assert_eq!(view.netchain.request_id(), owned.netchain.request_id);
        prop_assert_eq!(view.netchain.key(), owned.netchain.key);
        prop_assert_eq!(
            view.netchain.hops().collect::<Vec<_>>(),
            owned.netchain.chain.hops().to_vec()
        );
        prop_assert_eq!(view.netchain.value(), owned.netchain.value.as_bytes());
        prop_assert_eq!(view.to_owned(), owned.clone());

        // The arena path: writing into a dirty recycled packet gives exactly
        // the same result as a fresh owned conversion, whatever the recycled
        // packet used to hold.
        let mut recycled = NetChainPacket::query(
            Ipv4Addr([9, 9, 9, 9]),
            1,
            Ipv4Addr([8, 8, 8, 8]),
            OpCode::Delete,
            Key::from_name("stale/leftover"),
            Value::filled(0xee, MAX_VALUE_LEN).unwrap(),
            ChainList::new(vec![Ipv4Addr([7, 7, 7, 7]); MAX_CHAIN_LEN]).unwrap(),
            u64::MAX,
        );
        view.to_owned_into(&mut recycled);
        prop_assert_eq!(recycled, owned);
    }

    /// Truncating a valid header anywhere: both parsers reject, identically.
    #[test]
    fn view_and_owned_agree_on_truncations(hdr in arb_header(), frac in 0.0f64..1.0) {
        let payload = {
            let mut buf = vec![0u8; hdr.wire_len()];
            hdr.emit(&mut buf).unwrap();
            buf
        };
        let cut = (payload.len() as f64 * frac) as usize;
        assert_header_parsers_agree(&payload[..cut])?;
    }

    /// Mutating one byte of a valid header: both parsers agree on the
    /// (possibly still valid) result.
    #[test]
    fn view_and_owned_agree_on_single_byte_mutations(
        hdr in arb_header(),
        pos_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut payload = {
            let mut buf = vec![0u8; hdr.wire_len()];
            hdr.emit(&mut buf).unwrap();
            buf
        };
        let pos = ((payload.len() - 1) as f64 * pos_frac) as usize;
        payload[pos] = byte;
        assert_header_parsers_agree(&payload)?;
    }

    /// Arbitrary garbage: never a panic, never a disagreement — for the
    /// header pair and the full-packet pair alike.
    #[test]
    fn view_and_owned_agree_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        assert_header_parsers_agree(&bytes)?;
        let owned = NetChainPacket::from_bytes(&bytes);
        let view = PacketView::parse(&bytes);
        prop_assert_eq!(owned.is_ok(), view.is_ok());
        if let (Ok(owned), Ok(view)) = (owned, view) {
            prop_assert_eq!(view.to_owned(), owned);
        }
    }

    /// The staged validator's branch-free accept-set is *exactly* the scalar
    /// parser's: `validate_frame` accepts a frame iff `PacketView::parse`
    /// does, on every frame provenance.
    #[test]
    fn validate_frame_matches_scalar_parse(frame in arb_frame()) {
        prop_assert_eq!(validate_frame(&frame), PacketView::parse(&frame).is_ok());
    }

    /// The batch parser agrees with the scalar parser lane by lane on mixed
    /// bursts: the same accept/reject verdict per frame, identical SoA field
    /// lanes, and an identical owned packet through `BatchView::view`.
    #[test]
    fn batch_view_matches_scalar_parse_lane_by_lane(
        frames in proptest::collection::vec(arb_frame(), 0..=BATCH_WIDTH),
    ) {
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let bv = BatchView::parse(&refs);
        let batch = bv.batch();
        prop_assert_eq!(batch.len(), frames.len());
        prop_assert_eq!(bv.len(), frames.len());
        let mut invalid = 0usize;
        for (i, frame) in refs.iter().enumerate() {
            match PacketView::parse(frame) {
                Ok(view) => {
                    prop_assert!(batch.is_valid(i), "lane {} wrongly rejected", i);
                    prop_assert_eq!(batch.is_netchain(i), view.is_netchain());
                    prop_assert_eq!(batch.op(i), view.netchain.op().to_u8());
                    prop_assert_eq!(batch.src(i), u32::from_be_bytes(view.ip.src.0));
                    prop_assert_eq!(batch.dst(i), u32::from_be_bytes(view.ip.dst.0));
                    prop_assert_eq!(batch.seq(i), view.netchain.seq());
                    prop_assert_eq!(batch.request_id(i), view.netchain.request_id());
                    prop_assert_eq!(batch.key(i), view.netchain.key());
                    prop_assert_eq!(batch.value_len(i), view.netchain.value().len());
                    prop_assert_eq!(bv.frame(i), *frame);
                    prop_assert_eq!(bv.view(i).to_owned(), view.to_owned());
                }
                Err(_) => {
                    invalid += 1;
                    prop_assert!(!batch.is_valid(i), "lane {} wrongly accepted", i);
                    prop_assert!(!batch.is_netchain(i));
                }
            }
        }
        prop_assert_eq!(batch.invalid_count(), invalid);
    }
}
