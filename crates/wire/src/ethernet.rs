//! Ethernet II framing.
//!
//! NetChain queries are ordinary L2/L3 traffic: the chain hops are reached by
//! rewriting the destination IP and letting the underlay forward the frame
//! (§4.2). The Ethernet layer is therefore minimal — just enough to carry an
//! IPv4 payload across the simulated or emulated fabric.

use crate::error::{WireError, WireResult};
use std::fmt;

/// Length in bytes of an Ethernet II header (dst MAC + src MAC + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Builds a locally-administered, deterministic MAC from a small node id.
    ///
    /// The simulator and the loopback deployment both label devices with a
    /// dense integer id; this gives each a stable, recognisable address
    /// (`02:4e:43:xx:xx:xx`, "NC" in the OUI bytes).
    pub fn from_node_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x4e, 0x43, b[1], b[2], b[3]])
    }

    /// Returns true for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns true for a multicast (group) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType of the encapsulated payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800) — the only payload NetChain uses.
    Ipv4,
    /// ARP (0x0806) — carried for completeness of the L2 model.
    Arp,
    /// Any other ethertype, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric value as carried on the wire.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decodes the 16-bit ethertype field.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Type of the encapsulated payload.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Builds a header carrying IPv4 between two stations.
    pub fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        EthernetHeader {
            dst,
            src,
            ethertype: EtherType::Ipv4,
        }
    }

    /// Serialized length of this header (always [`ETHERNET_HEADER_LEN`]).
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN
    }

    /// Emits the header into `out`, returning the number of bytes written.
    pub fn emit(&self, out: &mut [u8]) -> WireResult<usize> {
        if out.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::BufferTooSmall {
                needed: ETHERNET_HEADER_LEN,
                available: out.len(),
            });
        }
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
        Ok(ETHERNET_HEADER_LEN)
    }

    /// Parses a header from the front of `buf`, returning it plus the number
    /// of bytes consumed.
    pub fn parse(buf: &[u8]) -> WireResult<(Self, usize)> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                available: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            ETHERNET_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_derivation() {
        let mac = MacAddr::from_node_id(7);
        assert_eq!(mac.to_string(), "02:4e:43:00:00:07");
        assert!(!mac.is_broadcast());
        assert!(!mac.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn ethertype_roundtrip() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::Other(0x88cc)] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }

    #[test]
    fn header_roundtrip() {
        let hdr = EthernetHeader::ipv4(MacAddr::from_node_id(1), MacAddr::from_node_id(2));
        let mut buf = [0u8; ETHERNET_HEADER_LEN];
        let written = hdr.emit(&mut buf).unwrap();
        assert_eq!(written, ETHERNET_HEADER_LEN);
        let (parsed, consumed) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(consumed, ETHERNET_HEADER_LEN);
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn parse_rejects_short_buffer() {
        let err = EthernetHeader::parse(&[0u8; 5]).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn emit_rejects_small_buffer() {
        let hdr = EthernetHeader::ipv4(MacAddr::default(), MacAddr::default());
        let mut buf = [0u8; 4];
        assert!(matches!(
            hdr.emit(&mut buf).unwrap_err(),
            WireError::BufferTooSmall { .. }
        ));
    }
}
