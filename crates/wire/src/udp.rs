//! UDP header parsing and emission.
//!
//! NetChain deliberately runs over UDP (§4.3): the data plane of a switch
//! cannot terminate TCP, so the protocol tolerates loss and reordering itself
//! (sequence numbers + client retries). A reserved destination port marks a
//! datagram as a NetChain query.

use crate::error::{WireError, WireResult};

/// Length in bytes of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header. The checksum is optional in IPv4 and NetChain leaves it
/// zero (the switch would otherwise have to recompute it on every value
/// rewrite); integrity of the coordination payload is the application's
/// concern, exactly as in the paper's prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port. [`crate::NETCHAIN_UDP_PORT`] marks NetChain queries.
    pub dst_port: u16,
    /// Length of header plus payload, in bytes.
    pub length: u16,
    /// Checksum (zero = not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Builds a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Serialized length of this header (always [`UDP_HEADER_LEN`]).
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN
    }

    /// Length of the payload implied by the `length` field.
    pub fn payload_len(&self) -> usize {
        usize::from(self.length).saturating_sub(UDP_HEADER_LEN)
    }

    /// Emits the header into `out`, returning the number of bytes written.
    pub fn emit(&self, out: &mut [u8]) -> WireResult<usize> {
        if out.len() < UDP_HEADER_LEN {
            return Err(WireError::BufferTooSmall {
                needed: UDP_HEADER_LEN,
                available: out.len(),
            });
        }
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        Ok(UDP_HEADER_LEN)
    }

    /// Parses a header from the front of `buf`, returning it plus the number
    /// of bytes consumed.
    pub fn parse(buf: &[u8]) -> WireResult<(Self, usize)> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "udp",
                needed: UDP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if usize::from(length) < UDP_HEADER_LEN {
            return Err(WireError::InvalidField {
                layer: "udp",
                field: "length",
                value: u64::from(length),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length,
                checksum: u16::from_be_bytes([buf[6], buf[7]]),
            },
            UDP_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = UdpHeader::new(41000, 50000, 64);
        let mut buf = [0u8; UDP_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        let (parsed, consumed) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(consumed, UDP_HEADER_LEN);
        assert_eq!(parsed, hdr);
        assert_eq!(parsed.payload_len(), 64);
    }

    #[test]
    fn rejects_truncation_and_bad_length() {
        assert!(matches!(
            UdpHeader::parse(&[0u8; 3]).unwrap_err(),
            WireError::Truncated { layer: "udp", .. }
        ));
        let mut buf = [0u8; UDP_HEADER_LEN];
        UdpHeader::new(1, 2, 10).emit(&mut buf).unwrap();
        buf[4] = 0;
        buf[5] = 3; // length 3 < 8
        assert!(matches!(
            UdpHeader::parse(&buf).unwrap_err(),
            WireError::InvalidField {
                field: "length",
                ..
            }
        ));
    }

    #[test]
    fn emit_rejects_small_buffer() {
        let hdr = UdpHeader::new(1, 2, 0);
        let mut buf = [0u8; 7];
        assert!(matches!(
            hdr.emit(&mut buf).unwrap_err(),
            WireError::BufferTooSmall { .. }
        ));
    }
}
