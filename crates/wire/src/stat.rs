//! The payload of an in-band stat probe reply.
//!
//! A [`crate::OpCode::Stat`] query addressed to a switch is answered with a
//! [`crate::OpCode::StatReply`] whose value carries a [`StatSnapshot`]: a
//! compact, fixed-layout encoding of the switch's per-op counters, register
//! occupancy, executor queue depth, and a coarse delta of its service-latency
//! histogram. The encoding is deliberately small enough to fit a normal
//! NetChain value ([`STAT_SNAPSHOT_LEN`] ≤ [`MAX_VALUE_LEN`]), so a probe
//! reply is an ordinary reply packet that rides the same wire, sockets, and
//! rings as data traffic — in-band introspection in the INT spirit, not a
//! side channel.
//!
//! Layout (all multi-byte fields big-endian):
//!
//! ```text
//! offset  size  field
//! 0       1     VERSION        snapshot format version (= STAT_VERSION)
//! 1       8*10  COUNTERS       reads, writes, cas_ops, deletes, replies,
//!                              chain_forwards, stale_drops, misses,
//!                              blocked, packets_seen
//! 81      4     STORE-SIZE     live register slots (keys stored)
//! 85      4     FREE-SLOTS     remaining register capacity
//! 89      2     QUEUE-DEPTH    executor ingress queue occupancy (frames)
//! 91      2     QUEUE-CAP      executor ingress queue capacity (frames)
//! 93      4*8   LAT-BUCKETS    coarse latency histogram delta (saturating)
//! ```

use crate::error::{WireError, WireResult};
use crate::netchain::MAX_VALUE_LEN;

/// Current snapshot format version.
pub const STAT_VERSION: u8 = 1;

/// Number of coarse latency buckets carried in a snapshot. Producers fold
/// their full-resolution histograms down to this many power-of-two-ish
/// ranges; consumers (`ops_top`) render them as sparklines.
pub const STAT_LAT_BUCKETS: usize = 8;

/// Number of `u64` counters carried in a snapshot.
const STAT_COUNTERS: usize = 10;

/// Serialized length of a [`StatSnapshot`] in bytes.
pub const STAT_SNAPSHOT_LEN: usize = 1 + 8 * STAT_COUNTERS + 4 + 4 + 2 + 2 + 4 * STAT_LAT_BUCKETS;

// A snapshot must fit in a reply value, or probes could not ride the wire.
const _: () = assert!(STAT_SNAPSHOT_LEN <= MAX_VALUE_LEN);

/// A compact telemetry snapshot of one switch/shard, carried in the value of
/// a [`crate::OpCode::StatReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatSnapshot {
    /// Read queries served (tail reads + failover-assisted reads).
    pub reads: u64,
    /// Write queries sequenced or propagated.
    pub writes: u64,
    /// Compare-and-swap queries processed.
    pub cas_ops: u64,
    /// Delete queries processed.
    pub deletes: u64,
    /// Replies generated (this switch was the last chain hop).
    pub replies: u64,
    /// Queries forwarded down the chain.
    pub chain_forwards: u64,
    /// Stale writes dropped by the (session, seq) check.
    pub stale_drops: u64,
    /// Queries for keys this switch does not store.
    pub misses: u64,
    /// Queries dropped by a recovery block rule.
    pub blocked: u64,
    /// Total NetChain packets seen by the program.
    pub packets_seen: u64,
    /// Live register slots (keys currently stored).
    pub store_size: u32,
    /// Remaining register capacity in slots.
    pub free_slots: u32,
    /// Executor ingress queue occupancy in frames, saturated to `u16::MAX`.
    /// For a fabric shard this is the SPSC ring depth at the last burst
    /// boundary; for a net worker the receive-slot fill of the last
    /// `recvmmsg`; zero in the simulator (queues are virtual time there).
    pub queue_depth: u16,
    /// Executor ingress queue capacity in frames (zero when not applicable).
    pub queue_cap: u16,
    /// Coarse service-latency histogram delta since the previous probe,
    /// saturating per-bucket at `u32::MAX`. All zeros when the executor does
    /// not time individual operations.
    pub lat_buckets: [u32; STAT_LAT_BUCKETS],
}

impl StatSnapshot {
    /// Serializes the snapshot into its fixed [`STAT_SNAPSHOT_LEN`]-byte
    /// wire form.
    pub fn encode(&self) -> [u8; STAT_SNAPSHOT_LEN] {
        let mut out = [0u8; STAT_SNAPSHOT_LEN];
        out[0] = STAT_VERSION;
        let mut off = 1;
        for c in self.counters() {
            out[off..off + 8].copy_from_slice(&c.to_be_bytes());
            off += 8;
        }
        out[off..off + 4].copy_from_slice(&self.store_size.to_be_bytes());
        off += 4;
        out[off..off + 4].copy_from_slice(&self.free_slots.to_be_bytes());
        off += 4;
        out[off..off + 2].copy_from_slice(&self.queue_depth.to_be_bytes());
        off += 2;
        out[off..off + 2].copy_from_slice(&self.queue_cap.to_be_bytes());
        off += 2;
        for b in self.lat_buckets {
            out[off..off + 4].copy_from_slice(&b.to_be_bytes());
            off += 4;
        }
        debug_assert_eq!(off, STAT_SNAPSHOT_LEN);
        out
    }

    /// Parses a snapshot from a reply value. Rejects short buffers and
    /// unknown versions; ignores trailing bytes (future versions may append).
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        if buf.len() < STAT_SNAPSHOT_LEN {
            return Err(WireError::Truncated {
                layer: "stat",
                needed: STAT_SNAPSHOT_LEN,
                available: buf.len(),
            });
        }
        if buf[0] != STAT_VERSION {
            return Err(WireError::InvalidField {
                layer: "stat",
                field: "version",
                value: u64::from(buf[0]),
            });
        }
        let mut off = 1;
        let mut counters = [0u64; STAT_COUNTERS];
        for c in &mut counters {
            *c = u64::from_be_bytes(buf[off..off + 8].try_into().unwrap());
            off += 8;
        }
        let store_size = u32::from_be_bytes(buf[off..off + 4].try_into().unwrap());
        off += 4;
        let free_slots = u32::from_be_bytes(buf[off..off + 4].try_into().unwrap());
        off += 4;
        let queue_depth = u16::from_be_bytes(buf[off..off + 2].try_into().unwrap());
        off += 2;
        let queue_cap = u16::from_be_bytes(buf[off..off + 2].try_into().unwrap());
        off += 2;
        let mut lat_buckets = [0u32; STAT_LAT_BUCKETS];
        for b in &mut lat_buckets {
            *b = u32::from_be_bytes(buf[off..off + 4].try_into().unwrap());
            off += 4;
        }
        let [reads, writes, cas_ops, deletes, replies, chain_forwards, stale_drops, misses, blocked, packets_seen] =
            counters;
        Ok(StatSnapshot {
            reads,
            writes,
            cas_ops,
            deletes,
            replies,
            chain_forwards,
            stale_drops,
            misses,
            blocked,
            packets_seen,
            store_size,
            free_slots,
            queue_depth,
            queue_cap,
            lat_buckets,
        })
    }

    /// Total queries processed, the snapshot's natural "ops" gauge.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes + self.cas_ops + self.deletes
    }

    /// The counters in wire order.
    fn counters(&self) -> [u64; STAT_COUNTERS] {
        [
            self.reads,
            self.writes,
            self.cas_ops,
            self.deletes,
            self.replies,
            self.chain_forwards,
            self.stale_drops,
            self.misses,
            self.blocked,
            self.packets_seen,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatSnapshot {
        StatSnapshot {
            reads: 1,
            writes: 2,
            cas_ops: 3,
            deletes: 4,
            replies: 5,
            chain_forwards: 6,
            stale_drops: 7,
            misses: 8,
            blocked: 9,
            packets_seen: u64::MAX,
            store_size: 100,
            free_slots: 28,
            queue_depth: 17,
            queue_cap: 256,
            lat_buckets: [0, 1, 2, u32::MAX, 4, 5, 6, 7],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(bytes.len(), STAT_SNAPSHOT_LEN);
        assert_eq!(StatSnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let snap = sample();
        let mut bytes = snap.encode().to_vec();
        bytes.push(0xff);
        assert_eq!(StatSnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_version() {
        let snap = sample();
        let bytes = snap.encode();
        assert!(matches!(
            StatSnapshot::decode(&bytes[..STAT_SNAPSHOT_LEN - 1]).unwrap_err(),
            WireError::Truncated { layer: "stat", .. }
        ));
        let mut bad = bytes;
        bad[0] = 99;
        assert!(matches!(
            StatSnapshot::decode(&bad).unwrap_err(),
            WireError::InvalidField {
                field: "version",
                ..
            }
        ));
    }

    #[test]
    fn ops_sums_query_counters() {
        assert_eq!(sample().ops(), 1 + 2 + 3 + 4);
    }
}
