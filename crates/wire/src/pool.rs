//! Buffer-pool parse entry points: the frame-size bound every I/O buffer is
//! sized from, and a recycling pool of owned packets for the parse paths
//! that must materialise one.
//!
//! Both existed in spirit before — `MAX_FRAME_LEN` lived in the fabric's
//! frame module and the recycling idiom was open-coded inside the shard —
//! but the socket dataplane needs them too, and they are properties of the
//! *wire format*, not of any one transport. Hoisting them here gives every
//! packet mover (fabric rings, UDP sockets, the simulator's links) the same
//! authoritative bound and the same allocation-free parse path.

use crate::ethernet::ETHERNET_HEADER_LEN;
use crate::ipv4::IPV4_HEADER_LEN;
use crate::netchain::{MAX_CHAIN_LEN, MAX_VALUE_LEN, NETCHAIN_FIXED_HEADER_LEN};
use crate::packet::NetChainPacket;
use crate::udp::UDP_HEADER_LEN;
use crate::view::PacketView;

/// Maximum serialized size of a NetChain packet: Ethernet + IPv4 + UDP + the
/// fixed header + a full 16-hop chain + a maximum 128-byte value (273 bytes).
/// Any receive buffer of this size cannot truncate a legal frame; anything
/// longer on the wire is by definition not a NetChain packet.
pub const MAX_FRAME_LEN: usize = ETHERNET_HEADER_LEN
    + IPV4_HEADER_LEN
    + UDP_HEADER_LEN
    + NETCHAIN_FIXED_HEADER_LEN
    + MAX_CHAIN_LEN * 4
    + MAX_VALUE_LEN;

/// A bounded pool of retired [`NetChainPacket`]s whose heap allocations (the
/// chain list and value vectors) are refilled in place by the next parse.
///
/// [`PacketPool::take`] converts a [`PacketView`] into an owned packet,
/// reusing a retired packet's buffers when one is available
/// ([`PacketView::to_owned_into`]); [`PacketPool::put`] retires a packet back
/// into the pool, silently dropping it once the pool is full. In steady state
/// a parse-execute-retire loop allocates nothing — not even for writes.
#[derive(Debug)]
pub struct PacketPool {
    pool: Vec<NetChainPacket>,
    max: usize,
}

impl PacketPool {
    /// Default retention bound: a burst in flight needs at most the burst
    /// width of packets plus the replies being encoded, so this is generous.
    pub const DEFAULT_MAX: usize = 256;

    /// A pool retaining up to [`Self::DEFAULT_MAX`] retired packets.
    pub fn new() -> Self {
        Self::with_max(Self::DEFAULT_MAX)
    }

    /// A pool retaining up to `max` retired packets.
    pub fn with_max(max: usize) -> Self {
        PacketPool {
            pool: Vec::new(),
            max,
        }
    }

    /// Materialises `view` as an owned packet, recycling a retired packet's
    /// allocations when one is pooled.
    pub fn take(&mut self, view: &PacketView<'_>) -> NetChainPacket {
        match self.pool.pop() {
            Some(mut recycled) => {
                view.to_owned_into(&mut recycled);
                recycled
            }
            None => view.to_owned(),
        }
    }

    /// Retires `pkt` for reuse; dropped if the pool is already full.
    pub fn put(&mut self, pkt: NetChainPacket) {
        if self.pool.len() < self.max {
            self.pool.push(pkt);
        }
    }

    /// Retired packets currently held.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if no retired packets are held.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr;
    use crate::netchain::{ChainList, Key, OpCode, Value};

    fn sample(value_len: usize, request_id: u64) -> NetChainPacket {
        NetChainPacket::query(
            Ipv4Addr::for_host(1),
            40_000,
            Ipv4Addr::for_switch(0),
            OpCode::Write,
            Key::from_u64(request_id),
            Value::filled(0x5a, value_len).unwrap(),
            ChainList::new(vec![Ipv4Addr::for_switch(1)]).unwrap(),
            request_id,
        )
    }

    #[test]
    fn max_frame_len_is_the_largest_wire_size() {
        let pkt = NetChainPacket::query(
            Ipv4Addr::for_host(1),
            40_000,
            Ipv4Addr::for_switch(0),
            OpCode::Write,
            Key::from_u64(9),
            Value::filled(0xaa, MAX_VALUE_LEN).unwrap(),
            ChainList::new(
                (0..MAX_CHAIN_LEN as u32)
                    .map(Ipv4Addr::for_switch)
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            1,
        );
        assert_eq!(pkt.wire_size(), MAX_FRAME_LEN);
    }

    #[test]
    fn take_recycles_and_matches_to_owned() {
        let mut pool = PacketPool::with_max(4);
        let a = sample(64, 1).to_bytes();
        let b = sample(8, 2).to_bytes();
        let view_a = PacketView::parse(&a).unwrap();
        let view_b = PacketView::parse(&b).unwrap();
        let pkt_a = pool.take(&view_a);
        assert_eq!(pkt_a, view_a.to_owned());
        pool.put(pkt_a);
        assert_eq!(pool.len(), 1);
        // The recycled buffers must not leak the previous packet's contents.
        let pkt_b = pool.take(&view_b);
        assert!(pool.is_empty());
        assert_eq!(pkt_b, view_b.to_owned());
    }

    #[test]
    fn put_beyond_max_drops() {
        let mut pool = PacketPool::with_max(2);
        for i in 0..5 {
            pool.put(sample(0, i));
        }
        assert_eq!(pool.len(), 2);
    }
}
