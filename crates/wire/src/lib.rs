//! # netchain-wire
//!
//! Byte-exact packet formats for the NetChain in-network coordination service
//! (NSDI 2018). This crate is a *sans-IO* protocol layer: it only knows how to
//! parse and emit bytes, never how to move them. The discrete-event simulator,
//! the real UDP loopback deployment, and the switch data-plane model all share
//! these definitions, so the packet a simulated switch rewrites is bit-for-bit
//! the packet a real socket would carry.
//!
//! The layout follows Figure 2(b) of the paper:
//!
//! ```text
//! +----------+----------+---------+-------------------------------------------+
//! | Ethernet | IPv4     | UDP     | NetChain header                           |
//! +----------+----------+---------+-------------------------------------------+
//!                                   OP | SESSION | SEQ | KEY | SC | chain IPs |
//!                                   VALUE-LEN | VALUE                         |
//! ```
//!
//! * `OP` — read / write / delete / insert / compare-and-swap, plus replies.
//! * `SESSION`/`SEQ` — the (session number, sequence number) tuple used to
//!   serialize out-of-order writes (§4.3) and head replacement (§5.2).
//! * `KEY` — fixed 16-byte key, as in the Tofino prototype (§7).
//! * `SC` + chain IPs — the segment-routing-like chain IP list (§4.2). `SC`
//!   is the number of *remaining* chain hops.
//! * `VALUE` — bounded, variable-length value (128 bytes at line rate, §6).
//!
//! NetChain queries are carried over UDP using a reserved destination port
//! ([`NETCHAIN_UDP_PORT`]); a switch that sees this port and whose own IP is
//! the packet's destination invokes the NetChain processing logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ethernet;
pub mod ipv4;
pub mod netchain;
pub mod packet;
pub mod pool;
pub mod stat;
pub mod udp;
pub mod view;

pub use error::{WireError, WireResult};
pub use ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
pub use ipv4::{Ipv4Addr, Ipv4Header, Protocol, IPV4_HEADER_LEN};
pub use netchain::{
    ChainList, Key, NetChainHeader, OpCode, QueryStatus, Value, FNV64_OFFSET, FNV64_PRIME, KEY_LEN,
    MAX_CHAIN_LEN, MAX_VALUE_LEN, NETCHAIN_FIXED_HEADER_LEN, NETCHAIN_UDP_PORT,
};
pub use packet::NetChainPacket;
pub use pool::{PacketPool, MAX_FRAME_LEN};
pub use stat::{StatSnapshot, STAT_LAT_BUCKETS, STAT_SNAPSHOT_LEN, STAT_VERSION};
pub use udp::{UdpHeader, UDP_HEADER_LEN};
pub use view::{
    validate_batch, validate_frame, BatchEncoder, BatchView, NetChainView, PacketView, ParsedBatch,
    BATCH_WIDTH, MIN_FRAME_LEN,
};
