//! The NetChain query header (Figure 2(b)).
//!
//! A NetChain query is a UDP datagram whose destination port is
//! [`NETCHAIN_UDP_PORT`]. The payload begins with a fixed-size header carrying
//! the operation, the (session, sequence) ordering tuple, the 16-byte key and
//! the remaining-chain hop count, followed by the variable-length chain IP
//! list and value.
//!
//! Layout of the payload (all multi-byte fields big-endian):
//!
//! ```text
//! offset  size  field
//! 0       1     OP          operation / reply code
//! 1       1     STATUS      result status (meaningful in replies)
//! 2       2     SESSION     session number (head replacement ordering, §5.2)
//! 4       8     SEQ         per-key sequence number assigned by the head
//! 12      8     REQUEST-ID  client-chosen id used to match replies
//! 20      16    KEY         fixed-length key
//! 36      1     SC          number of remaining chain hops in the IP list
//! 37      2     VALUE-LEN   length of the value in bytes
//! 39      4*SC  CHAIN       IPv4 addresses of the remaining chain hops
//! ...     V     VALUE       value bytes
//! ```

use crate::error::{WireError, WireResult};
use crate::ipv4::Ipv4Addr;
use std::fmt;

/// Reserved UDP destination port that invokes NetChain processing in a switch.
pub const NETCHAIN_UDP_PORT: u16 = 50000;

/// Length of a NetChain key in bytes (the Tofino prototype uses 16-byte keys).
pub const KEY_LEN: usize = 16;

/// Maximum value length processed at line rate: 8 pipeline stages × 16 bytes
/// per stage (§6 / §7). Larger values require recirculation, which the switch
/// model charges for separately; the wire format itself caps values here.
pub const MAX_VALUE_LEN: usize = 128;

/// Maximum number of chain hops carried in a query. Chains have `f + 1`
/// switches; tolerating up to 15 simultaneous switch failures per key is far
/// beyond any deployment in the paper, so 16 hops is a generous bound that
/// still keeps headers small.
pub const MAX_CHAIN_LEN: usize = 16;

/// Length of the fixed portion of the NetChain header.
pub const NETCHAIN_FIXED_HEADER_LEN: usize = 39;

/// A fixed-length 16-byte key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Key(pub [u8; KEY_LEN]);

impl Key {
    /// Builds a key directly from 16 bytes.
    pub const fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Key(bytes)
    }

    /// Builds a key from a human-readable name.
    ///
    /// Names up to 16 bytes are used verbatim (zero padded); longer names are
    /// mixed down with an FNV-1a-style hash so that distinct long names remain
    /// overwhelmingly likely to map to distinct keys. This mirrors how the
    /// paper's client agent exposes a small fixed key to applications that
    /// think in terms of paths like `/locks/order-17`.
    pub fn from_name(name: &str) -> Self {
        let bytes = name.as_bytes();
        let mut out = [0u8; KEY_LEN];
        if bytes.len() <= KEY_LEN {
            out[..bytes.len()].copy_from_slice(bytes);
        } else {
            // Two independent 64-bit FNV-1a passes (forward and reversed input)
            // fill the 16 bytes.
            out[..8].copy_from_slice(&fnv1a64(bytes.iter().copied()).to_be_bytes());
            out[8..].copy_from_slice(&fnv1a64(bytes.iter().rev().copied()).to_be_bytes());
        }
        Key(out)
    }

    /// Builds a key from a `u64`, useful for synthetic workloads.
    pub fn from_u64(v: u64) -> Self {
        let mut out = [0u8; KEY_LEN];
        out[8..].copy_from_slice(&v.to_be_bytes());
        Key(out)
    }

    /// Interprets the low 8 bytes as a `u64` (inverse of [`Key::from_u64`]).
    pub fn low_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[8..]);
        u64::from_be_bytes(b)
    }

    /// A stable 64-bit hash of the key, used for consistent hashing.
    pub fn stable_hash(&self) -> u64 {
        fnv1a64(self.0.iter().copied())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// FNV-1a 64-bit offset basis. Public so batched implementations of
/// [`Key::stable_hash`] (lane-parallel hashing in the staged fabric path)
/// can share the exact constants instead of re-deriving them.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime (see [`FNV64_OFFSET`]).
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = FNV64_OFFSET;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// A bounded, variable-length value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(Vec<u8>);

impl Value {
    /// An empty value.
    pub fn empty() -> Self {
        Value(Vec::new())
    }

    /// Builds a value, rejecting anything longer than [`MAX_VALUE_LEN`].
    pub fn new(bytes: impl Into<Vec<u8>>) -> WireResult<Self> {
        let bytes = bytes.into();
        if bytes.len() > MAX_VALUE_LEN {
            return Err(WireError::ValueTooLong(bytes.len()));
        }
        Ok(Value(bytes))
    }

    /// Builds a value of `len` copies of `byte` (for synthetic workloads).
    pub fn filled(byte: u8, len: usize) -> WireResult<Self> {
        Self::new(vec![byte; len])
    }

    /// Builds a value holding a big-endian `u64` (used by locks and counters).
    pub fn from_u64(v: u64) -> Self {
        Value(v.to_be_bytes().to_vec())
    }

    /// Interprets the value as a big-endian `u64` if it is exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        if self.0.len() == 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.0);
            Some(u64::from_be_bytes(b))
        } else {
            None
        }
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Replaces the value's bytes in place, keeping the existing allocation
    /// (the hot-path alternative to building a fresh [`Value`] per packet).
    pub fn set_bytes(&mut self, bytes: &[u8]) -> WireResult<()> {
        if bytes.len() > MAX_VALUE_LEN {
            return Err(WireError::ValueTooLong(bytes.len()));
        }
        self.0.clear();
        self.0.extend_from_slice(bytes);
        Ok(())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// NetChain operations and replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Read the value of a key (served by the chain tail).
    Read,
    /// Write the value of an existing key (head assigns the sequence number).
    Write,
    /// Insert a new key-value item (involves the control plane, §4.1).
    Insert,
    /// Delete (invalidate) a key-value item.
    Delete,
    /// Compare-and-swap: write only if the stored value equals the expected
    /// value carried in the query. Used to build exclusive locks (§8.5).
    Cas,
    /// In-band stat probe: the addressed switch answers with a compact
    /// telemetry snapshot ([`crate::stat::StatSnapshot`]) in the reply value,
    /// without pausing query processing. Probes never touch the key-value
    /// registers and never traverse the chain.
    Stat,
    /// Reply to a [`OpCode::Read`].
    ReadReply,
    /// Reply to a [`OpCode::Write`].
    WriteReply,
    /// Reply to an [`OpCode::Insert`].
    InsertReply,
    /// Reply to a [`OpCode::Delete`].
    DeleteReply,
    /// Reply to a [`OpCode::Cas`].
    CasReply,
    /// Reply to a [`OpCode::Stat`] probe, carrying the encoded snapshot.
    StatReply,
}

impl OpCode {
    /// Numeric value as carried on the wire.
    pub fn to_u8(self) -> u8 {
        match self {
            OpCode::Read => 1,
            OpCode::Write => 2,
            OpCode::Insert => 3,
            OpCode::Delete => 4,
            OpCode::Cas => 5,
            OpCode::Stat => 6,
            OpCode::ReadReply => 17,
            OpCode::WriteReply => 18,
            OpCode::InsertReply => 19,
            OpCode::DeleteReply => 20,
            OpCode::CasReply => 21,
            OpCode::StatReply => 22,
        }
    }

    /// Decodes the opcode byte.
    pub fn from_u8(v: u8) -> WireResult<Self> {
        Ok(match v {
            1 => OpCode::Read,
            2 => OpCode::Write,
            3 => OpCode::Insert,
            4 => OpCode::Delete,
            5 => OpCode::Cas,
            6 => OpCode::Stat,
            17 => OpCode::ReadReply,
            18 => OpCode::WriteReply,
            19 => OpCode::InsertReply,
            20 => OpCode::DeleteReply,
            21 => OpCode::CasReply,
            22 => OpCode::StatReply,
            other => return Err(WireError::UnknownOpCode(other)),
        })
    }

    /// True for query opcodes (client → chain).
    pub fn is_query(self) -> bool {
        !self.is_reply()
    }

    /// True for reply opcodes (chain tail → client).
    pub fn is_reply(self) -> bool {
        matches!(
            self,
            OpCode::ReadReply
                | OpCode::WriteReply
                | OpCode::InsertReply
                | OpCode::DeleteReply
                | OpCode::CasReply
                | OpCode::StatReply
        )
    }

    /// True for operations that mutate switch state and therefore traverse
    /// the whole chain (write, insert, delete, CAS).
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            OpCode::Write | OpCode::Insert | OpCode::Delete | OpCode::Cas
        )
    }

    /// The reply opcode corresponding to a query opcode. Replies map to
    /// themselves so the conversion is idempotent.
    pub fn reply(self) -> Self {
        match self {
            OpCode::Read => OpCode::ReadReply,
            OpCode::Write => OpCode::WriteReply,
            OpCode::Insert => OpCode::InsertReply,
            OpCode::Delete => OpCode::DeleteReply,
            OpCode::Cas => OpCode::CasReply,
            OpCode::Stat => OpCode::StatReply,
            reply => reply,
        }
    }
}

/// Result status carried in replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryStatus {
    /// The operation was applied (or the read found the key).
    Ok,
    /// The key does not exist (read/write/delete of an absent key).
    NotFound,
    /// A CAS found a stored value different from the expected value.
    CasFailed,
    /// The switch declined the query (e.g. a stale write dropped by the
    /// sequence check, surfaced only in diagnostics — the data plane normally
    /// just drops such packets, Algorithm 1 line 13).
    Declined,
    /// The chain is being reconfigured and the query should be retried.
    Retry,
}

impl QueryStatus {
    /// Numeric value as carried on the wire.
    pub fn to_u8(self) -> u8 {
        match self {
            QueryStatus::Ok => 0,
            QueryStatus::NotFound => 1,
            QueryStatus::CasFailed => 2,
            QueryStatus::Declined => 3,
            QueryStatus::Retry => 4,
        }
    }

    /// Decodes the status byte.
    pub fn from_u8(v: u8) -> WireResult<Self> {
        Ok(match v {
            0 => QueryStatus::Ok,
            1 => QueryStatus::NotFound,
            2 => QueryStatus::CasFailed,
            3 => QueryStatus::Declined,
            4 => QueryStatus::Retry,
            other => return Err(WireError::UnknownStatus(other)),
        })
    }
}

/// The ordered list of remaining chain hops carried in a query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChainList(Vec<Ipv4Addr>);

impl ChainList {
    /// An empty chain list (the query is at its last hop).
    pub fn empty() -> Self {
        ChainList(Vec::new())
    }

    /// Builds a chain list, rejecting more than [`MAX_CHAIN_LEN`] hops.
    pub fn new(hops: impl Into<Vec<Ipv4Addr>>) -> WireResult<Self> {
        let hops = hops.into();
        if hops.len() > MAX_CHAIN_LEN {
            return Err(WireError::ChainTooLong(hops.len()));
        }
        Ok(ChainList(hops))
    }

    /// Number of remaining hops (the `SC` field).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no hops remain.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The next hop, if any, without removing it.
    pub fn peek(&self) -> Option<Ipv4Addr> {
        self.0.first().copied()
    }

    /// Removes and returns the next hop.
    pub fn pop_front(&mut self) -> Option<Ipv4Addr> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.remove(0))
        }
    }

    /// All remaining hops in order.
    pub fn hops(&self) -> &[Ipv4Addr] {
        &self.0
    }

    /// Replaces the hop list in place, keeping the existing allocation (the
    /// hot-path alternative to building a fresh [`ChainList`] per packet).
    /// `len` must already be validated against [`MAX_CHAIN_LEN`].
    pub fn refill(&mut self, hops: impl IntoIterator<Item = Ipv4Addr>) -> WireResult<()> {
        self.0.clear();
        self.0.extend(hops);
        if self.0.len() > MAX_CHAIN_LEN {
            let len = self.0.len();
            self.0.clear();
            return Err(WireError::ChainTooLong(len));
        }
        Ok(())
    }
}

/// The parsed NetChain query/reply header plus payload fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetChainHeader {
    /// Operation or reply code.
    pub op: OpCode,
    /// Result status (meaningful in replies; `Ok` in queries).
    pub status: QueryStatus,
    /// Session number, bumped by the controller whenever a chain head is
    /// replaced. Ordering of writes is by `(session, seq)` lexicographically.
    pub session: u16,
    /// Per-key sequence number. Zero in client-issued writes; assigned by the
    /// chain head (Algorithm 1 lines 6–9).
    pub seq: u64,
    /// Client-chosen identifier echoed in the reply, used by the client agent
    /// to match responses to outstanding requests and to deduplicate retries.
    pub request_id: u64,
    /// The key.
    pub key: Key,
    /// Remaining chain hops after the current destination.
    pub chain: ChainList,
    /// The value (empty for reads and deletes).
    pub value: Value,
}

impl NetChainHeader {
    /// Builds a client-issued query with no sequence number assigned yet.
    pub fn query(op: OpCode, key: Key, value: Value, chain: ChainList, request_id: u64) -> Self {
        NetChainHeader {
            op,
            status: QueryStatus::Ok,
            session: 0,
            seq: 0,
            request_id,
            key,
            chain,
            value,
        }
    }

    /// Serialized length of this header in bytes.
    pub fn wire_len(&self) -> usize {
        NETCHAIN_FIXED_HEADER_LEN + self.chain.len() * 4 + self.value.len()
    }

    /// Emits the header into `out`, returning the number of bytes written.
    pub fn emit(&self, out: &mut [u8]) -> WireResult<usize> {
        let needed = self.wire_len();
        if out.len() < needed {
            return Err(WireError::BufferTooSmall {
                needed,
                available: out.len(),
            });
        }
        out[0] = self.op.to_u8();
        out[1] = self.status.to_u8();
        out[2..4].copy_from_slice(&self.session.to_be_bytes());
        out[4..12].copy_from_slice(&self.seq.to_be_bytes());
        out[12..20].copy_from_slice(&self.request_id.to_be_bytes());
        out[20..36].copy_from_slice(&self.key.0);
        out[36] = self.chain.len() as u8;
        out[37..39].copy_from_slice(&(self.value.len() as u16).to_be_bytes());
        let mut off = NETCHAIN_FIXED_HEADER_LEN;
        for hop in self.chain.hops() {
            out[off..off + 4].copy_from_slice(&hop.0);
            off += 4;
        }
        out[off..off + self.value.len()].copy_from_slice(self.value.as_bytes());
        off += self.value.len();
        Ok(off)
    }

    /// Parses a header from the front of `buf`, returning it plus the number
    /// of bytes consumed.
    pub fn parse(buf: &[u8]) -> WireResult<(Self, usize)> {
        if buf.len() < NETCHAIN_FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "netchain",
                needed: NETCHAIN_FIXED_HEADER_LEN,
                available: buf.len(),
            });
        }
        let op = OpCode::from_u8(buf[0])?;
        let status = QueryStatus::from_u8(buf[1])?;
        let session = u16::from_be_bytes([buf[2], buf[3]]);
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&buf[4..12]);
        let seq = u64::from_be_bytes(seq_bytes);
        let mut rid_bytes = [0u8; 8];
        rid_bytes.copy_from_slice(&buf[12..20]);
        let request_id = u64::from_be_bytes(rid_bytes);
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&buf[20..36]);
        let sc = usize::from(buf[36]);
        if sc > MAX_CHAIN_LEN {
            return Err(WireError::ChainTooLong(sc));
        }
        let value_len = usize::from(u16::from_be_bytes([buf[37], buf[38]]));
        if value_len > MAX_VALUE_LEN {
            return Err(WireError::ValueTooLong(value_len));
        }
        let needed = NETCHAIN_FIXED_HEADER_LEN + sc * 4 + value_len;
        if buf.len() < needed {
            return Err(WireError::Truncated {
                layer: "netchain",
                needed,
                available: buf.len(),
            });
        }
        let mut off = NETCHAIN_FIXED_HEADER_LEN;
        let mut hops = Vec::with_capacity(sc);
        for _ in 0..sc {
            hops.push(Ipv4Addr([
                buf[off],
                buf[off + 1],
                buf[off + 2],
                buf[off + 3],
            ]));
            off += 4;
        }
        let value = Value::new(buf[off..off + value_len].to_vec())?;
        off += value_len;
        Ok((
            NetChainHeader {
                op,
                status,
                session,
                seq,
                request_id,
                key: Key(key),
                chain: ChainList(hops),
                value,
            },
            off,
        ))
    }

    /// Turns this query in place into the corresponding reply with the given
    /// status and value, clearing the chain list. The sequence and session
    /// numbers are preserved so a client can observe version monotonicity.
    pub fn into_reply(mut self, status: QueryStatus, value: Value) -> Self {
        self.op = self.op.reply();
        self.status = status;
        self.value = value;
        self.chain = ChainList::empty();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> NetChainHeader {
        NetChainHeader {
            op: OpCode::Write,
            status: QueryStatus::Ok,
            session: 3,
            seq: 42,
            request_id: 0xdead_beef,
            key: Key::from_name("foo"),
            chain: ChainList::new(vec![Ipv4Addr::for_switch(1), Ipv4Addr::for_switch(2)]).unwrap(),
            value: Value::new(b"hello".to_vec()).unwrap(),
        }
    }

    #[test]
    fn key_from_name_short_and_long() {
        let short = Key::from_name("foo");
        assert_eq!(&short.0[..3], b"foo");
        assert_eq!(short.0[3..], [0u8; 13]);
        let long_a = Key::from_name("a-rather-long-key-name-aaaa");
        let long_b = Key::from_name("a-rather-long-key-name-aaab");
        assert_ne!(long_a, long_b);
    }

    #[test]
    fn key_u64_roundtrip_and_hash_stability() {
        let k = Key::from_u64(123456);
        assert_eq!(k.low_u64(), 123456);
        assert_eq!(k.stable_hash(), Key::from_u64(123456).stable_hash());
        assert_ne!(k.stable_hash(), Key::from_u64(123457).stable_hash());
    }

    #[test]
    fn value_limits_and_u64() {
        assert!(Value::new(vec![0u8; MAX_VALUE_LEN]).is_ok());
        assert!(matches!(
            Value::new(vec![0u8; MAX_VALUE_LEN + 1]).unwrap_err(),
            WireError::ValueTooLong(_)
        ));
        let v = Value::from_u64(99);
        assert_eq!(v.as_u64(), Some(99));
        assert_eq!(Value::empty().as_u64(), None);
    }

    #[test]
    fn opcode_roundtrip_and_classification() {
        for op in [
            OpCode::Read,
            OpCode::Write,
            OpCode::Insert,
            OpCode::Delete,
            OpCode::Cas,
            OpCode::Stat,
            OpCode::ReadReply,
            OpCode::WriteReply,
            OpCode::InsertReply,
            OpCode::DeleteReply,
            OpCode::CasReply,
            OpCode::StatReply,
        ] {
            assert_eq!(OpCode::from_u8(op.to_u8()).unwrap(), op);
            assert_eq!(op.is_query(), !op.is_reply());
            assert!(op.reply().is_reply());
        }
        assert!(OpCode::Write.is_mutation());
        assert!(OpCode::Cas.is_mutation());
        assert!(!OpCode::Read.is_mutation());
        assert!(!OpCode::Stat.is_mutation());
        assert_eq!(OpCode::Stat.reply(), OpCode::StatReply);
        assert!(matches!(
            OpCode::from_u8(0).unwrap_err(),
            WireError::UnknownOpCode(0)
        ));
    }

    #[test]
    fn status_roundtrip() {
        for s in [
            QueryStatus::Ok,
            QueryStatus::NotFound,
            QueryStatus::CasFailed,
            QueryStatus::Declined,
            QueryStatus::Retry,
        ] {
            assert_eq!(QueryStatus::from_u8(s.to_u8()).unwrap(), s);
        }
        assert!(QueryStatus::from_u8(77).is_err());
    }

    #[test]
    fn chain_list_operations() {
        let mut chain =
            ChainList::new(vec![Ipv4Addr::for_switch(1), Ipv4Addr::for_switch(2)]).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.peek(), Some(Ipv4Addr::for_switch(1)));
        assert_eq!(chain.pop_front(), Some(Ipv4Addr::for_switch(1)));
        assert_eq!(chain.pop_front(), Some(Ipv4Addr::for_switch(2)));
        assert_eq!(chain.pop_front(), None);
        assert!(ChainList::new(vec![Ipv4Addr::UNSPECIFIED; MAX_CHAIN_LEN + 1]).is_err());
    }

    #[test]
    fn header_roundtrip() {
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.wire_len()];
        let written = hdr.emit(&mut buf).unwrap();
        assert_eq!(written, hdr.wire_len());
        let (parsed, consumed) = NetChainHeader::parse(&buf).unwrap();
        assert_eq!(consumed, written);
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn header_rejects_truncation() {
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.wire_len()];
        hdr.emit(&mut buf).unwrap();
        assert!(NetChainHeader::parse(&buf[..10]).is_err());
        assert!(NetChainHeader::parse(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn reply_conversion_clears_chain_and_sets_status() {
        let hdr = sample_header();
        let reply = hdr.into_reply(QueryStatus::Ok, Value::from_u64(7));
        assert_eq!(reply.op, OpCode::WriteReply);
        assert!(reply.chain.is_empty());
        assert_eq!(reply.value.as_u64(), Some(7));
        assert_eq!(reply.seq, 42);
    }

    #[test]
    fn display_key_is_hex() {
        let k = Key::from_bytes([0xab; 16]);
        assert_eq!(k.to_string(), "ab".repeat(16));
    }
}
