//! The full NetChain packet: Ethernet + IPv4 + UDP + NetChain header.
//!
//! [`NetChainPacket`] is the unit both the simulator and the UDP loopback
//! deployment move around. It owns the structured headers and knows how to
//! serialize itself to the exact bytes that would appear on a wire, and how to
//! perform the two header rewrites the data plane needs:
//!
//! * *advance*: copy the next chain hop into the destination IP and pop it
//!   from the chain list (Figure 4), and
//! * *reply*: flip the packet into a reply addressed back at the client.

use crate::error::WireResult;
use crate::ethernet::{EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{Ipv4Addr, Ipv4Header, IPV4_HEADER_LEN};
use crate::netchain::{
    ChainList, Key, NetChainHeader, OpCode, QueryStatus, Value, NETCHAIN_UDP_PORT,
};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};

/// A complete NetChain query or reply packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetChainPacket {
    /// L2 header. The simulator rewrites MACs hop by hop like a real L3
    /// network would; the values never affect protocol behaviour.
    pub eth: EthernetHeader,
    /// L3 header; `ip.dst` names the chain hop currently responsible for the
    /// query (or the client, for replies).
    pub ip: Ipv4Header,
    /// L4 header; `udp.dst_port == NETCHAIN_UDP_PORT` marks NetChain queries.
    pub udp: UdpHeader,
    /// The NetChain header proper.
    pub netchain: NetChainHeader,
}

impl NetChainPacket {
    /// Builds a client query addressed at `first_hop`, carrying the remaining
    /// chain hops in the header's chain list.
    ///
    /// For writes the chain list is the chain order from the node *after* the
    /// head to the tail; for reads it is the reverse order excluding the tail
    /// (used only for failure handling, §4.2).
    #[allow(clippy::too_many_arguments)]
    pub fn query(
        client_ip: Ipv4Addr,
        client_port: u16,
        first_hop: Ipv4Addr,
        op: OpCode,
        key: Key,
        value: Value,
        remaining_chain: ChainList,
        request_id: u64,
    ) -> Self {
        let netchain = NetChainHeader::query(op, key, value, remaining_chain, request_id);
        let nc_len = netchain.wire_len();
        let udp = UdpHeader::new(client_port, NETCHAIN_UDP_PORT, nc_len);
        let ip = Ipv4Header::udp(client_ip, first_hop, UDP_HEADER_LEN + nc_len);
        let eth = EthernetHeader::ipv4(MacAddr::default(), MacAddr::default());
        NetChainPacket {
            eth,
            ip,
            udp,
            netchain,
        }
    }

    /// True if this packet is a NetChain query or reply (reserved UDP port in
    /// either direction).
    pub fn is_netchain(&self) -> bool {
        self.udp.dst_port == NETCHAIN_UDP_PORT || self.udp.src_port == NETCHAIN_UDP_PORT
    }

    /// The client that originated the query (source IP of a query packet).
    pub fn client_ip(&self) -> Ipv4Addr {
        self.ip.src
    }

    /// Total serialized size in bytes, Ethernet through value. This is the
    /// size the simulator charges against link bandwidth.
    pub fn wire_size(&self) -> usize {
        ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + self.netchain.wire_len()
    }

    /// Recomputes the IPv4 and UDP length fields after the NetChain header
    /// changed size (e.g. a hop was popped from the chain list or the value
    /// was replaced). Always called by the rewrite helpers below.
    pub fn fix_lengths(&mut self) {
        let nc_len = self.netchain.wire_len();
        self.udp.length = (UDP_HEADER_LEN + nc_len) as u16;
        self.ip.total_len = (IPV4_HEADER_LEN + UDP_HEADER_LEN + nc_len) as u16;
    }

    /// Performs the "forward along the chain" rewrite of Figure 4: pops the
    /// next hop from the chain list into the destination IP. Returns `true`
    /// if a hop was available, `false` if the chain list was already empty
    /// (meaning the current node is the tail and the caller should turn the
    /// packet into a reply instead).
    pub fn advance_to_next_hop(&mut self) -> bool {
        match self.netchain.chain.pop_front() {
            Some(next) => {
                self.ip.dst = next;
                self.fix_lengths();
                true
            }
            None => false,
        }
    }

    /// Turns the query into a reply addressed at the original client: swaps
    /// the IP source/destination (using the query's source as the client),
    /// swaps UDP ports, sets the reply opcode/status/value, and clears the
    /// chain list.
    pub fn make_reply(&mut self, responder: Ipv4Addr, status: QueryStatus, value: Value) {
        let client = self.ip.src;
        self.ip.src = responder;
        self.ip.dst = client;
        std::mem::swap(&mut self.udp.src_port, &mut self.udp.dst_port);
        let hdr = std::mem::replace(
            &mut self.netchain,
            NetChainHeader::query(
                OpCode::Read,
                Key::default(),
                Value::empty(),
                ChainList::empty(),
                0,
            ),
        );
        self.netchain = hdr.into_reply(status, value);
        self.fix_lengths();
    }

    /// Serializes the whole packet into a caller-provided buffer, returning
    /// the number of bytes written. This is the allocation-free path the
    /// fabric's batch encoder uses; [`Self::to_bytes`] wraps it.
    pub fn emit_into(&self, out: &mut [u8]) -> WireResult<usize> {
        let needed = self.wire_size();
        if out.len() < needed {
            return Err(crate::error::WireError::BufferTooSmall {
                needed,
                available: out.len(),
            });
        }
        let mut off = 0;
        off += self.eth.emit(&mut out[off..])?;
        off += self.ip.emit(&mut out[off..])?;
        off += self.udp.emit(&mut out[off..])?;
        off += self.netchain.emit(&mut out[off..])?;
        debug_assert_eq!(off, needed);
        Ok(off)
    }

    /// Serializes the whole packet to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.wire_size()];
        // The buffer is sized exactly above, so emit cannot fail.
        self.emit_into(&mut out)
            .expect("emit into exact-size buffer");
        out
    }

    /// Serializes only the UDP payload (the NetChain header). This is what the
    /// loopback deployment hands to `UdpSocket::send_to`, since the kernel
    /// supplies the Ethernet/IP/UDP headers there.
    pub fn payload_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.netchain.wire_len()];
        self.netchain
            .emit(&mut out)
            .expect("netchain emit into exact-size buffer");
        out
    }

    /// Parses a full packet from bytes.
    pub fn from_bytes(buf: &[u8]) -> WireResult<Self> {
        let (eth, mut off) = EthernetHeader::parse(buf)?;
        let (ip, used) = Ipv4Header::parse(&buf[off..])?;
        off += used;
        let (udp, used) = UdpHeader::parse(&buf[off..])?;
        off += used;
        let (netchain, _) = NetChainHeader::parse(&buf[off..])?;
        Ok(NetChainPacket {
            eth,
            ip,
            udp,
            netchain,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_query() -> NetChainPacket {
        NetChainPacket::query(
            Ipv4Addr::for_host(0),
            40001,
            Ipv4Addr::for_switch(0),
            OpCode::Write,
            Key::from_name("foo"),
            Value::new(b"bar".to_vec()).unwrap(),
            ChainList::new(vec![Ipv4Addr::for_switch(1), Ipv4Addr::for_switch(2)]).unwrap(),
            7,
        )
    }

    #[test]
    fn query_construction_sets_lengths() {
        let pkt = write_query();
        assert!(pkt.is_netchain());
        assert_eq!(
            usize::from(pkt.ip.total_len),
            IPV4_HEADER_LEN + UDP_HEADER_LEN + pkt.netchain.wire_len()
        );
        assert_eq!(
            usize::from(pkt.udp.length),
            UDP_HEADER_LEN + pkt.netchain.wire_len()
        );
        assert_eq!(pkt.client_ip(), Ipv4Addr::for_host(0));
    }

    #[test]
    fn full_roundtrip() {
        let pkt = write_query();
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), pkt.wire_size());
        let parsed = NetChainPacket::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn advance_walks_the_chain_then_reports_tail() {
        let mut pkt = write_query();
        assert_eq!(pkt.ip.dst, Ipv4Addr::for_switch(0));
        assert!(pkt.advance_to_next_hop());
        assert_eq!(pkt.ip.dst, Ipv4Addr::for_switch(1));
        assert_eq!(pkt.netchain.chain.len(), 1);
        assert!(pkt.advance_to_next_hop());
        assert_eq!(pkt.ip.dst, Ipv4Addr::for_switch(2));
        assert!(pkt.netchain.chain.is_empty());
        assert!(!pkt.advance_to_next_hop());
        // Lengths must shrink as hops are popped.
        let bytes = pkt.to_bytes();
        assert_eq!(NetChainPacket::from_bytes(&bytes).unwrap(), pkt);
    }

    #[test]
    fn reply_swaps_addresses_and_ports() {
        let mut pkt = write_query();
        pkt.make_reply(
            Ipv4Addr::for_switch(2),
            QueryStatus::Ok,
            Value::from_u64(11),
        );
        assert_eq!(pkt.ip.dst, Ipv4Addr::for_host(0));
        assert_eq!(pkt.ip.src, Ipv4Addr::for_switch(2));
        assert_eq!(pkt.udp.dst_port, 40001);
        assert_eq!(pkt.udp.src_port, NETCHAIN_UDP_PORT);
        assert_eq!(pkt.netchain.op, OpCode::WriteReply);
        assert_eq!(pkt.netchain.request_id, 7);
        assert!(pkt.netchain.chain.is_empty());
        let bytes = pkt.to_bytes();
        assert_eq!(NetChainPacket::from_bytes(&bytes).unwrap(), pkt);
    }

    #[test]
    fn payload_bytes_reparse_as_netchain_header() {
        let pkt = write_query();
        let payload = pkt.payload_bytes();
        let (hdr, used) = NetChainHeader::parse(&payload).unwrap();
        assert_eq!(used, payload.len());
        assert_eq!(hdr, pkt.netchain);
    }
}
