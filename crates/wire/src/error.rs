//! Error type shared by all parsers and emitters in this crate.

use std::fmt;

/// Result alias used throughout `netchain-wire`.
pub type WireResult<T> = Result<T, WireError>;

/// Errors produced while parsing or emitting packet bytes.
///
/// Parsers are strict: any structural problem (truncation, bad version,
/// inconsistent lengths, unknown opcodes) is reported rather than silently
/// patched, because a switch data plane must never act on a malformed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the header or payload requires.
    Truncated {
        /// Which layer detected the truncation.
        layer: &'static str,
        /// Bytes required to continue parsing.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A field carried a value the protocol does not allow.
    InvalidField {
        /// Which layer detected the problem.
        layer: &'static str,
        /// Human-readable description of the offending field.
        field: &'static str,
        /// The raw value observed.
        value: u64,
    },
    /// The opcode byte does not map to a known [`crate::OpCode`].
    UnknownOpCode(u8),
    /// The status byte does not map to a known [`crate::QueryStatus`].
    UnknownStatus(u8),
    /// The IPv4 header checksum did not verify.
    BadChecksum {
        /// Checksum carried in the packet.
        expected: u16,
        /// Checksum computed over the received bytes.
        computed: u16,
    },
    /// A value exceeded [`crate::MAX_VALUE_LEN`].
    ValueTooLong(usize),
    /// A chain IP list exceeded [`crate::MAX_CHAIN_LEN`].
    ChainTooLong(usize),
    /// The destination buffer passed to an emitter was too small.
    BufferTooSmall {
        /// Bytes required by the emitter.
        needed: usize,
        /// Bytes available in the output buffer.
        available: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer}: truncated packet, need {needed} bytes but only {available} available"
            ),
            WireError::InvalidField {
                layer,
                field,
                value,
            } => write!(f, "{layer}: invalid {field} value {value}"),
            WireError::UnknownOpCode(op) => write!(f, "unknown NetChain opcode {op:#x}"),
            WireError::UnknownStatus(s) => write!(f, "unknown NetChain status {s:#x}"),
            WireError::BadChecksum { expected, computed } => write!(
                f,
                "IPv4 checksum mismatch: header carries {expected:#06x}, computed {computed:#06x}"
            ),
            WireError::ValueTooLong(len) => {
                write!(f, "value of {len} bytes exceeds the line-rate maximum")
            }
            WireError::ChainTooLong(len) => {
                write!(f, "chain of {len} hops exceeds the maximum chain length")
            }
            WireError::BufferTooSmall { needed, available } => write!(
                f,
                "output buffer too small: need {needed} bytes, have {available}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = WireError::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 7,
        };
        let text = err.to_string();
        assert!(text.contains("ipv4"));
        assert!(text.contains("20"));
        assert!(text.contains("7"));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(WireError::UnknownOpCode(9), WireError::UnknownOpCode(9));
        assert_ne!(WireError::UnknownOpCode(9), WireError::UnknownOpCode(8));
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn std::error::Error> = Box::new(WireError::ValueTooLong(4096));
        assert!(err.to_string().contains("4096"));
    }
}
