//! Zero-copy borrowed views over serialized NetChain packets, and a batch
//! encoder that emits many packets into one contiguous buffer.
//!
//! The owned parsers ([`NetChainHeader::parse`], `NetChainPacket::from_bytes`)
//! allocate for every packet: the chain hop list and the value each land in a
//! fresh `Vec`. That is fine for the discrete-event simulator, whose cost
//! model is virtual time, but it dominates the profile of the real-throughput
//! fabric (`netchain-fabric`), which parses millions of packets per second.
//! This module provides the fast path:
//!
//! * [`NetChainView`] / [`PacketView`] — validate-once, read-in-place
//!   decoders. All accessors are O(1) reads of big-endian fields from the
//!   borrowed byte slice; nothing is copied to the heap. The views perform
//!   exactly the same validation as the owned parsers (including the IPv4
//!   checksum), so `parse-view then to_owned` and `parse-owned` accept the
//!   same byte strings and produce equal headers — a property pinned down by
//!   `tests/proptest_view.rs`.
//! * [`BatchEncoder`] — appends whole packets back-to-back into one reusable
//!   buffer, so a burst of replies costs at most one (amortised) allocation
//!   instead of one `Vec` per packet.

use crate::error::{WireError, WireResult};
use crate::ethernet::EthernetHeader;
use crate::ipv4::{Ipv4Addr, Ipv4Header};
use crate::netchain::{
    ChainList, Key, NetChainHeader, OpCode, QueryStatus, Value, KEY_LEN, MAX_CHAIN_LEN,
    MAX_VALUE_LEN, NETCHAIN_FIXED_HEADER_LEN, NETCHAIN_UDP_PORT,
};
use crate::packet::NetChainPacket;
use crate::udp::UdpHeader;

/// A borrowed, validated view of a serialized NetChain header.
///
/// Construction validates every fixed field plus the overall length, so the
/// accessors cannot fail and perform no further checks.
#[derive(Debug, Clone, Copy)]
pub struct NetChainView<'a> {
    /// Exactly the header's bytes: fixed part + chain + value.
    buf: &'a [u8],
    chain_len: usize,
    value_len: usize,
}

impl<'a> NetChainView<'a> {
    /// Parses a view from the front of `buf`, returning it plus the number of
    /// bytes consumed. Accepts exactly the inputs [`NetChainHeader::parse`]
    /// accepts.
    pub fn parse(buf: &'a [u8]) -> WireResult<(Self, usize)> {
        if buf.len() < NETCHAIN_FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "netchain",
                needed: NETCHAIN_FIXED_HEADER_LEN,
                available: buf.len(),
            });
        }
        // Validate the enum bytes once so accessors are infallible.
        OpCode::from_u8(buf[0])?;
        QueryStatus::from_u8(buf[1])?;
        let chain_len = usize::from(buf[36]);
        if chain_len > MAX_CHAIN_LEN {
            return Err(WireError::ChainTooLong(chain_len));
        }
        let value_len = usize::from(u16::from_be_bytes([buf[37], buf[38]]));
        if value_len > MAX_VALUE_LEN {
            return Err(WireError::ValueTooLong(value_len));
        }
        let needed = NETCHAIN_FIXED_HEADER_LEN + chain_len * 4 + value_len;
        if buf.len() < needed {
            return Err(WireError::Truncated {
                layer: "netchain",
                needed,
                available: buf.len(),
            });
        }
        Ok((
            NetChainView {
                buf: &buf[..needed],
                chain_len,
                value_len,
            },
            needed,
        ))
    }

    /// The operation / reply code.
    pub fn op(&self) -> OpCode {
        OpCode::from_u8(self.buf[0]).expect("validated by parse")
    }

    /// The reply status.
    pub fn status(&self) -> QueryStatus {
        QueryStatus::from_u8(self.buf[1]).expect("validated by parse")
    }

    /// The session number.
    pub fn session(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The per-key sequence number.
    pub fn seq(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[4..12]);
        u64::from_be_bytes(b)
    }

    /// The client-chosen request id.
    pub fn request_id(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[12..20]);
        u64::from_be_bytes(b)
    }

    /// The key (a 16-byte copy on the stack, never on the heap).
    pub fn key(&self) -> Key {
        let mut k = [0u8; KEY_LEN];
        k.copy_from_slice(&self.buf[20..36]);
        Key::from_bytes(k)
    }

    /// Number of remaining chain hops.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// The `i`-th remaining chain hop (0 = next hop after the current
    /// destination). Returns `None` past the end.
    pub fn hop(&self, i: usize) -> Option<Ipv4Addr> {
        if i >= self.chain_len {
            return None;
        }
        let off = NETCHAIN_FIXED_HEADER_LEN + i * 4;
        Some(Ipv4Addr([
            self.buf[off],
            self.buf[off + 1],
            self.buf[off + 2],
            self.buf[off + 3],
        ]))
    }

    /// Iterates the remaining chain hops in order.
    pub fn hops(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.chain_len).map(move |i| self.hop(i).expect("index bounded by chain_len"))
    }

    /// The value bytes, borrowed from the underlying buffer.
    pub fn value(&self) -> &'a [u8] {
        let start = NETCHAIN_FIXED_HEADER_LEN + self.chain_len * 4;
        &self.buf[start..start + self.value_len]
    }

    /// Serialized length of the viewed header.
    pub fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// The raw bytes the view covers.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// Converts the view into an owned [`NetChainHeader`]. The only heap
    /// allocations are the chain list and (if non-empty) the value — for the
    /// read-query fast path both are empty and this allocates nothing.
    pub fn to_owned(&self) -> NetChainHeader {
        NetChainHeader {
            op: self.op(),
            status: self.status(),
            session: self.session(),
            seq: self.seq(),
            request_id: self.request_id(),
            key: self.key(),
            chain: ChainList::new(self.hops().collect::<Vec<_>>())
                .expect("chain length validated by parse"),
            value: Value::new(self.value().to_vec()).expect("value length validated by parse"),
        }
    }

    /// Writes the view into an existing [`NetChainHeader`], reusing its chain
    /// and value allocations. Steady state allocates nothing at all, even for
    /// writes — this is the arena fast path the fabric's packet pool uses.
    /// The result is identical to [`Self::to_owned`].
    pub fn write_into(&self, out: &mut NetChainHeader) {
        out.op = self.op();
        out.status = self.status();
        out.session = self.session();
        out.seq = self.seq();
        out.request_id = self.request_id();
        out.key = self.key();
        out.chain
            .refill(self.hops())
            .expect("chain length validated by parse");
        out.value
            .set_bytes(self.value())
            .expect("value length validated by parse");
    }
}

/// A borrowed, validated view of a full serialized NetChain packet
/// (Ethernet + IPv4 + UDP + NetChain header).
///
/// The L2–L4 headers are tiny fixed-size structs, so the view decodes them
/// eagerly (stack copies, no heap); the variable-length NetChain payload
/// stays borrowed behind a [`NetChainView`].
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    /// Decoded Ethernet header.
    pub eth: EthernetHeader,
    /// Decoded IPv4 header (checksum verified).
    pub ip: Ipv4Header,
    /// Decoded UDP header.
    pub udp: UdpHeader,
    /// Borrowed view of the NetChain payload.
    pub netchain: NetChainView<'a>,
}

impl<'a> PacketView<'a> {
    /// Parses a packet view, performing the same validation as
    /// `NetChainPacket::from_bytes`.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        let (eth, mut off) = EthernetHeader::parse(buf)?;
        let (ip, used) = Ipv4Header::parse(&buf[off..])?;
        off += used;
        let (udp, used) = UdpHeader::parse(&buf[off..])?;
        off += used;
        let (netchain, _) = NetChainView::parse(&buf[off..])?;
        Ok(PacketView {
            eth,
            ip,
            udp,
            netchain,
        })
    }

    /// True if this is a NetChain query or reply (reserved port either way).
    pub fn is_netchain(&self) -> bool {
        self.udp.dst_port == NETCHAIN_UDP_PORT || self.udp.src_port == NETCHAIN_UDP_PORT
    }

    /// Converts to a fully owned [`NetChainPacket`].
    pub fn to_owned(&self) -> NetChainPacket {
        NetChainPacket {
            eth: self.eth,
            ip: self.ip,
            udp: self.udp,
            netchain: self.netchain.to_owned(),
        }
    }

    /// Writes the view into an existing [`NetChainPacket`], reusing its heap
    /// allocations (see [`NetChainView::write_into`]). Equal to
    /// [`Self::to_owned`] in every field.
    pub fn to_owned_into(&self, out: &mut NetChainPacket) {
        out.eth = self.eth;
        out.ip = self.ip;
        out.udp = self.udp;
        self.netchain.write_into(&mut out.netchain);
    }
}

/// Emits many packets back-to-back into one reusable contiguous buffer.
///
/// `clear()` + repeated `push()` per burst keeps the buffer's capacity, so a
/// steady-state shard produces entire reply bursts without touching the
/// allocator (the `Vec` grows to the high-water mark once and stays there).
#[derive(Debug, Default)]
pub struct BatchEncoder {
    buf: Vec<u8>,
    /// Frame boundaries: `ends[i]` is the exclusive end of frame `i`.
    ends: Vec<usize>,
}

impl BatchEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with buffer capacity for roughly `frames` packets
    /// of `bytes_per_frame` bytes.
    pub fn with_capacity(frames: usize, bytes_per_frame: usize) -> Self {
        BatchEncoder {
            buf: Vec::with_capacity(frames * bytes_per_frame),
            ends: Vec::with_capacity(frames),
        }
    }

    /// Appends one packet, returning its frame index.
    pub fn push(&mut self, pkt: &NetChainPacket) -> WireResult<usize> {
        let start = self.buf.len();
        let size = pkt.wire_size();
        self.buf.resize(start + size, 0);
        let written = pkt.emit_into(&mut self.buf[start..])?;
        debug_assert_eq!(written, size);
        self.ends.push(start + written);
        Ok(self.ends.len() - 1)
    }

    /// Number of frames currently buffered.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if no frames are buffered.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The bytes of frame `i`.
    pub fn frame(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.buf[start..self.ends[i]]
    }

    /// Iterates all buffered frames in push order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.frame(i))
    }

    /// Total buffered bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Clears the frames while keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.ends.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netchain::{ChainList, OpCode, Value};

    fn sample_packet(value_len: usize, hops: usize) -> NetChainPacket {
        NetChainPacket::query(
            Ipv4Addr::for_host(3),
            40_000,
            Ipv4Addr::for_switch(0),
            OpCode::Write,
            Key::from_name("view/key"),
            Value::filled(0x5a, value_len).unwrap(),
            ChainList::new(
                (1..=hops as u32)
                    .map(Ipv4Addr::for_switch)
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            77,
        )
    }

    #[test]
    fn view_matches_owned_parser() {
        let pkt = sample_packet(32, 2);
        let bytes = pkt.to_bytes();
        let view = PacketView::parse(&bytes).unwrap();
        assert!(view.is_netchain());
        assert_eq!(view.ip.dst, pkt.ip.dst);
        assert_eq!(view.netchain.op(), OpCode::Write);
        assert_eq!(view.netchain.key(), pkt.netchain.key);
        assert_eq!(view.netchain.seq(), pkt.netchain.seq);
        assert_eq!(view.netchain.request_id(), 77);
        assert_eq!(view.netchain.chain_len(), 2);
        assert_eq!(
            view.netchain.hops().collect::<Vec<_>>(),
            pkt.netchain.chain.hops()
        );
        assert_eq!(view.netchain.value(), pkt.netchain.value.as_bytes());
        assert_eq!(view.to_owned(), pkt);
    }

    #[test]
    fn view_rejects_truncation_like_owned_parser() {
        let pkt = sample_packet(16, 1);
        let payload = pkt.payload_bytes();
        for cut in 0..payload.len() {
            let view_err = NetChainView::parse(&payload[..cut]).is_err();
            let owned_err = NetChainHeader::parse(&payload[..cut]).is_err();
            assert_eq!(view_err, owned_err, "divergence at cut {cut}");
            assert!(view_err, "truncated input accepted at cut {cut}");
        }
    }

    #[test]
    fn view_rejects_bad_enum_bytes() {
        let pkt = sample_packet(0, 0);
        let mut payload = pkt.payload_bytes();
        payload[0] = 0xfe;
        assert!(matches!(
            NetChainView::parse(&payload).unwrap_err(),
            WireError::UnknownOpCode(0xfe)
        ));
        let mut payload = pkt.payload_bytes();
        payload[1] = 0x77;
        assert!(matches!(
            NetChainView::parse(&payload).unwrap_err(),
            WireError::UnknownStatus(0x77)
        ));
    }

    #[test]
    fn batch_encoder_roundtrips_frames() {
        let mut enc = BatchEncoder::with_capacity(8, 128);
        let pkts: Vec<NetChainPacket> = (0..5).map(|i| sample_packet(i * 8, i % 3)).collect();
        for p in &pkts {
            enc.push(p).unwrap();
        }
        assert_eq!(enc.len(), 5);
        for (frame, pkt) in enc.frames().zip(&pkts) {
            assert_eq!(&PacketView::parse(frame).unwrap().to_owned(), pkt);
        }
        let cap = enc.byte_len();
        enc.clear();
        assert!(enc.is_empty());
        assert_eq!(enc.byte_len(), 0);
        let _ = cap;
    }
}
