//! Zero-copy borrowed views over serialized NetChain packets, and a batch
//! encoder that emits many packets into one contiguous buffer.
//!
//! The owned parsers ([`NetChainHeader::parse`], `NetChainPacket::from_bytes`)
//! allocate for every packet: the chain hop list and the value each land in a
//! fresh `Vec`. That is fine for the discrete-event simulator, whose cost
//! model is virtual time, but it dominates the profile of the real-throughput
//! fabric (`netchain-fabric`), which parses millions of packets per second.
//! This module provides the fast path:
//!
//! * [`NetChainView`] / [`PacketView`] — validate-once, read-in-place
//!   decoders. All accessors are O(1) reads of big-endian fields from the
//!   borrowed byte slice; nothing is copied to the heap. The views perform
//!   exactly the same validation as the owned parsers (including the IPv4
//!   checksum), so `parse-view then to_owned` and `parse-owned` accept the
//!   same byte strings and produce equal headers — a property pinned down by
//!   `tests/proptest_view.rs`.
//! * [`BatchEncoder`] — appends whole packets back-to-back into one reusable
//!   buffer, so a burst of replies costs at most one (amortised) allocation
//!   instead of one `Vec` per packet.

use crate::error::{WireError, WireResult};
use crate::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{Ipv4Addr, Ipv4Header, Protocol, IPV4_HEADER_LEN};
use crate::netchain::{
    ChainList, Key, NetChainHeader, OpCode, QueryStatus, Value, KEY_LEN, MAX_CHAIN_LEN,
    MAX_VALUE_LEN, NETCHAIN_FIXED_HEADER_LEN, NETCHAIN_UDP_PORT,
};
use crate::packet::NetChainPacket;
use crate::udp::{UdpHeader, UDP_HEADER_LEN};

/// A borrowed, validated view of a serialized NetChain header.
///
/// Construction validates every fixed field plus the overall length, so the
/// accessors cannot fail and perform no further checks.
#[derive(Debug, Clone, Copy)]
pub struct NetChainView<'a> {
    /// Exactly the header's bytes: fixed part + chain + value.
    buf: &'a [u8],
    chain_len: usize,
    value_len: usize,
}

impl<'a> NetChainView<'a> {
    /// Parses a view from the front of `buf`, returning it plus the number of
    /// bytes consumed. Accepts exactly the inputs [`NetChainHeader::parse`]
    /// accepts.
    pub fn parse(buf: &'a [u8]) -> WireResult<(Self, usize)> {
        if buf.len() < NETCHAIN_FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "netchain",
                needed: NETCHAIN_FIXED_HEADER_LEN,
                available: buf.len(),
            });
        }
        // Validate the enum bytes once so accessors are infallible.
        OpCode::from_u8(buf[0])?;
        QueryStatus::from_u8(buf[1])?;
        let chain_len = usize::from(buf[36]);
        if chain_len > MAX_CHAIN_LEN {
            return Err(WireError::ChainTooLong(chain_len));
        }
        let value_len = usize::from(u16::from_be_bytes([buf[37], buf[38]]));
        if value_len > MAX_VALUE_LEN {
            return Err(WireError::ValueTooLong(value_len));
        }
        let needed = NETCHAIN_FIXED_HEADER_LEN + chain_len * 4 + value_len;
        if buf.len() < needed {
            return Err(WireError::Truncated {
                layer: "netchain",
                needed,
                available: buf.len(),
            });
        }
        Ok((
            NetChainView {
                buf: &buf[..needed],
                chain_len,
                value_len,
            },
            needed,
        ))
    }

    /// The operation / reply code.
    pub fn op(&self) -> OpCode {
        OpCode::from_u8(self.buf[0]).expect("validated by parse")
    }

    /// The reply status.
    pub fn status(&self) -> QueryStatus {
        QueryStatus::from_u8(self.buf[1]).expect("validated by parse")
    }

    /// The session number.
    pub fn session(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The per-key sequence number.
    pub fn seq(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[4..12]);
        u64::from_be_bytes(b)
    }

    /// The client-chosen request id.
    pub fn request_id(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[12..20]);
        u64::from_be_bytes(b)
    }

    /// The key (a 16-byte copy on the stack, never on the heap).
    pub fn key(&self) -> Key {
        let mut k = [0u8; KEY_LEN];
        k.copy_from_slice(&self.buf[20..36]);
        Key::from_bytes(k)
    }

    /// Number of remaining chain hops.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// The `i`-th remaining chain hop (0 = next hop after the current
    /// destination). Returns `None` past the end.
    pub fn hop(&self, i: usize) -> Option<Ipv4Addr> {
        if i >= self.chain_len {
            return None;
        }
        let off = NETCHAIN_FIXED_HEADER_LEN + i * 4;
        Some(Ipv4Addr([
            self.buf[off],
            self.buf[off + 1],
            self.buf[off + 2],
            self.buf[off + 3],
        ]))
    }

    /// Iterates the remaining chain hops in order.
    pub fn hops(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.chain_len).map(move |i| self.hop(i).expect("index bounded by chain_len"))
    }

    /// The value bytes, borrowed from the underlying buffer.
    pub fn value(&self) -> &'a [u8] {
        let start = NETCHAIN_FIXED_HEADER_LEN + self.chain_len * 4;
        &self.buf[start..start + self.value_len]
    }

    /// Serialized length of the viewed header.
    pub fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// The raw bytes the view covers.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// Converts the view into an owned [`NetChainHeader`]. The only heap
    /// allocations are the chain list and (if non-empty) the value — for the
    /// read-query fast path both are empty and this allocates nothing.
    pub fn to_owned(&self) -> NetChainHeader {
        NetChainHeader {
            op: self.op(),
            status: self.status(),
            session: self.session(),
            seq: self.seq(),
            request_id: self.request_id(),
            key: self.key(),
            chain: ChainList::new(self.hops().collect::<Vec<_>>())
                .expect("chain length validated by parse"),
            value: Value::new(self.value().to_vec()).expect("value length validated by parse"),
        }
    }

    /// Writes the view into an existing [`NetChainHeader`], reusing its chain
    /// and value allocations. Steady state allocates nothing at all, even for
    /// writes — this is the arena fast path the fabric's packet pool uses.
    /// The result is identical to [`Self::to_owned`].
    pub fn write_into(&self, out: &mut NetChainHeader) {
        out.op = self.op();
        out.status = self.status();
        out.session = self.session();
        out.seq = self.seq();
        out.request_id = self.request_id();
        out.key = self.key();
        out.chain
            .refill(self.hops())
            .expect("chain length validated by parse");
        out.value
            .set_bytes(self.value())
            .expect("value length validated by parse");
    }
}

/// A borrowed, validated view of a full serialized NetChain packet
/// (Ethernet + IPv4 + UDP + NetChain header).
///
/// The L2–L4 headers are tiny fixed-size structs, so the view decodes them
/// eagerly (stack copies, no heap); the variable-length NetChain payload
/// stays borrowed behind a [`NetChainView`].
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    /// Decoded Ethernet header.
    pub eth: EthernetHeader,
    /// Decoded IPv4 header (checksum verified).
    pub ip: Ipv4Header,
    /// Decoded UDP header.
    pub udp: UdpHeader,
    /// Borrowed view of the NetChain payload.
    pub netchain: NetChainView<'a>,
}

impl<'a> PacketView<'a> {
    /// Parses a packet view, performing the same validation as
    /// `NetChainPacket::from_bytes`.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        let (eth, mut off) = EthernetHeader::parse(buf)?;
        let (ip, used) = Ipv4Header::parse(&buf[off..])?;
        off += used;
        let (udp, used) = UdpHeader::parse(&buf[off..])?;
        off += used;
        let (netchain, _) = NetChainView::parse(&buf[off..])?;
        Ok(PacketView {
            eth,
            ip,
            udp,
            netchain,
        })
    }

    /// True if this is a NetChain query or reply (reserved port either way).
    pub fn is_netchain(&self) -> bool {
        self.udp.dst_port == NETCHAIN_UDP_PORT || self.udp.src_port == NETCHAIN_UDP_PORT
    }

    /// Converts to a fully owned [`NetChainPacket`].
    pub fn to_owned(&self) -> NetChainPacket {
        NetChainPacket {
            eth: self.eth,
            ip: self.ip,
            udp: self.udp,
            netchain: self.netchain.to_owned(),
        }
    }

    /// Writes the view into an existing [`NetChainPacket`], reusing its heap
    /// allocations (see [`NetChainView::write_into`]). Equal to
    /// [`Self::to_owned`] in every field.
    pub fn to_owned_into(&self, out: &mut NetChainPacket) {
        out.eth = self.eth;
        out.ip = self.ip;
        out.udp = self.udp;
        self.netchain.write_into(&mut out.netchain);
    }
}

/// Minimum length in bytes of any frame [`PacketView::parse`] can accept:
/// Ethernet (14) + IPv4 with IHL 5 (20) + UDP (8) + the fixed NetChain
/// header (39). Shorter inputs are rejected by some layer unconditionally,
/// which is what lets [`validate_frame`] replace the per-layer length checks
/// with this single gate.
pub const MIN_FRAME_LEN: usize =
    ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + NETCHAIN_FIXED_HEADER_LEN;

/// Lanes per staged parse batch: the burst size of the fabric's shards.
pub const BATCH_WIDTH: usize = 32;

// Frame-absolute offsets of the fields stage 1 touches. The IPv4 header
// starts at 14, UDP at 34 and the NetChain payload at 42; all NetChain
// payload offsets below are those of `NetChainView` plus 42.
const IP_OFF: usize = ETHERNET_HEADER_LEN;
const UDP_OFF: usize = IP_OFF + IPV4_HEADER_LEN;
const NC_OFF: usize = UDP_OFF + UDP_HEADER_LEN;

/// 256-entry opcode-byte validity table (`OpCode::from_u8` as a lookup, so
/// stage 1 validates without a branch).
const OP_VALID: [bool; 256] = {
    let mut t = [false; 256];
    // Queries 1–6, replies 17–22 — exactly the bytes OpCode::from_u8 accepts
    // (6/22 are the in-band Stat probe and its reply).
    let mut v = 1;
    while v <= 6 {
        t[v] = true;
        t[v + 16] = true;
        v += 1;
    }
    t
};

/// 256-entry status-byte validity table (`QueryStatus::from_u8` as a lookup).
const STATUS_VALID: [bool; 256] = {
    let mut t = [false; 256];
    let mut v = 0;
    while v <= 4 {
        t[v] = true;
        v += 1;
    }
    t
};

/// Validates one frame against exactly the accept set of
/// [`PacketView::parse`], replacing the per-layer, per-field early returns
/// with a single length gate plus one accumulated error mask: every check
/// contributes a bit and the frame is valid iff the mask stays zero. The
/// equivalence (including the IPv4 checksum comparison and the trailing
/// chain+value length check) is pinned by `tests/proptest_view.rs`.
#[inline]
pub fn validate_frame(buf: &[u8]) -> bool {
    if buf.len() < MIN_FRAME_LEN {
        return false;
    }
    // IPv4: version 4 + IHL 5 means the first header byte must be 0x45.
    let mut bad = u32::from(buf[IP_OFF] != 0x45);
    bad |= u32::from(u16::from_be_bytes([buf[IP_OFF + 2], buf[IP_OFF + 3]]) < 20);
    // Internet checksum of the header with its checksum field zeroed — the
    // nine non-checksum words at fixed offsets — compared for exact
    // equality with the carried field, as Ipv4Header::parse does.
    const IP_WORDS: [usize; 9] = [
        IP_OFF,
        IP_OFF + 2,
        IP_OFF + 4,
        IP_OFF + 6,
        IP_OFF + 8,
        IP_OFF + 12,
        IP_OFF + 14,
        IP_OFF + 16,
        IP_OFF + 18,
    ];
    let mut sum: u32 = 0;
    for off in IP_WORDS {
        sum += u32::from(u16::from_be_bytes([buf[off], buf[off + 1]]));
    }
    // Two folds suffice: nine 16-bit words sum to at most 0x8fff7.
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    let computed = !(sum as u16);
    let carried = u16::from_be_bytes([buf[IP_OFF + 10], buf[IP_OFF + 11]]);
    bad |= u32::from(computed != carried);
    // UDP: the length field must cover its own header.
    bad |= u32::from(u16::from_be_bytes([buf[UDP_OFF + 4], buf[UDP_OFF + 5]]) < 8);
    // NetChain: enum bytes via lookup, bounded chain and value, and the one
    // data-dependent length check.
    bad |= u32::from(!OP_VALID[usize::from(buf[NC_OFF])]);
    bad |= u32::from(!STATUS_VALID[usize::from(buf[NC_OFF + 1])]);
    let chain_len = usize::from(buf[NC_OFF + 36]);
    bad |= u32::from(chain_len > MAX_CHAIN_LEN);
    let value_len = usize::from(u16::from_be_bytes([buf[NC_OFF + 37], buf[NC_OFF + 38]]));
    bad |= u32::from(value_len > MAX_VALUE_LEN);
    bad |= u32::from(buf.len() < NC_OFF + NETCHAIN_FIXED_HEADER_LEN + chain_len * 4 + value_len);
    bad == 0
}

/// Structure-of-arrays scratch filled by the stage-1 batch parse: one lane
/// per frame, parallel arrays so the later pipeline stages (batched key
/// hashing, index probing) sweep a single field across all lanes instead of
/// hopping between per-packet structs.
#[derive(Debug, Clone)]
pub struct ParsedBatch {
    len: usize,
    /// Bit `i` set ⇔ frame `i` passed [`validate_frame`].
    valid: u32,
    /// Bit `i` set ⇔ frame `i` is valid **and** carries the NetChain UDP
    /// port (either direction), i.e. `PacketView::is_netchain` holds.
    netchain: u32,
    ops: [u8; BATCH_WIDTH],
    srcs: [u32; BATCH_WIDTH],
    dsts: [u32; BATCH_WIDTH],
    seqs: [u64; BATCH_WIDTH],
    request_ids: [u64; BATCH_WIDTH],
    vlens: [u16; BATCH_WIDTH],
    keys: [[u8; KEY_LEN]; BATCH_WIDTH],
}

impl ParsedBatch {
    /// Number of lanes (frames) in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if lane `i` passed validation.
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.valid & (1 << i) != 0
    }

    /// True if lane `i` is valid and addressed to/from the NetChain port.
    pub fn is_netchain(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.netchain & (1 << i) != 0
    }

    /// Lanes that failed validation (the scalar path's `parse_errors`).
    pub fn invalid_count(&self) -> usize {
        self.len - (self.valid.count_ones() as usize)
    }

    /// The opcode byte of lane `i` (zero for invalid lanes).
    pub fn op(&self, i: usize) -> u8 {
        self.ops[i]
    }

    /// The source IP of lane `i` as a big-endian u32.
    pub fn src(&self, i: usize) -> u32 {
        self.srcs[i]
    }

    /// The destination IP of lane `i` as a big-endian u32.
    pub fn dst(&self, i: usize) -> u32 {
        self.dsts[i]
    }

    /// The sequence number of lane `i`.
    pub fn seq(&self, i: usize) -> u64 {
        self.seqs[i]
    }

    /// The request id of lane `i`.
    pub fn request_id(&self, i: usize) -> u64 {
        self.request_ids[i]
    }

    /// The carried value length of lane `i` in bytes (zero for invalid
    /// lanes and for pure read queries).
    pub fn value_len(&self, i: usize) -> usize {
        usize::from(self.vlens[i])
    }

    /// The key bytes of lane `i`.
    pub fn key(&self, i: usize) -> Key {
        Key::from_bytes(self.keys[i])
    }

    /// All key lanes as one dense array slice — the input of the batched
    /// hash stage (invalid lanes hold zeroed keys; harmless to hash).
    pub fn keys(&self) -> &[[u8; KEY_LEN]] {
        &self.keys[..self.len]
    }
}

/// Validates and field-extracts up to [`BATCH_WIDTH`] frames into a
/// [`ParsedBatch`] — stage 1 of the staged shard pipeline.
pub fn validate_batch(frames: &[&[u8]]) -> ParsedBatch {
    assert!(frames.len() <= BATCH_WIDTH, "batch wider than BATCH_WIDTH");
    let mut batch = ParsedBatch {
        len: frames.len(),
        valid: 0,
        netchain: 0,
        ops: [0; BATCH_WIDTH],
        srcs: [0; BATCH_WIDTH],
        dsts: [0; BATCH_WIDTH],
        seqs: [0; BATCH_WIDTH],
        request_ids: [0; BATCH_WIDTH],
        vlens: [0; BATCH_WIDTH],
        keys: [[0; KEY_LEN]; BATCH_WIDTH],
    };
    for (i, buf) in frames.iter().enumerate() {
        if !validate_frame(buf) {
            continue;
        }
        batch.valid |= 1 << i;
        let nc_port = NETCHAIN_UDP_PORT.to_be_bytes();
        if buf[UDP_OFF..UDP_OFF + 2] == nc_port || buf[UDP_OFF + 2..UDP_OFF + 4] == nc_port {
            batch.netchain |= 1 << i;
        }
        batch.ops[i] = buf[NC_OFF];
        batch.srcs[i] = u32::from_be_bytes(buf[IP_OFF + 12..IP_OFF + 16].try_into().unwrap());
        batch.dsts[i] = u32::from_be_bytes(buf[IP_OFF + 16..IP_OFF + 20].try_into().unwrap());
        batch.seqs[i] = u64::from_be_bytes(buf[NC_OFF + 4..NC_OFF + 12].try_into().unwrap());
        batch.request_ids[i] =
            u64::from_be_bytes(buf[NC_OFF + 12..NC_OFF + 20].try_into().unwrap());
        batch.vlens[i] = u16::from_be_bytes([buf[NC_OFF + 37], buf[NC_OFF + 38]]);
        batch.keys[i].copy_from_slice(&buf[NC_OFF + 20..NC_OFF + 36]);
    }
    batch
}

/// A batch of frames validated branch-free into a structure-of-arrays
/// scratch, with on-demand zero-copy [`PacketView`]s for the lanes that need
/// the full packet (mutations, transits — anything off the fast read lane).
#[derive(Debug)]
pub struct BatchView<'s, 'a> {
    frames: &'s [&'a [u8]],
    batch: ParsedBatch,
}

impl<'s, 'a> BatchView<'s, 'a> {
    /// Runs stage 1 ([`validate_batch`]) over up to [`BATCH_WIDTH`] frames.
    pub fn parse(frames: &'s [&'a [u8]]) -> Self {
        BatchView {
            frames,
            batch: validate_batch(frames),
        }
    }

    /// The structure-of-arrays parse results.
    pub fn batch(&self) -> &ParsedBatch {
        &self.batch
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True if the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// True if lane `i` passed validation.
    pub fn is_valid(&self, i: usize) -> bool {
        self.batch.is_valid(i)
    }

    /// The raw bytes of lane `i`.
    pub fn frame(&self, i: usize) -> &'a [u8] {
        self.frames[i]
    }

    /// Constructs the full [`PacketView`] of a **valid** lane without
    /// re-validating: the field decodes are plain fixed-offset reads, legal
    /// because [`validate_frame`] already admitted the frame. Produces
    /// exactly what `PacketView::parse` would (pinned by the proptest
    /// differential).
    ///
    /// # Panics
    /// If lane `i` failed validation.
    pub fn view(&self, i: usize) -> PacketView<'a> {
        assert!(self.batch.is_valid(i), "lane {i} failed validation");
        let b = self.frames[i];
        let eth = EthernetHeader {
            dst: MacAddr(b[0..6].try_into().unwrap()),
            src: MacAddr(b[6..12].try_into().unwrap()),
            ethertype: EtherType::from_u16(u16::from_be_bytes([b[12], b[13]])),
        };
        let ip = Ipv4Header {
            dscp_ecn: b[IP_OFF + 1],
            total_len: u16::from_be_bytes([b[IP_OFF + 2], b[IP_OFF + 3]]),
            identification: u16::from_be_bytes([b[IP_OFF + 4], b[IP_OFF + 5]]),
            ttl: b[IP_OFF + 8],
            protocol: Protocol::from_u8(b[IP_OFF + 9]),
            src: Ipv4Addr(b[IP_OFF + 12..IP_OFF + 16].try_into().unwrap()),
            dst: Ipv4Addr(b[IP_OFF + 16..IP_OFF + 20].try_into().unwrap()),
        };
        let udp = UdpHeader {
            src_port: u16::from_be_bytes([b[UDP_OFF], b[UDP_OFF + 1]]),
            dst_port: u16::from_be_bytes([b[UDP_OFF + 2], b[UDP_OFF + 3]]),
            length: u16::from_be_bytes([b[UDP_OFF + 4], b[UDP_OFF + 5]]),
            checksum: u16::from_be_bytes([b[UDP_OFF + 6], b[UDP_OFF + 7]]),
        };
        let chain_len = usize::from(b[NC_OFF + 36]);
        let value_len = usize::from(u16::from_be_bytes([b[NC_OFF + 37], b[NC_OFF + 38]]));
        let needed = NETCHAIN_FIXED_HEADER_LEN + chain_len * 4 + value_len;
        let netchain = NetChainView {
            buf: &b[NC_OFF..NC_OFF + needed],
            chain_len,
            value_len,
        };
        PacketView {
            eth,
            ip,
            udp,
            netchain,
        }
    }
}

/// Emits many packets back-to-back into one reusable contiguous buffer.
///
/// `clear()` + repeated `push()` per burst keeps the buffer's capacity, so a
/// steady-state shard produces entire reply bursts without touching the
/// allocator (the `Vec` grows to the high-water mark once and stays there).
#[derive(Debug, Default)]
pub struct BatchEncoder {
    buf: Vec<u8>,
    /// Frame boundaries: `ends[i]` is the exclusive end of frame `i`.
    ends: Vec<usize>,
}

impl BatchEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with buffer capacity for roughly `frames` packets
    /// of `bytes_per_frame` bytes.
    pub fn with_capacity(frames: usize, bytes_per_frame: usize) -> Self {
        BatchEncoder {
            buf: Vec::with_capacity(frames * bytes_per_frame),
            ends: Vec::with_capacity(frames),
        }
    }

    /// Appends one packet, returning its frame index.
    pub fn push(&mut self, pkt: &NetChainPacket) -> WireResult<usize> {
        let start = self.buf.len();
        let size = pkt.wire_size();
        self.buf.resize(start + size, 0);
        let written = pkt.emit_into(&mut self.buf[start..])?;
        debug_assert_eq!(written, size);
        self.ends.push(start + written);
        Ok(self.ends.len() - 1)
    }

    /// Appends one frame of exactly `len` bytes, handing the caller a zeroed
    /// slice to fill in place. Returns the frame index. This is the
    /// header-direct emission path of the staged pipeline: no owned packet is
    /// ever constructed.
    pub fn push_with(&mut self, len: usize, fill: impl FnOnce(&mut [u8])) -> usize {
        let start = self.buf.len();
        self.buf.resize(start + len, 0);
        fill(&mut self.buf[start..]);
        self.ends.push(start + len);
        self.ends.len() - 1
    }

    /// Emits the reply to a validated read-**query** frame straight from the
    /// query's bytes plus the stored `(status, session, seq, value)`, without
    /// constructing an owned packet. `fill_value` receives exactly
    /// `value_len` bytes to fill (it is not called when `value_len` is 0).
    ///
    /// Byte-for-byte identical to the scalar path's
    /// `NetChainPacket::make_reply` + `BatchEncoder::push`: the Ethernet
    /// header, IP dscp/identification/ttl/protocol, and the UDP checksum are
    /// echoed from the query; IP src/dst and the UDP ports are swapped in;
    /// lengths and the IP checksum are recomputed; the NetChain header
    /// carries the reply opcode, cleared chain, and the stored ordering
    /// state. The caller must pass a frame whose opcode is a query.
    #[allow(clippy::too_many_arguments)]
    pub fn push_read_reply(
        &mut self,
        query: &[u8],
        responder: Ipv4Addr,
        status: QueryStatus,
        session: u16,
        seq: u64,
        value_len: usize,
        fill_value: impl FnOnce(&mut [u8]),
    ) -> usize {
        debug_assert!(validate_frame(query), "query frame must be validated");
        debug_assert!(value_len <= MAX_VALUE_LEN);
        self.push_with(MIN_FRAME_LEN + value_len, |out| {
            // L2 echoed verbatim (make_reply never touches it).
            out[..ETHERNET_HEADER_LEN].copy_from_slice(&query[..ETHERNET_HEADER_LEN]);
            // IPv4: addresses swapped (responder → querying client), flags
            // and fragment offset zeroed as Ipv4Header::emit always does.
            out[IP_OFF] = 0x45;
            out[IP_OFF + 1] = query[IP_OFF + 1];
            let total_len =
                (IPV4_HEADER_LEN + UDP_HEADER_LEN + NETCHAIN_FIXED_HEADER_LEN + value_len) as u16;
            out[IP_OFF + 2..IP_OFF + 4].copy_from_slice(&total_len.to_be_bytes());
            out[IP_OFF + 4..IP_OFF + 6].copy_from_slice(&query[IP_OFF + 4..IP_OFF + 6]);
            out[IP_OFF + 6] = 0;
            out[IP_OFF + 7] = 0;
            out[IP_OFF + 8] = query[IP_OFF + 8];
            out[IP_OFF + 9] = query[IP_OFF + 9];
            out[IP_OFF + 10] = 0;
            out[IP_OFF + 11] = 0;
            out[IP_OFF + 12..IP_OFF + 16].copy_from_slice(&responder.0);
            out[IP_OFF + 16..IP_OFF + 20].copy_from_slice(&query[IP_OFF + 12..IP_OFF + 16]);
            let csum = Ipv4Header::checksum(&out[IP_OFF..IP_OFF + IPV4_HEADER_LEN]);
            out[IP_OFF + 10..IP_OFF + 12].copy_from_slice(&csum.to_be_bytes());
            // UDP: ports swapped, length recomputed, checksum echoed.
            out[UDP_OFF..UDP_OFF + 2].copy_from_slice(&query[UDP_OFF + 2..UDP_OFF + 4]);
            out[UDP_OFF + 2..UDP_OFF + 4].copy_from_slice(&query[UDP_OFF..UDP_OFF + 2]);
            let udp_len = (UDP_HEADER_LEN + NETCHAIN_FIXED_HEADER_LEN + value_len) as u16;
            out[UDP_OFF + 4..UDP_OFF + 6].copy_from_slice(&udp_len.to_be_bytes());
            out[UDP_OFF + 6..UDP_OFF + 8].copy_from_slice(&query[UDP_OFF + 6..UDP_OFF + 8]);
            // NetChain: reply opcode, stored ordering, echoed request id and
            // key, empty chain, stored value.
            out[NC_OFF] = OpCode::from_u8(query[NC_OFF])
                .expect("validated opcode")
                .reply()
                .to_u8();
            out[NC_OFF + 1] = status.to_u8();
            out[NC_OFF + 2..NC_OFF + 4].copy_from_slice(&session.to_be_bytes());
            out[NC_OFF + 4..NC_OFF + 12].copy_from_slice(&seq.to_be_bytes());
            out[NC_OFF + 12..NC_OFF + 36].copy_from_slice(&query[NC_OFF + 12..NC_OFF + 36]);
            out[NC_OFF + 36] = 0;
            out[NC_OFF + 37..NC_OFF + 39].copy_from_slice(&(value_len as u16).to_be_bytes());
            if value_len > 0 {
                fill_value(&mut out[NC_OFF + 39..NC_OFF + 39 + value_len]);
            }
        })
    }

    /// Number of frames currently buffered.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if no frames are buffered.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The bytes of frame `i`.
    pub fn frame(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.buf[start..self.ends[i]]
    }

    /// Iterates all buffered frames in push order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.frame(i))
    }

    /// Total buffered bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Clears the frames while keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.ends.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netchain::{ChainList, OpCode, Value};

    fn sample_packet(value_len: usize, hops: usize) -> NetChainPacket {
        NetChainPacket::query(
            Ipv4Addr::for_host(3),
            40_000,
            Ipv4Addr::for_switch(0),
            OpCode::Write,
            Key::from_name("view/key"),
            Value::filled(0x5a, value_len).unwrap(),
            ChainList::new(
                (1..=hops as u32)
                    .map(Ipv4Addr::for_switch)
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            77,
        )
    }

    #[test]
    fn view_matches_owned_parser() {
        let pkt = sample_packet(32, 2);
        let bytes = pkt.to_bytes();
        let view = PacketView::parse(&bytes).unwrap();
        assert!(view.is_netchain());
        assert_eq!(view.ip.dst, pkt.ip.dst);
        assert_eq!(view.netchain.op(), OpCode::Write);
        assert_eq!(view.netchain.key(), pkt.netchain.key);
        assert_eq!(view.netchain.seq(), pkt.netchain.seq);
        assert_eq!(view.netchain.request_id(), 77);
        assert_eq!(view.netchain.chain_len(), 2);
        assert_eq!(
            view.netchain.hops().collect::<Vec<_>>(),
            pkt.netchain.chain.hops()
        );
        assert_eq!(view.netchain.value(), pkt.netchain.value.as_bytes());
        assert_eq!(view.to_owned(), pkt);
    }

    #[test]
    fn view_rejects_truncation_like_owned_parser() {
        let pkt = sample_packet(16, 1);
        let payload = pkt.payload_bytes();
        for cut in 0..payload.len() {
            let view_err = NetChainView::parse(&payload[..cut]).is_err();
            let owned_err = NetChainHeader::parse(&payload[..cut]).is_err();
            assert_eq!(view_err, owned_err, "divergence at cut {cut}");
            assert!(view_err, "truncated input accepted at cut {cut}");
        }
    }

    #[test]
    fn view_rejects_bad_enum_bytes() {
        let pkt = sample_packet(0, 0);
        let mut payload = pkt.payload_bytes();
        payload[0] = 0xfe;
        assert!(matches!(
            NetChainView::parse(&payload).unwrap_err(),
            WireError::UnknownOpCode(0xfe)
        ));
        let mut payload = pkt.payload_bytes();
        payload[1] = 0x77;
        assert!(matches!(
            NetChainView::parse(&payload).unwrap_err(),
            WireError::UnknownStatus(0x77)
        ));
    }

    #[test]
    fn batch_encoder_roundtrips_frames() {
        let mut enc = BatchEncoder::with_capacity(8, 128);
        let pkts: Vec<NetChainPacket> = (0..5).map(|i| sample_packet(i * 8, i % 3)).collect();
        for p in &pkts {
            enc.push(p).unwrap();
        }
        assert_eq!(enc.len(), 5);
        for (frame, pkt) in enc.frames().zip(&pkts) {
            assert_eq!(&PacketView::parse(frame).unwrap().to_owned(), pkt);
        }
        let cap = enc.byte_len();
        enc.clear();
        assert!(enc.is_empty());
        assert_eq!(enc.byte_len(), 0);
        let _ = cap;
    }
}
