//! IPv4 header parsing and emission.
//!
//! NetChain routing (§4.2) works by rewriting the destination IP of a query to
//! the next chain hop and letting ordinary L3 forwarding deliver it, so the
//! IPv4 header is the one piece of the underlay the protocol actively
//! manipulates. The header checksum is recomputed on every rewrite, exactly as
//! a real switch pipeline would.

use crate::error::{WireError, WireResult};
use std::fmt;

/// Length in bytes of an IPv4 header without options (IHL = 5).
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 address. A thin wrapper around four octets so the crate stays
/// independent of `std::net` socket types (the simulator uses these addresses
/// purely as identifiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0, 0, 0, 0]);

    /// Builds an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// Deterministic address for a switch with the given id (`10.0.s.s`-style
    /// addressing used by the simulator and the loopback deployment).
    pub fn for_switch(id: u32) -> Self {
        Ipv4Addr([10, 0, (id >> 8) as u8, (id & 0xff) as u8])
    }

    /// Deterministic address for a host (client/server) with the given id.
    pub fn for_host(id: u32) -> Self {
        Ipv4Addr([10, 1, (id >> 8) as u8, (id & 0xff) as u8])
    }

    /// Deterministic address for the controller.
    pub fn for_controller() -> Self {
        Ipv4Addr([10, 255, 0, 1])
    }

    /// Interprets the address as a big-endian `u32`.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds an address from a big-endian `u32`.
    pub fn from_u32(v: u32) -> Self {
        Ipv4Addr(v.to_be_bytes())
    }

    /// True if this is the unspecified address.
    pub fn is_unspecified(self) -> bool {
        self == Self::UNSPECIFIED
    }

    /// Converts to a `std::net::Ipv4Addr` (used by the UDP loopback mode).
    pub fn to_std(self) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::new(self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Converts from a `std::net::Ipv4Addr`.
    pub fn from_std(addr: std::net::Ipv4Addr) -> Self {
        Ipv4Addr(addr.octets())
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol numbers relevant to NetChain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// UDP (17) — all NetChain queries.
    Udp,
    /// TCP (6) — used by the server-based baseline's transport emulation.
    Tcp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl Protocol {
    /// Numeric protocol value.
    pub fn to_u8(self) -> u8 {
        match self {
            Protocol::Udp => 17,
            Protocol::Tcp => 6,
            Protocol::Other(v) => v,
        }
    }

    /// Decodes the protocol field.
    pub fn from_u8(v: u8) -> Self {
        match v {
            17 => Protocol::Udp,
            6 => Protocol::Tcp,
            other => Protocol::Other(other),
        }
    }
}

/// An IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services code point / ECN byte. NetChain queries can be
    /// prioritised (§4.4 suggests prioritising coordination traffic), which
    /// the simulator models through this field.
    pub dscp_ecn: u8,
    /// Total length of the IPv4 packet (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field (used only for diagnostics; NetChain never
    /// fragments).
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Encapsulated protocol.
    pub protocol: Protocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address — rewritten hop by hop along the chain.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Default TTL used for freshly generated queries.
    pub const DEFAULT_TTL: u8 = 64;

    /// Builds a UDP-carrying header for a payload of `payload_len` bytes.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            identification: 0,
            ttl: Self::DEFAULT_TTL,
            protocol: Protocol::Udp,
            src,
            dst,
        }
    }

    /// Serialized length of this header (always [`IPV4_HEADER_LEN`]).
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN
    }

    /// Computes the standard internet checksum over a serialized header with
    /// its checksum field zeroed.
    pub fn checksum(bytes: &[u8]) -> u16 {
        let mut sum: u32 = 0;
        let mut chunks = bytes.chunks_exact(2);
        for chunk in &mut chunks {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// Emits the header (with a freshly computed checksum) into `out`,
    /// returning the number of bytes written.
    pub fn emit(&self, out: &mut [u8]) -> WireResult<usize> {
        if out.len() < IPV4_HEADER_LEN {
            return Err(WireError::BufferTooSmall {
                needed: IPV4_HEADER_LEN,
                available: out.len(),
            });
        }
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]); // flags / fragment offset: never fragmented
        out[8] = self.ttl;
        out[9] = self.protocol.to_u8();
        out[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
        out[12..16].copy_from_slice(&self.src.0);
        out[16..20].copy_from_slice(&self.dst.0);
        let csum = Self::checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
        Ok(IPV4_HEADER_LEN)
    }

    /// Parses a header from the front of `buf`, verifying version, IHL and
    /// checksum, and returning it plus the number of bytes consumed.
    pub fn parse(buf: &[u8]) -> WireResult<(Self, usize)> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: IPV4_HEADER_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::InvalidField {
                layer: "ipv4",
                field: "version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(WireError::InvalidField {
                layer: "ipv4",
                field: "ihl",
                value: ihl as u64,
            });
        }
        let carried = u16::from_be_bytes([buf[10], buf[11]]);
        let mut zeroed = [0u8; IPV4_HEADER_LEN];
        zeroed.copy_from_slice(&buf[..IPV4_HEADER_LEN]);
        zeroed[10] = 0;
        zeroed[11] = 0;
        let computed = Self::checksum(&zeroed);
        if carried != computed {
            return Err(WireError::BadChecksum {
                expected: carried,
                computed,
            });
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if usize::from(total_len) < IPV4_HEADER_LEN {
            return Err(WireError::InvalidField {
                layer: "ipv4",
                field: "total_len",
                value: u64::from(total_len),
            });
        }
        let header = Ipv4Header {
            dscp_ecn: buf[1],
            total_len,
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            protocol: Protocol::from_u8(buf[9]),
            src: Ipv4Addr([buf[12], buf[13], buf[14], buf[15]]),
            dst: Ipv4Addr([buf[16], buf[17], buf[18], buf[19]]),
        };
        Ok((header, IPV4_HEADER_LEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_constructors_are_disjoint() {
        assert_ne!(Ipv4Addr::for_switch(1), Ipv4Addr::for_host(1));
        assert_ne!(Ipv4Addr::for_switch(1), Ipv4Addr::for_controller());
        assert_eq!(Ipv4Addr::for_switch(258), Ipv4Addr::new(10, 0, 1, 2));
    }

    #[test]
    fn address_u32_roundtrip() {
        let addr = Ipv4Addr::new(10, 0, 3, 77);
        assert_eq!(Ipv4Addr::from_u32(addr.to_u32()), addr);
        assert_eq!(addr.to_string(), "10.0.3.77");
    }

    #[test]
    fn std_conversion_roundtrip() {
        let addr = Ipv4Addr::new(127, 0, 0, 1);
        assert_eq!(Ipv4Addr::from_std(addr.to_std()), addr);
    }

    #[test]
    fn header_roundtrip_and_checksum() {
        let hdr = Ipv4Header::udp(Ipv4Addr::for_host(0), Ipv4Addr::for_switch(2), 40);
        let mut buf = [0u8; IPV4_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        let (parsed, consumed) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(consumed, IPV4_HEADER_LEN);
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let hdr = Ipv4Header::udp(Ipv4Addr::for_host(0), Ipv4Addr::for_switch(2), 40);
        let mut buf = [0u8; IPV4_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        buf[17] ^= 0x40;
        assert!(matches!(
            Ipv4Header::parse(&buf).unwrap_err(),
            WireError::BadChecksum { .. }
        ));
    }

    #[test]
    fn rejects_wrong_version_and_truncation() {
        let hdr = Ipv4Header::udp(Ipv4Addr::for_host(0), Ipv4Addr::for_switch(2), 0);
        let mut buf = [0u8; IPV4_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        let mut bad = buf;
        bad[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&bad).unwrap_err(),
            WireError::InvalidField {
                field: "version",
                ..
            }
        ));
        assert!(matches!(
            Ipv4Header::parse(&buf[..10]).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn checksum_of_valid_header_verifies_to_zero_sum() {
        // Classic property: summing a header including its checksum yields 0xffff.
        let hdr = Ipv4Header::udp(Ipv4Addr::for_host(3), Ipv4Addr::for_switch(9), 100);
        let mut buf = [0u8; IPV4_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        let mut sum: u32 = 0;
        for chunk in buf.chunks_exact(2) {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(sum, 0xffff);
    }

    #[test]
    fn protocol_roundtrip() {
        for p in [Protocol::Udp, Protocol::Tcp, Protocol::Other(89)] {
            assert_eq!(Protocol::from_u8(p.to_u8()), p);
        }
    }
}
