//! Control-plane event journal: a general phase/span recorder.
//!
//! `FailoverTimeline` in netchain-livectl hard-codes one specific sequence of
//! control-plane moments (kill → failover → repair). The journal generalises
//! that into named instants and spans so the sim `Controller`, the live
//! controller, and any future orchestration can all record what happened and
//! when, and exporters can render the result uniformly.

/// A named instantaneous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instant {
    /// Event name, e.g. `"failure-detected"`.
    pub name: String,
    /// Time in nanoseconds (sim time or wall-clock since run start).
    pub at_ns: u64,
}

/// A named interval. Open spans (`end_ns == None`) are legal and mean the
/// phase had not finished when the journal was exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name, e.g. `"chain-repair"` or `"sync-group:3"`.
    pub name: String,
    /// Start time in nanoseconds.
    pub start_ns: u64,
    /// End time in nanoseconds, if the span closed.
    pub end_ns: Option<u64>,
}

impl Span {
    /// Duration in nanoseconds, if closed.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

/// An append-only record of control-plane instants and spans.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    instants: Vec<Instant>,
    spans: Vec<Span>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an instantaneous event.
    pub fn instant(&mut self, name: impl Into<String>, at_ns: u64) {
        self.instants.push(Instant {
            name: name.into(),
            at_ns,
        });
    }

    /// Opens a span; returns a handle used to close it. Spans may nest and
    /// interleave freely.
    pub fn begin(&mut self, name: impl Into<String>, at_ns: u64) -> SpanHandle {
        self.spans.push(Span {
            name: name.into(),
            start_ns: at_ns,
            end_ns: None,
        });
        SpanHandle(self.spans.len() - 1)
    }

    /// Closes the span behind `handle`.
    pub fn end(&mut self, handle: SpanHandle, at_ns: u64) {
        let span = &mut self.spans[handle.0];
        debug_assert!(span.end_ns.is_none(), "span {:?} closed twice", span.name);
        span.end_ns = Some(at_ns);
    }

    /// Records an already-known interval in one call.
    pub fn span(&mut self, name: impl Into<String>, start_ns: u64, end_ns: u64) {
        self.spans.push(Span {
            name: name.into(),
            start_ns,
            end_ns: Some(end_ns),
        });
    }

    /// All instants, in recording order.
    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    /// All spans, in opening order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// First span with the given name, if any.
    pub fn find_span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// First instant with the given name, if any.
    pub fn find_instant(&self, name: &str) -> Option<&Instant> {
        self.instants.iter().find(|i| i.name == name)
    }

    /// Appends another journal's events (e.g. merging the sim controller's
    /// journal into the run-level one).
    pub fn extend(&mut self, other: &Journal) {
        self.instants.extend_from_slice(&other.instants);
        self.spans.extend_from_slice(&other.spans);
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.instants.is_empty() && self.spans.is_empty()
    }

    /// Renders a chronological human-readable listing, one event per line,
    /// times in milliseconds.
    pub fn to_table(&self) -> String {
        #[derive(Clone)]
        enum Row<'a> {
            I(&'a Instant),
            S(&'a Span),
        }
        let mut rows: Vec<(u64, Row)> = self
            .instants
            .iter()
            .map(|i| (i.at_ns, Row::I(i)))
            .chain(self.spans.iter().map(|s| (s.start_ns, Row::S(s))))
            .collect();
        rows.sort_by_key(|(at, _)| *at);
        let mut out = String::new();
        for (_, row) in rows {
            match row {
                Row::I(i) => {
                    out.push_str(&format!(
                        "  @{:>10.3}ms  {}\n",
                        i.at_ns as f64 / 1e6,
                        i.name
                    ));
                }
                Row::S(s) => match s.end_ns {
                    Some(end) => out.push_str(&format!(
                        "  @{:>10.3}ms  {} ({:.3}ms)\n",
                        s.start_ns as f64 / 1e6,
                        s.name,
                        (end.saturating_sub(s.start_ns)) as f64 / 1e6,
                    )),
                    None => out.push_str(&format!(
                        "  @{:>10.3}ms  {} (open)\n",
                        s.start_ns as f64 / 1e6,
                        s.name,
                    )),
                },
            }
        }
        out
    }
}

/// Handle returned by [`Journal::begin`], consumed by [`Journal::end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_round_trip() {
        let mut j = Journal::new();
        j.instant("failure-detected", 1_000_000);
        let h = j.begin("fast-failover", 1_100_000);
        j.end(h, 1_600_000);
        j.span("chain-repair", 2_000_000, 9_000_000);

        assert_eq!(j.instants().len(), 1);
        assert_eq!(j.spans().len(), 2);
        assert_eq!(
            j.find_span("fast-failover").unwrap().duration_ns(),
            Some(500_000)
        );
        assert_eq!(j.find_instant("failure-detected").unwrap().at_ns, 1_000_000);
        assert!(j.find_span("nope").is_none());
    }

    #[test]
    fn open_span_has_no_duration() {
        let mut j = Journal::new();
        j.begin("still-running", 5);
        assert_eq!(j.spans()[0].duration_ns(), None);
        let table = j.to_table();
        assert!(table.contains("still-running (open)"));
    }

    #[test]
    fn extend_merges_journals() {
        let mut a = Journal::new();
        a.instant("x", 1);
        let mut b = Journal::new();
        b.span("y", 2, 3);
        a.extend(&b);
        assert_eq!(a.instants().len(), 1);
        assert_eq!(a.spans().len(), 1);
        assert!(!a.is_empty());
        assert!(Journal::new().is_empty());
    }

    #[test]
    fn table_is_chronological() {
        let mut j = Journal::new();
        j.span("later", 3_000_000, 4_000_000);
        j.instant("earlier", 1_000_000);
        let table = j.to_table();
        let e = table.find("earlier").unwrap();
        let l = table.find("later").unwrap();
        assert!(e < l);
    }
}
