//! The metric registry: named counters behind one API, a time-bucketed
//! event series, and a lock-free publication channel for live progress
//! reads.
//!
//! Design rule: hot paths own plain `u64` fields (single-writer, no atomics,
//! no false sharing) and *publish* to shared [`AtomicU64`] cells at batch
//! boundaries with relaxed stores. Readers on other threads get a recent —
//! not instantaneous — view, which is all a progress watchdog or rate
//! sampler needs, and the per-packet cost stays at zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Types that expose their counters as a flat named list. Implemented by
/// `ShardStats`, `ClientReport`, and friends so exporters, tables, and
/// aggregation all go through one surface instead of per-struct glue.
pub trait Metrics {
    /// Counter names, in a fixed order matching [`metric_values`](Self::metric_values).
    fn metric_names(&self) -> &'static [&'static str];

    /// Current counter values, same order as names.
    fn metric_values(&self) -> Vec<u64>;

    /// Convenience: `(name, value)` pairs.
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        self.metric_names()
            .iter()
            .copied()
            .zip(self.metric_values())
            .collect()
    }

    /// Looks up one counter by name.
    fn metric(&self, name: &str) -> Option<u64> {
        self.metric_names()
            .iter()
            .position(|&n| n == name)
            .map(|i| self.metric_values()[i])
    }
}

/// Element-wise sums the metric values of many instances of one type.
pub fn sum_metrics<'a, M: Metrics + 'a, I: IntoIterator<Item = &'a M>>(
    parts: I,
) -> Vec<(&'static str, u64)> {
    let mut acc: Option<(&'static [&'static str], Vec<u64>)> = None;
    for m in parts {
        match &mut acc {
            None => acc = Some((m.metric_names(), m.metric_values())),
            Some((_, vals)) => {
                for (a, b) in vals.iter_mut().zip(m.metric_values()) {
                    *a += b;
                }
            }
        }
    }
    match acc {
        Some((names, vals)) => names.iter().copied().zip(vals).collect(),
        None => Vec::new(),
    }
}

/// Counts events into fixed-width time buckets (nanosecond timestamps) and
/// reports per-bucket rates. This is the engine behind both the simulator's
/// `ThroughputSeries` and livectl's live rate slices.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_ns: u64,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width in nanoseconds.
    pub fn new(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be non-zero");
        TimeSeries {
            bucket_ns,
            buckets: Vec::new(),
        }
    }

    /// Bucket width in nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Records `n` events at time `at_ns`.
    #[inline]
    pub fn record_n(&mut self, at_ns: u64, n: u64) {
        let idx = (at_ns / self.bucket_ns) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// Records one event at time `at_ns`.
    #[inline]
    pub fn record(&mut self, at_ns: u64) {
        self.record_n(at_ns, 1);
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// The series as `(bucket start in seconds, events per second)`.
    pub fn rate_series(&self) -> Vec<(f64, f64)> {
        let width_s = self.bucket_ns as f64 / 1e9;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * width_s, c as f64 / width_s))
            .collect()
    }

    /// Average rate (events per second) over `[0, end_ns]`.
    pub fn average_rate(&self, end_ns: u64) -> f64 {
        let secs = end_ns as f64 / 1e9;
        if secs <= 0.0 {
            0.0
        } else {
            self.total() as f64 / secs
        }
    }

    /// Merges another series (same bucket width) into this one.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bucket_ns, other.bucket_ns,
            "cannot merge series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// A set of named atomic cells shared between one publisher and any number
/// of readers. The publisher keeps plain local counters and calls
/// [`publish`](LiveCounters::publish) at batch boundaries; relaxed ordering
/// is enough because readers only want a recent total, not a synchronised
/// one.
#[derive(Debug, Clone)]
pub struct LiveCounters {
    names: &'static [&'static str],
    cells: Arc<Vec<AtomicU64>>,
}

impl LiveCounters {
    /// Creates a zeroed cell set for the given counter names.
    pub fn new(names: &'static [&'static str]) -> Self {
        LiveCounters {
            names,
            cells: Arc::new((0..names.len()).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// The counter names.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Publishes current local values (same order as names). Relaxed
    /// stores: one cheap instruction per counter, no fences on the hot
    /// path.
    #[inline]
    pub fn publish(&self, values: &[u64]) {
        debug_assert_eq!(values.len(), self.names.len());
        for (cell, &v) in self.cells.iter().zip(values) {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Publishes everything a [`Metrics`] implementor exposes.
    pub fn publish_metrics<M: Metrics>(&self, m: &M) {
        self.publish(&m.metric_values());
    }

    /// Reads a recent snapshot of all counters.
    pub fn read(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Reads one counter by name.
    pub fn read_one(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|&n| n == name)
            .map(|i| self.cells[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        a: u64,
        b: u64,
    }

    impl Metrics for Fake {
        fn metric_names(&self) -> &'static [&'static str] {
            &["alpha", "beta"]
        }
        fn metric_values(&self) -> Vec<u64> {
            vec![self.a, self.b]
        }
    }

    #[test]
    fn metrics_trait_surface() {
        let f = Fake { a: 3, b: 9 };
        assert_eq!(f.metrics(), vec![("alpha", 3), ("beta", 9)]);
        assert_eq!(f.metric("beta"), Some(9));
        assert_eq!(f.metric("gamma"), None);
    }

    #[test]
    fn sum_metrics_elementwise() {
        let parts = [Fake { a: 1, b: 2 }, Fake { a: 10, b: 20 }];
        assert_eq!(sum_metrics(parts.iter()), vec![("alpha", 11), ("beta", 22)]);
        let none: [Fake; 0] = [];
        assert!(sum_metrics(none.iter()).is_empty());
    }

    #[test]
    fn time_series_buckets_and_rates() {
        let mut s = TimeSeries::new(1_000_000_000);
        s.record(0);
        s.record(400_000_000);
        s.record(1_700_000_000);
        s.record_n(2_100_000_000, 10);
        assert_eq!(s.total(), 13);
        let series = s.rate_series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (0.0, 2.0));
        assert_eq!(series[1], (1.0, 1.0));
        assert_eq!(series[2], (2.0, 10.0));
        assert!((s.average_rate(13_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_merge() {
        let mut a = TimeSeries::new(100);
        a.record(50);
        let mut b = TimeSeries::new(100);
        b.record(250);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn time_series_merge_width_mismatch() {
        let mut a = TimeSeries::new(100);
        a.merge(&TimeSeries::new(200));
    }

    #[test]
    fn live_counters_publish_read() {
        let live = LiveCounters::new(&["ops", "drops"]);
        let reader = live.clone();
        live.publish(&[42, 3]);
        assert_eq!(reader.read(), vec![42, 3]);
        assert_eq!(reader.read_one("drops"), Some(3));
        assert_eq!(reader.read_one("nope"), None);
        live.publish_metrics(&Fake { a: 7, b: 8 });
        // Fake publishes two values into the two cells.
        assert_eq!(reader.read(), vec![7, 8]);
    }
}
