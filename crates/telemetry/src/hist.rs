//! Log-bucketed latency histograms with mergeable snapshots.
//!
//! The bucket layout is an HdrHistogram-style log-linear scheme: values below
//! `2^SUB_BITS` get their own bucket (exact), and every power-of-two range
//! above that is split into `2^SUB_BITS` linear sub-buckets. With
//! `SUB_BITS = 5` the maximum relative quantile error is `2^-5 ≈ 3.1%`,
//! which is far below run-to-run noise for any latency this repo measures,
//! while the whole table stays under 2 KB of counts.
//!
//! Recording is branch-light integer math (a `leading_zeros` and two shifts)
//! and never allocates after construction, so it is safe to call on the
//! fabric's per-packet path.

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS; // 32
/// Number of power-of-two ranges above the exact region: exponents
/// `SUB_BITS..=63` cover the full u64 domain.
const RANGES: usize = 64 - SUB_BITS as usize;
/// Total bucket count: the exact region plus the log-linear ranges.
pub const BUCKETS: usize = SUB_COUNT + RANGES * SUB_COUNT;

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        SUB_COUNT + (exp - SUB_BITS) as usize * SUB_COUNT + sub
    }
}

/// The largest value that maps into bucket `idx` (inclusive upper bound).
/// Quantile queries report this bound, so they never under-report.
#[inline]
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB_COUNT {
        idx as u64
    } else {
        let rel = idx - SUB_COUNT;
        let exp = (rel / SUB_COUNT) as u32 + SUB_BITS;
        let sub = (rel % SUB_COUNT) as u128;
        let base = 1u128 << exp;
        let width = 1u128 << (exp - SUB_BITS);
        // The topmost bucket's bound exceeds u64::MAX; clamp it.
        (base + (sub + 1) * width - 1).min(u128::from(u64::MAX)) as u64
    }
}

/// A single-writer latency histogram. Values are `u64` (nanoseconds by
/// convention, but the math is unit-agnostic).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Freezes the current state into a mergeable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.counts.to_vec(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// An immutable, mergeable view of a histogram. Merging is element-wise and
/// therefore associative, commutative, and order-independent (see the
/// proptest suite).
#[derive(Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl std::fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistSnapshot")
            .field("count", &self.count)
            .field("quantiles", &self.quantiles())
            .finish()
    }
}

impl HistSnapshot {
    /// An empty snapshot (the identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merges an iterator of snapshots into one.
    pub fn merged<'a, I: IntoIterator<Item = &'a HistSnapshot>>(parts: I) -> Self {
        let mut out = Self::empty();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) by nearest rank, reported as the
    /// containing bucket's inclusive upper bound (clamped to the observed
    /// max). Returns `None` if the snapshot is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Iterates every bucket in ascending value order as
    /// `(inclusive upper bound, count)` pairs — [`BUCKETS`] entries, zero
    /// counts included so consumers can rebin without guessing the layout.
    /// The topmost bucket's bound is clamped to `u64::MAX` (its true range
    /// end exceeds the u64 domain).
    pub fn buckets(&self) -> impl Iterator<Item = HistBucket> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(idx, &count)| HistBucket {
                upper_bound: bucket_upper_bound(idx),
                count,
            })
    }

    /// Folds the full-resolution buckets into `n` coarse bins by index range
    /// (bin `k` covers buckets `[k*BUCKETS/n, (k+1)*BUCKETS/n)`), returning
    /// the per-bin counts. The binning is fixed — independent of the data —
    /// so successive snapshots of the same histogram can be diffed bin-wise,
    /// which is what the in-band stat probes and `ops_top` sparklines rely
    /// on.
    pub fn coarse_counts(&self, n: usize) -> Vec<u64> {
        assert!(n > 0 && n <= BUCKETS, "bin count must be in 1..=BUCKETS");
        let mut out = vec![0u64; n];
        for (idx, &c) in self.counts.iter().enumerate() {
            out[idx * n / BUCKETS] += c;
        }
        out
    }

    /// The standard summary tuple used by every exporter.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count,
            mean_ns: self.mean(),
            min_ns: self.min().unwrap_or(0),
            p50_ns: self.quantile(0.50).unwrap_or(0),
            p90_ns: self.quantile(0.90).unwrap_or(0),
            p99_ns: self.quantile(0.99).unwrap_or(0),
            p999_ns: self.quantile(0.999).unwrap_or(0),
            max_ns: self.max().unwrap_or(0),
        }
    }
}

/// One bucket of a [`HistSnapshot`]: the inclusive upper bound of its value
/// range and the number of samples that fell into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Largest value that maps into this bucket (clamped to `u64::MAX` for
    /// the topmost bucket).
    pub upper_bound: u64,
    /// Samples recorded in this bucket.
    pub count: u64,
}

/// Summary statistics of a latency distribution, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Minimum.
    pub min_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl Quantiles {
    /// Renders as a compact one-line human summary in microseconds.
    pub fn to_line(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us p999={:.1}us max={:.1}us",
            self.count,
            self.mean_ns / 1e3,
            self.p50_ns as f64 / 1e3,
            self.p90_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.p999_ns as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact oracle: nearest-rank percentile over a sorted vector.
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // With one sample per bucket, each quantile lands exactly.
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(s.quantile(q), Some(v), "q={q}");
        }
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(31));
    }

    #[test]
    fn bucket_bounds_cover_index_roundtrip() {
        // Every bucket's upper bound must map back into that bucket, and the
        // next value must map to a later bucket.
        for idx in 0..BUCKETS {
            let hi = bucket_upper_bound(idx);
            assert_eq!(bucket_index(hi), idx, "upper bound of {idx}");
            if let Some(next) = hi.checked_add(1) {
                assert!(bucket_index(next) > idx, "value after bucket {idx}");
            }
        }
    }

    #[test]
    fn quantiles_within_relative_error_of_oracle() {
        // A spread of magnitudes: exact region, microseconds, milliseconds.
        let mut vals: Vec<u64> = Vec::new();
        let mut x: u64 = 3;
        for i in 0..10_000u64 {
            // Deterministic pseudo-random walk across several decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mag = 1u64 << (i % 24); // up to ~16M ns
            vals.push(x % mag.max(1));
        }
        let mut h = LatencyHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let approx = s.quantile(q).unwrap();
            // The histogram reports the bucket's upper bound, so it can only
            // over-report, and by at most 2^-SUB_BITS relative error.
            assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            let err = (approx - exact) as f64 / (exact.max(1)) as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q={q}: err {err}");
        }
        assert_eq!(s.count(), sorted.len() as u64);
        assert_eq!(s.min(), Some(sorted[0]));
        assert_eq!(s.max(), Some(*sorted.last().unwrap()));
        let exact_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
        assert!((s.mean() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_single_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [1u64, 50, 999, 123_456, 7_000_000, 42] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 31, 32, 1_000_000_000, 17] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn empty_snapshot_behaviour() {
        let s = HistSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
        let q = s.quantiles();
        assert_eq!(q.count, 0);
        assert_eq!(q.p99_ns, 0);
    }

    #[test]
    fn bucket_iteration_matches_sorted_vector_oracle() {
        // The bucket iterator must reproduce the histogram exactly: same
        // total count, counts in the right ranges, and quantiles recomputed
        // from the iterated buckets must equal HistSnapshot::quantile.
        let mut vals: Vec<u64> = Vec::new();
        let mut x: u64 = 9;
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            vals.push(x % (1u64 << (i % 40)).max(1));
        }
        let mut h = LatencyHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();

        let buckets: Vec<HistBucket> = s.buckets().collect();
        assert_eq!(buckets.len(), BUCKETS);
        // Upper bounds strictly increase until the clamp region.
        for w in buckets.windows(2) {
            assert!(w[0].upper_bound <= w[1].upper_bound);
        }
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), s.count());

        // Oracle: every sample must fall inside its bucket's range, checked
        // by counting how many sorted samples fit under each upper bound.
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut cumulative = 0u64;
        for b in &buckets {
            cumulative += b.count;
            let oracle = sorted.partition_point(|&v| v <= b.upper_bound) as u64;
            assert_eq!(
                cumulative, oracle,
                "cumulative count diverges at bound {}",
                b.upper_bound
            );
        }

        // Quantiles recomputed from the iterated buckets equal the built-ins.
        for &q in &[0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * s.count() as f64).ceil() as u64).clamp(1, s.count());
            let mut seen = 0u64;
            let mut from_iter = None;
            for b in &buckets {
                seen += b.count;
                if seen >= rank {
                    from_iter = Some(b.upper_bound.min(s.max().unwrap()));
                    break;
                }
            }
            assert_eq!(from_iter, s.quantile(q), "q={q}");
        }
    }

    #[test]
    fn topmost_bucket_is_clamped_and_iterable() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        let last = s.buckets().last().unwrap();
        assert_eq!(last.upper_bound, u64::MAX);
        assert_eq!(last.count, 1);
        // The clamped bound still round-trips through quantile logic.
        assert_eq!(s.quantile(1.0), Some(u64::MAX));
        // And the occupied bucket found by iteration is the last one.
        let occupied: Vec<HistBucket> = s.buckets().filter(|b| b.count > 0).collect();
        assert_eq!(occupied, vec![last]);
    }

    #[test]
    fn coarse_counts_preserve_totals_and_are_diffable() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 5, 40, 1_000, 50_000, 2_000_000, u64::MAX] {
            h.record(v);
        }
        let a = h.snapshot().coarse_counts(8);
        assert_eq!(a.len(), 8);
        assert_eq!(a.iter().sum::<u64>(), 7);
        // Recording more samples only grows bins: cumulative snapshots of
        // the same histogram are bin-wise diffable.
        h.record(2);
        h.record(u64::MAX - 1);
        let b = h.snapshot().coarse_counts(8);
        for (x, y) in a.iter().zip(&b) {
            assert!(y >= x);
        }
        assert_eq!(b.iter().sum::<u64>(), 9);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.max(), Some(u64::MAX));
        assert_eq!(s.quantile(1.0), Some(u64::MAX));
    }
}
