//! Structured run exports: a dependency-free JSON value tree and a
//! JSON-lines artifact writer.
//!
//! Every experiment bin emits one `BENCH_<name>.jsonl` file — one JSON
//! object per line, each line a self-describing record (`"record"` key names
//! its kind) — so perf can be tracked and diffed across PRs with ordinary
//! text tooling. The output directory is `$NETCHAIN_ARTIFACT_DIR` when set,
//! else the current directory.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use crate::hist::Quantiles;
use crate::journal::Journal;
use crate::trace::{
    ip_to_string, path_to_string, Evidence, EvidenceOp, HopRole, HopStamp, PacketTrace,
    TraceSummary,
};

/// A JSON value. The repo builds without serde (offline, no new deps), so
/// this mirrors the hand-rolled rendering already used by
/// `netchain-experiments::series`, but as a reusable tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (covers every counter in the repo).
    U64(u64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses JSON text back into a [`Json`] tree (the inverse of
    /// [`Json::render`]). Accepts standard JSON: the bench gate uses this to
    /// read committed `BENCH_*.json` baselines without pulling in serde.
    ///
    /// Number mapping mirrors the enum: non-negative integers that fit a
    /// `u64` become [`Json::U64`]; everything else (fractions, exponents,
    /// negatives) becomes [`Json::F64`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Navigates a dotted key path with optional array indices, e.g.
    /// `"latency[0].quantiles.p99_ns"`. Returns `None` when any step is
    /// missing or the shape does not match.
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for part in path.split('.') {
            if part.is_empty() {
                return None;
            }
            let (key, indices) = match part.find('[') {
                Some(b) => (&part[..b], &part[b..]),
                None => (part, ""),
            };
            if !key.is_empty() {
                match cur {
                    Json::Obj(pairs) => {
                        cur = &pairs.iter().find(|(k, _)| k == key)?.1;
                    }
                    _ => return None,
                }
            }
            for idx in indices.split_terminator(']') {
                let idx: usize = idx.strip_prefix('[')?.parse().ok()?;
                match cur {
                    Json::Arr(items) => cur = items.get(idx)?,
                    _ => return None,
                }
            }
        }
        Some(cur)
    }

    /// The value as a number, unifying [`Json::U64`] and [`Json::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact `u64`. Unlike [`Json::as_f64`] this never
    /// rounds: trace IDs routinely exceed 2^53 and would lose their low
    /// bits through a double. Integral non-negative floats in the exact
    /// range still convert (a lenient producer may have written `3.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::F64(v) if *v >= 0.0 && *v <= (1u64 << 53) as f64 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON reader over raw bytes. Errors carry the byte
/// offset so a malformed bench file points at itself.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in bench files;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came from a &str
                    // and `pos` only ever advances by whole chars, so the
                    // suffix is valid UTF-8.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("bad utf-8")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

impl From<Quantiles> for Json {
    fn from(q: Quantiles) -> Json {
        Json::obj(vec![
            ("count", Json::U64(q.count)),
            ("mean_ns", Json::F64(q.mean_ns)),
            ("min_ns", Json::U64(q.min_ns)),
            ("p50_ns", Json::U64(q.p50_ns)),
            ("p90_ns", Json::U64(q.p90_ns)),
            ("p99_ns", Json::U64(q.p99_ns)),
            ("p999_ns", Json::U64(q.p999_ns)),
            ("max_ns", Json::U64(q.max_ns)),
        ])
    }
}

impl From<&Journal> for Json {
    fn from(j: &Journal) -> Json {
        Json::obj(vec![
            (
                "instants",
                Json::Arr(
                    j.instants()
                        .iter()
                        .map(|i| {
                            Json::obj(vec![
                                ("name", Json::str(&i.name)),
                                ("at_ns", Json::U64(i.at_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Arr(
                    j.spans()
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(&s.name)),
                                ("start_ns", Json::U64(s.start_ns)),
                                ("end_ns", s.end_ns.map(Json::U64).unwrap_or(Json::Null)),
                                (
                                    "duration_ns",
                                    s.duration_ns().map(Json::U64).unwrap_or(Json::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl From<&TraceSummary> for Json {
    fn from(s: &TraceSummary) -> Json {
        Json::obj(vec![
            ("traces", Json::U64(s.traces as u64)),
            (
                "paths",
                Json::Arr(
                    s.paths
                        .iter()
                        .map(|(p, n)| {
                            Json::obj(vec![
                                ("path", Json::str(path_to_string(p))),
                                ("count", Json::U64(*n as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "transitions",
                Json::Arr(
                    s.transitions
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("from", Json::str(ip_to_string(t.from_ip))),
                                ("to", Json::str(ip_to_string(t.to_ip))),
                                ("latency", Json::from(t.quantiles())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Version of the per-trace JSONL record format.
///
/// * **1** — hops are bare `(ip, at_ns)` pairs (pre-evidence producers).
/// * **2** — hops may carry an evidence payload (`op`, `role`, `ok`,
///   `key_fp`, `session`, `seq`).
///
/// [`trace_from_json`] accepts 1 and 2 (a missing `schema` field reads as 1)
/// and rejects anything higher, so old artifacts stay decodable and future
/// bumps fail loudly instead of mis-parsing.
pub const TRACE_SCHEMA: u64 = 2;

/// Renders one [`PacketTrace`] as the fields of a `"trace"` JSONL record
/// (schema [`TRACE_SCHEMA`]). Pass straight to [`ArtifactWriter::record`].
pub fn trace_record_fields(t: &PacketTrace) -> Vec<(&'static str, Json)> {
    let hops = t
        .hops
        .iter()
        .map(|h| {
            let mut pairs = vec![
                ("ip", Json::U64(u64::from(h.hop_ip))),
                ("at_ns", Json::U64(h.at_ns)),
            ];
            if let Some(ev) = &h.evidence {
                pairs.push(("op", Json::str(ev.op.label())));
                pairs.push(("role", Json::str(ev.role.label())));
                pairs.push(("ok", Json::Bool(ev.ok)));
                pairs.push(("key_fp", Json::U64(u64::from(ev.key_fp))));
                pairs.push(("session", Json::U64(ev.session)));
                pairs.push(("seq", Json::U64(ev.seq)));
            }
            Json::obj(pairs)
        })
        .collect();
    vec![
        ("schema", Json::U64(TRACE_SCHEMA)),
        ("id", Json::U64(t.id)),
        ("hops", Json::Arr(hops)),
    ]
}

/// Decodes a `"trace"` record object back into a [`PacketTrace`].
///
/// Schema 1 records (or records with no `schema` field) decode with
/// `evidence: None` on every hop; schema 2 records restore the evidence
/// payload; higher schemas are rejected with an error naming the version so
/// consumers can count and skip them instead of panicking.
pub fn trace_from_json(rec: &Json) -> Result<PacketTrace, String> {
    let schema = rec.get("schema").and_then(Json::as_u64).unwrap_or(1);
    if schema > TRACE_SCHEMA {
        return Err(format!(
            "unsupported trace schema {schema} (this decoder understands <= {TRACE_SCHEMA})"
        ));
    }
    let id = rec
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("trace record has no numeric 'id'")?;
    let Some(Json::Arr(hops)) = rec.get("hops") else {
        return Err("trace record has no 'hops' array".to_string());
    };
    let mut out = Vec::with_capacity(hops.len());
    for h in hops {
        let ip = h
            .get("ip")
            .and_then(Json::as_u64)
            .ok_or("hop has no numeric 'ip'")? as u32;
        let at_ns = h
            .get("at_ns")
            .and_then(Json::as_u64)
            .ok_or("hop has no numeric 'at_ns'")?;
        let evidence = if schema >= 2 {
            match (h.get("role").and_then(Json::as_str), h.get("op")) {
                (Some(role_label), Some(op)) => {
                    let role = HopRole::from_label(role_label)
                        .ok_or_else(|| format!("unknown hop role '{role_label}'"))?;
                    Some(Evidence {
                        op: EvidenceOp::from_label(op.as_str().unwrap_or("other")),
                        role,
                        ok: matches!(h.get("ok"), Some(Json::Bool(true))),
                        key_fp: h.get("key_fp").and_then(Json::as_u64).unwrap_or(0) as u32,
                        session: h.get("session").and_then(Json::as_u64).unwrap_or(0),
                        seq: h.get("seq").and_then(Json::as_u64).unwrap_or(0),
                    })
                }
                _ => None,
            }
        } else {
            None
        };
        out.push(HopStamp {
            hop_ip: ip,
            at_ns,
            evidence,
        });
    }
    Ok(PacketTrace { id, hops: out })
}

/// Reconstructs a [`Journal`] from its [`Json`] form (the inverse of
/// `From<&Journal>`), so offline consumers can recover failover/repair spans
/// from `"spans"` records.
pub fn journal_from_json(doc: &Json) -> Journal {
    let mut journal = Journal::new();
    if let Some(Json::Arr(instants)) = doc.get("instants") {
        for i in instants {
            if let (Some(name), Some(at)) = (
                i.get("name").and_then(Json::as_str),
                i.get("at_ns").and_then(Json::as_u64),
            ) {
                journal.instant(name, at);
            }
        }
    }
    if let Some(Json::Arr(spans)) = doc.get("spans") {
        for s in spans {
            if let (Some(name), Some(start)) = (
                s.get("name").and_then(Json::as_str),
                s.get("start_ns").and_then(Json::as_u64),
            ) {
                match s.get("end_ns").and_then(Json::as_u64) {
                    Some(end) => journal.span(name, start, end),
                    None => {
                        journal.begin(name, start);
                    }
                }
            }
        }
    }
    journal
}

/// Where artifacts land: `$NETCHAIN_ARTIFACT_DIR` if set, else the current
/// directory.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("NETCHAIN_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Accumulates JSON-lines records for one run and writes them as
/// `BENCH_<name>.jsonl`.
#[derive(Debug)]
pub struct ArtifactWriter {
    name: String,
    records: Vec<Json>,
}

impl ArtifactWriter {
    /// Starts an artifact named `name` (file: `BENCH_<name>.jsonl`).
    pub fn new(name: impl Into<String>) -> Self {
        ArtifactWriter {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one record. By convention the object carries a `"record"` key
    /// naming its kind (`"summary"`, `"latency"`, `"spans"`, `"hops"`, ...).
    pub fn record(&mut self, kind: &str, mut fields: Vec<(&str, Json)>) {
        fields.insert(0, ("record", Json::str(kind)));
        self.records.push(Json::obj(fields));
    }

    /// Number of records queued.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were queued.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders all records as JSON-lines text.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Writes `BENCH_<name>.jsonl` into [`artifact_dir`], returning the
    /// path. Errors are reported, not fatal: a read-only filesystem must
    /// not fail an experiment run.
    pub fn write(&self) -> Option<PathBuf> {
        let path = artifact_dir().join(format!("BENCH_{}.jsonl", self.name));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&path)?;
            f.write_all(self.to_jsonl().as_bytes())
        };
        match write() {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write artifact {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn json_rendering() {
        let j = Json::obj(vec![
            ("n", Json::U64(3)),
            ("rate", Json::F64(1.5)),
            ("name", Json::str("a \"b\"\n")),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"n":3,"rate":1.5,"name":"a \"b\"\n","flag":true,"none":null,"xs":[1,2]}"#
        );
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn json_parse_round_trips_render() {
        let j = Json::obj(vec![
            ("n", Json::U64(3)),
            ("rate", Json::F64(1.5)),
            ("name", Json::str("a \"b\"\n\t\\")),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "xs",
                Json::Arr(vec![Json::U64(1), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn json_parse_number_mapping_and_whitespace() {
        let j = Json::parse(" { \"a\" : -2.5e3 , \"b\" : 42, \"c\": 0.5 } ").unwrap();
        assert_eq!(j.get("a"), Some(&Json::F64(-2500.0)));
        assert_eq!(j.get("b"), Some(&Json::U64(42)));
        assert_eq!(j.get("c"), Some(&Json::F64(0.5)));
        // u64 overflow falls back to float rather than erroring.
        let big = Json::parse("99999999999999999999999").unwrap();
        assert_eq!(big, Json::F64(1e23));
        // \u escapes decode.
        assert_eq!(
            Json::parse("\"a\\u0041b\"").unwrap(),
            Json::Str("aAb".to_string())
        );
    }

    #[test]
    fn json_parse_rejects_malformed_input() {
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "1 2", "nul", ""] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn json_get_navigates_paths_with_indices() {
        let j = Json::parse(
            r#"{"latency":[{"quantiles":{"p99_ns":7}},{"quantiles":{"p99_ns":9}}],"grid":[[1,2],[3,4]]}"#,
        )
        .unwrap();
        assert_eq!(j.get("latency[0].quantiles.p99_ns"), Some(&Json::U64(7)));
        assert_eq!(j.get("latency[1].quantiles.p99_ns"), Some(&Json::U64(9)));
        assert_eq!(j.get("grid[1][0]"), Some(&Json::U64(3)));
        assert_eq!(j.get("latency[2].quantiles"), None);
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.get("latency.quantiles"), None); // array, not object
        assert_eq!(
            j.get("latency[0].quantiles.p99_ns").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn json_parse_reads_the_committed_bench_shape() {
        // The exact shape bench_gate consumes from BENCH_net.json.
        let text = r#"{"experiment":"net_scale","capacity":{"burst_vs_single_speedup":0.87},"latency":[{"abandoned":0}]}"#;
        let j = Json::parse(text).unwrap();
        assert_eq!(j.get("experiment").unwrap().as_str(), Some("net_scale"));
        assert_eq!(
            j.get("capacity.burst_vs_single_speedup").unwrap().as_f64(),
            Some(0.87)
        );
        assert_eq!(j.get("latency[0].abandoned").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn quantiles_to_json_has_all_percentiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let j = Json::from(h.snapshot().quantiles());
        let text = j.render();
        for key in ["\"p50_ns\"", "\"p99_ns\"", "\"p999_ns\"", "\"count\":1000"] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn journal_to_json() {
        let mut j = Journal::new();
        j.instant("kill", 10);
        j.span("repair", 20, 50);
        let text = Json::from(&j).render();
        assert!(text.contains("\"name\":\"kill\""));
        assert!(text.contains("\"duration_ns\":30"));
    }

    #[test]
    fn trace_records_round_trip_with_evidence() {
        let trace = PacketTrace {
            id: 42,
            hops: vec![
                HopStamp::plain(1, 100),
                HopStamp {
                    hop_ip: 2,
                    at_ns: 200,
                    evidence: Some(Evidence {
                        op: EvidenceOp::Write,
                        role: HopRole::Head,
                        ok: true,
                        key_fp: 0xdead_beef,
                        session: 3,
                        seq: 9,
                    }),
                },
            ],
        };
        let rec = Json::obj(trace_record_fields(&trace));
        let parsed = trace_from_json(&Json::parse(&rec.render()).unwrap()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn trace_decoder_accepts_schema_one_and_rejects_future_schemas() {
        // A schema-1 record (no schema field, bare hops) still decodes.
        let v1 =
            Json::parse(r#"{"id":7,"hops":[{"ip":1,"at_ns":10},{"ip":2,"at_ns":20}]}"#).unwrap();
        let t = trace_from_json(&v1).unwrap();
        assert_eq!(t.id, 7);
        assert!(t.hops.iter().all(|h| h.evidence.is_none()));
        // Evidence fields present but schema says 1: evidence is ignored
        // (a v1 decoder contract — those fields did not exist).
        let v1_extra = Json::parse(
            r#"{"schema":1,"id":7,"hops":[{"ip":1,"at_ns":10,"role":"head","op":"write"}]}"#,
        )
        .unwrap();
        assert!(trace_from_json(&v1_extra).unwrap().hops[0]
            .evidence
            .is_none());
        // A future schema is rejected with the version named, not mis-read.
        let v9 = Json::parse(r#"{"schema":9,"id":7,"hops":[]}"#).unwrap();
        let err = trace_from_json(&v9).unwrap_err();
        assert!(err.contains("schema 9"), "{err}");
    }

    #[test]
    fn journal_round_trips_through_json() {
        let mut j = Journal::new();
        j.instant("killed", 10);
        j.span("repair", 20, 50);
        j.begin("open-phase", 60);
        let back = journal_from_json(&Json::parse(&Json::from(&j).render()).unwrap());
        assert_eq!(back.instants(), j.instants());
        assert_eq!(back.spans(), j.spans());
    }

    #[test]
    fn artifact_writer_emits_one_record_per_line() {
        let mut w = ArtifactWriter::new("test");
        assert!(w.is_empty());
        w.record("summary", vec![("ops", Json::U64(10))]);
        w.record("latency", vec![("p50_ns", Json::U64(100))]);
        assert_eq!(w.len(), 2);
        let text = w.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"record":"summary""#));
        assert!(lines[1].starts_with(r#"{"record":"latency""#));
    }

    #[test]
    fn artifact_writes_to_env_dir() {
        let dir =
            std::env::temp_dir().join(format!("netchain-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("NETCHAIN_ARTIFACT_DIR", &dir);
        let mut w = ArtifactWriter::new("env-test");
        w.record("summary", vec![("x", Json::U64(1))]);
        let path = w.write().unwrap();
        std::env::remove_var("NETCHAIN_ARTIFACT_DIR");
        assert!(path.starts_with(&dir));
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "{\"record\":\"summary\",\"x\":1}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
