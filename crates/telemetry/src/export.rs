//! Structured run exports: a dependency-free JSON value tree and a
//! JSON-lines artifact writer.
//!
//! Every experiment bin emits one `BENCH_<name>.jsonl` file — one JSON
//! object per line, each line a self-describing record (`"record"` key names
//! its kind) — so perf can be tracked and diffed across PRs with ordinary
//! text tooling. The output directory is `$NETCHAIN_ARTIFACT_DIR` when set,
//! else the current directory.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use crate::hist::Quantiles;
use crate::journal::Journal;
use crate::trace::{ip_to_string, path_to_string, TraceSummary};

/// A JSON value. The repo builds without serde (offline, no new deps), so
/// this mirrors the hand-rolled rendering already used by
/// `netchain-experiments::series`, but as a reusable tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (covers every counter in the repo).
    U64(u64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<Quantiles> for Json {
    fn from(q: Quantiles) -> Json {
        Json::obj(vec![
            ("count", Json::U64(q.count)),
            ("mean_ns", Json::F64(q.mean_ns)),
            ("min_ns", Json::U64(q.min_ns)),
            ("p50_ns", Json::U64(q.p50_ns)),
            ("p90_ns", Json::U64(q.p90_ns)),
            ("p99_ns", Json::U64(q.p99_ns)),
            ("p999_ns", Json::U64(q.p999_ns)),
            ("max_ns", Json::U64(q.max_ns)),
        ])
    }
}

impl From<&Journal> for Json {
    fn from(j: &Journal) -> Json {
        Json::obj(vec![
            (
                "instants",
                Json::Arr(
                    j.instants()
                        .iter()
                        .map(|i| {
                            Json::obj(vec![
                                ("name", Json::str(&i.name)),
                                ("at_ns", Json::U64(i.at_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Arr(
                    j.spans()
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(&s.name)),
                                ("start_ns", Json::U64(s.start_ns)),
                                ("end_ns", s.end_ns.map(Json::U64).unwrap_or(Json::Null)),
                                (
                                    "duration_ns",
                                    s.duration_ns().map(Json::U64).unwrap_or(Json::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl From<&TraceSummary> for Json {
    fn from(s: &TraceSummary) -> Json {
        Json::obj(vec![
            ("traces", Json::U64(s.traces as u64)),
            (
                "paths",
                Json::Arr(
                    s.paths
                        .iter()
                        .map(|(p, n)| {
                            Json::obj(vec![
                                ("path", Json::str(path_to_string(p))),
                                ("count", Json::U64(*n as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "transitions",
                Json::Arr(
                    s.transitions
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("from", Json::str(ip_to_string(t.from_ip))),
                                ("to", Json::str(ip_to_string(t.to_ip))),
                                ("latency", Json::from(t.quantiles())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Where artifacts land: `$NETCHAIN_ARTIFACT_DIR` if set, else the current
/// directory.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("NETCHAIN_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Accumulates JSON-lines records for one run and writes them as
/// `BENCH_<name>.jsonl`.
#[derive(Debug)]
pub struct ArtifactWriter {
    name: String,
    records: Vec<Json>,
}

impl ArtifactWriter {
    /// Starts an artifact named `name` (file: `BENCH_<name>.jsonl`).
    pub fn new(name: impl Into<String>) -> Self {
        ArtifactWriter {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one record. By convention the object carries a `"record"` key
    /// naming its kind (`"summary"`, `"latency"`, `"spans"`, `"hops"`, ...).
    pub fn record(&mut self, kind: &str, mut fields: Vec<(&str, Json)>) {
        fields.insert(0, ("record", Json::str(kind)));
        self.records.push(Json::obj(fields));
    }

    /// Number of records queued.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were queued.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders all records as JSON-lines text.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Writes `BENCH_<name>.jsonl` into [`artifact_dir`], returning the
    /// path. Errors are reported, not fatal: a read-only filesystem must
    /// not fail an experiment run.
    pub fn write(&self) -> Option<PathBuf> {
        let path = artifact_dir().join(format!("BENCH_{}.jsonl", self.name));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&path)?;
            f.write_all(self.to_jsonl().as_bytes())
        };
        match write() {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write artifact {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn json_rendering() {
        let j = Json::obj(vec![
            ("n", Json::U64(3)),
            ("rate", Json::F64(1.5)),
            ("name", Json::str("a \"b\"\n")),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"n":3,"rate":1.5,"name":"a \"b\"\n","flag":true,"none":null,"xs":[1,2]}"#
        );
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn quantiles_to_json_has_all_percentiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let j = Json::from(h.snapshot().quantiles());
        let text = j.render();
        for key in ["\"p50_ns\"", "\"p99_ns\"", "\"p999_ns\"", "\"count\":1000"] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn journal_to_json() {
        let mut j = Journal::new();
        j.instant("kill", 10);
        j.span("repair", 20, 50);
        let text = Json::from(&j).render();
        assert!(text.contains("\"name\":\"kill\""));
        assert!(text.contains("\"duration_ns\":30"));
    }

    #[test]
    fn artifact_writer_emits_one_record_per_line() {
        let mut w = ArtifactWriter::new("test");
        assert!(w.is_empty());
        w.record("summary", vec![("ops", Json::U64(10))]);
        w.record("latency", vec![("p50_ns", Json::U64(100))]);
        assert_eq!(w.len(), 2);
        let text = w.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"record":"summary""#));
        assert!(lines[1].starts_with(r#"{"record":"latency""#));
    }

    #[test]
    fn artifact_writes_to_env_dir() {
        let dir =
            std::env::temp_dir().join(format!("netchain-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("NETCHAIN_ARTIFACT_DIR", &dir);
        let mut w = ArtifactWriter::new("env-test");
        w.record("summary", vec![("x", Json::U64(1))]);
        let path = w.write().unwrap();
        std::env::remove_var("NETCHAIN_ARTIFACT_DIR");
        assert!(path.starts_with(&dir));
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "{\"record\":\"summary\",\"x\":1}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
