//! The chain auditor: certifying NetChain's consistency claims from in-band
//! trace evidence instead of trusting them.
//!
//! The telemetry layer can already say *where* a sampled packet went (hop
//! traces) and *when* control-plane phases ran (the [`Journal`]). With
//! [`Evidence`]-carrying stamps it also knows *what each hop observed*: the
//! op, a key fingerprint, and the per-key version register `(session, seq)`
//! at the hop. [`audit`] reconstructs per-key version histories from merged
//! traces and checks the invariants chain replication promises:
//!
//! 1. **Version monotonicity per replica** — the version register a given
//!    switch holds for a given key never goes backwards. Sequence checks
//!    (Algorithm 1 line 13) drop stale writes, and repair imports only move
//!    versions forward, so any strictly-later, strictly-lower observation is
//!    a real violation ([`ViolationKind::VersionRegression`]).
//! 2. **Chain order** — an acknowledged mutation must show head and tail
//!    evidence, in chain order: the head (sequence assigner) stamps no later
//!    than the tail (reply generator). An ack without tail evidence means a
//!    client was told "committed" by something other than the commit point
//!    ([`ViolationKind::ChainOrder`]).
//! 3. **Read freshness** — a read must return at least the highest version
//!    whose write was acknowledged before the read issued
//!    ([`ViolationKind::StaleRead`]). Reads or writes whose windows overlap
//!    a journal failover/repair span are suppressed rather than judged:
//!    Algorithms 2/3 intentionally shrink and rebuild chains there, and the
//!    per-op evidence is not enough to adjudicate mid-transition races.
//! 4. **Durability across repair** — a read issued *after* repair finished
//!    returning less than the highest version acked *before* repair started
//!    means an acked write's version vanished across the repair
//!    ([`ViolationKind::LostKey`]).
//!
//! Violations are structured ([`Violation`]) and dump through the
//! [`FlightRecorder`] so an offline `chain_audit` run leaves the same kind
//! of artifact trail as a live anomaly.
//!
//! [`ShadowAuditor`] is the online variant: a one-pass incremental checker
//! over *client* evidence only (issue/ack stamps), fed completed traces on
//! the live monitor thread. It checks freshness with bounded memory and a
//! statically-known suppression window, trading the full offline
//! reconstruction for zero-coordination liveness.

use std::collections::HashMap;

use crate::export::Json;
use crate::flight::FlightRecorder;
use crate::journal::Journal;
use crate::trace::{EvidenceOp, HopRole, PacketTrace};

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A replica's version register for a key went backwards in time.
    VersionRegression,
    /// An acked mutation without head→tail evidence in chain order.
    ChainOrder,
    /// A read returned an older version than a write acked before it issued.
    StaleRead,
    /// A post-repair read lost a version acked before the repair started.
    LostKey,
}

impl ViolationKind {
    /// Stable label used in reports and flight-recorder dumps.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::VersionRegression => "version-regression",
            ViolationKind::ChainOrder => "chain-order",
            ViolationKind::StaleRead => "stale-read",
            ViolationKind::LostKey => "lost-key",
        }
    }
}

/// One structured invariant violation: which check failed, on which key,
/// supported by which traces, and the version mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The invariant broken.
    pub kind: ViolationKind,
    /// Fingerprint of the affected key.
    pub key_fp: u32,
    /// Trace IDs supporting the verdict (the violating trace first, then
    /// the witness it conflicts with, when one exists).
    pub trace_ids: Vec<u64>,
    /// The version the invariant demanded (lower bound).
    pub expected: (u64, u64),
    /// The version actually observed.
    pub observed: (u64, u64),
    /// When the violating observation happened (ns, run timebase).
    pub at_ns: u64,
    /// Human-readable one-liner.
    pub detail: String,
}

impl Violation {
    /// The violation as a JSON object (flight-recorder / report shape).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str(self.kind.label())),
            ("key_fp", Json::U64(u64::from(self.key_fp))),
            (
                "trace_ids",
                Json::Arr(self.trace_ids.iter().map(|&id| Json::U64(id)).collect()),
            ),
            (
                "expected",
                Json::obj(vec![
                    ("session", Json::U64(self.expected.0)),
                    ("seq", Json::U64(self.expected.1)),
                ]),
            ),
            (
                "observed",
                Json::obj(vec![
                    ("session", Json::U64(self.observed.0)),
                    ("seq", Json::U64(self.observed.1)),
                ]),
            ),
            ("at_ns", Json::U64(self.at_ns)),
            ("detail", Json::str(&self.detail)),
        ])
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        format!(
            "{}: key {:08x} expected >= ({},{}) observed ({},{}) — {}",
            self.kind.label(),
            self.key_fp,
            self.expected.0,
            self.expected.1,
            self.observed.0,
            self.observed.1,
            self.detail,
        )
    }
}

/// Tuning knobs of the offline auditor.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Journal spans are widened by this much on both sides before overlap
    /// tests, absorbing clock jitter between the control plane's timestamps
    /// and the dataplane's stamps.
    pub span_slack_ns: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            span_slack_ns: 1_000_000, // 1 ms
        }
    }
}

/// The auditor's verdict plus coverage accounting, so "no violations" can be
/// told apart from "nothing was judgeable".
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Traces examined.
    pub traces: usize,
    /// Acked-ok mutations reconstructed.
    pub writes: usize,
    /// Acked-ok reads reconstructed.
    pub reads: usize,
    /// Reads/mutations actually judged (not suppressed, evidence complete).
    pub checked: usize,
    /// Operations skipped because their window overlapped a widened
    /// failover/repair span.
    pub suppressed: usize,
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no invariant was broken.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Coverage and verdict as one JSON object.
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("traces", Json::U64(self.traces as u64)),
            ("writes", Json::U64(self.writes as u64)),
            ("reads", Json::U64(self.reads as u64)),
            ("checked", Json::U64(self.checked as u64)),
            ("suppressed", Json::U64(self.suppressed as u64)),
            ("violations", Json::U64(self.violations.len() as u64)),
        ])
    }

    /// Records the verdict into a flight recorder: one `audit.violation`
    /// event per violation (timestamped at the violating observation) plus a
    /// closing `audit.summary` event.
    pub fn record_into(&self, recorder: &FlightRecorder) {
        for v in &self.violations {
            recorder.record(v.at_ns, "audit.violation", vec![("violation", v.to_json())]);
        }
        let last = self.violations.iter().map(|v| v.at_ns).max().unwrap_or(0);
        recorder.record(
            last,
            "audit.summary",
            vec![("summary", self.summary_json())],
        );
    }
}

/// A client-observed operation reconstructed from one trace.
#[derive(Debug, Clone, Copy)]
struct ClientOp {
    trace_id: u64,
    op: EvidenceOp,
    key_fp: u32,
    issued_at: u64,
    acked_at: u64,
    /// Version the ack carried.
    version: (u64, u64),
    /// Ack status was `Ok`.
    ok: bool,
}

fn client_op(trace: &PacketTrace) -> Option<ClientOp> {
    let issue = trace.hops.iter().find_map(|h| {
        h.evidence
            .filter(|e| e.role == HopRole::ClientIssue)
            .map(|e| (h.at_ns, e))
    });
    let ack = trace.hops.iter().find_map(|h| {
        h.evidence
            .filter(|e| e.role == HopRole::ClientAck)
            .map(|e| (h.at_ns, e))
    })?;
    let (issued_at, op, key_fp) = match issue {
        Some((at, e)) => (at, e.op, e.key_fp),
        // No issue stamp (fragment loss): fall back to the ack's own fields
        // and the earliest stamp time.
        None => (
            trace.hops.first().map(|h| h.at_ns).unwrap_or(ack.0),
            ack.1.op,
            ack.1.key_fp,
        ),
    };
    Some(ClientOp {
        trace_id: trace.id,
        op,
        key_fp,
        issued_at,
        acked_at: ack.0,
        version: ack.1.version(),
        ok: ack.1.ok,
    })
}

/// Inclusive interval overlap against a widened set of spans.
fn overlaps_any(windows: &[(u64, u64)], start: u64, end: u64) -> bool {
    windows.iter().any(|&(s, e)| start <= e && s <= end)
}

fn widened_spans(journal: &Journal, slack: u64) -> Vec<(u64, u64)> {
    journal
        .spans()
        .iter()
        .map(|s| {
            (
                s.start_ns.saturating_sub(slack),
                s.end_ns.unwrap_or(u64::MAX).saturating_add(slack),
            )
        })
        .collect()
}

/// Audits merged evidence traces against the control-plane journal. See the
/// module docs for the four invariants checked.
pub fn audit(traces: &[PacketTrace], journal: &Journal, config: &AuditConfig) -> AuditReport {
    let mut report = AuditReport {
        traces: traces.len(),
        ..AuditReport::default()
    };
    let suppress = widened_spans(journal, config.span_slack_ns);
    let repair_spans: Vec<(u64, u64)> = journal
        .spans()
        .iter()
        .filter(|s| s.name.contains("repair"))
        .map(|s| (s.start_ns, s.end_ns.unwrap_or(u64::MAX)))
        .collect();
    let repair_start = repair_spans.iter().map(|&(s, _)| s).min();
    let repair_end = repair_spans.iter().map(|&(_, e)| e).max();

    // ---- Invariant 1: versions monotone per (key, replica). -------------
    // Running maximum per (key_fp, hop_ip) over switch-hop observations in
    // time order; a strictly-later observation strictly below the maximum is
    // a regression. Ties in at_ns (stage-sliced wave groups share one clock
    // read) are never judged against each other.
    #[derive(Clone, Copy)]
    struct SeenMax {
        version: (u64, u64),
        at_ns: u64,
        trace_id: u64,
    }
    // (key_fp, hop_ip, at_ns, version, trace_id) per switch-hop observation.
    type Observation = (u32, u32, u64, (u64, u64), u64);
    let mut observations: Vec<Observation> = Vec::new();
    for t in traces {
        for h in &t.hops {
            if let Some(ev) = &h.evidence {
                let switch_role = matches!(
                    ev.role,
                    HopRole::Head | HopRole::Replica | HopRole::Tail | HopRole::Solo
                );
                // Only observations that actually saw the key: misses and
                // tombstones read as (0,0) and say nothing about ordering.
                if switch_role && ev.ok {
                    observations.push((ev.key_fp, h.hop_ip, h.at_ns, ev.version(), t.id));
                }
            }
        }
    }
    observations.sort_by_key(|&(fp, ip, at, ..)| (fp, ip, at));
    let mut max_seen: HashMap<(u32, u32), SeenMax> = HashMap::new();
    for (key_fp, hop_ip, at_ns, version, trace_id) in observations {
        match max_seen.get_mut(&(key_fp, hop_ip)) {
            Some(seen) => {
                if at_ns > seen.at_ns && version < seen.version {
                    report.violations.push(Violation {
                        kind: ViolationKind::VersionRegression,
                        key_fp,
                        trace_ids: vec![trace_id, seen.trace_id],
                        expected: seen.version,
                        observed: version,
                        at_ns,
                        detail: format!(
                            "replica {} observed the register going backwards",
                            crate::trace::ip_to_string(hop_ip)
                        ),
                    });
                } else if version > seen.version {
                    *seen = SeenMax {
                        version,
                        at_ns,
                        trace_id,
                    };
                }
            }
            None => {
                max_seen.insert(
                    (key_fp, hop_ip),
                    SeenMax {
                        version,
                        at_ns,
                        trace_id,
                    },
                );
            }
        }
    }

    // ---- Reconstruct client-visible operations. -------------------------
    let mut ops: Vec<(&PacketTrace, ClientOp)> = traces
        .iter()
        .filter_map(|t| client_op(t).map(|op| (t, op)))
        .collect();
    ops.sort_by_key(|(_, op)| op.acked_at);

    // Acked-ok mutation history per key, in ack order.
    #[derive(Clone, Copy)]
    struct AckedWrite {
        acked_at: u64,
        version: (u64, u64),
        trace_id: u64,
        deleted: bool,
    }
    let mut writes: HashMap<u32, Vec<AckedWrite>> = HashMap::new();
    for (_, op) in &ops {
        if op.op.is_mutation() && op.ok {
            report.writes += 1;
            writes.entry(op.key_fp).or_default().push(AckedWrite {
                acked_at: op.acked_at,
                version: op.version,
                trace_id: op.trace_id,
                deleted: op.op == EvidenceOp::Delete,
            });
        }
    }

    for (trace, op) in &ops {
        if !op.ok {
            continue;
        }
        let in_transition = overlaps_any(&suppress, op.issued_at, op.acked_at);

        if op.op.is_mutation() {
            // ---- Invariant 2: head→tail coverage and order. -------------
            if in_transition {
                report.suppressed += 1;
                continue;
            }
            let chain: Vec<(u64, HopRole)> = trace
                .hops
                .iter()
                .filter(|h| h.at_ns <= op.acked_at)
                .filter_map(|h| {
                    h.evidence
                        .as_ref()
                        .map(|e| (h.at_ns, e.role))
                        .filter(|(_, r)| {
                            matches!(
                                r,
                                HopRole::Head | HopRole::Replica | HopRole::Tail | HopRole::Solo
                            )
                        })
                })
                .collect();
            if chain.is_empty() {
                // The switch-side fragment was lost (sink cap); nothing to
                // judge.
                continue;
            }
            report.checked += 1;
            let first_head = chain
                .iter()
                .filter(|(_, r)| r.acts_as_head())
                .map(|&(at, _)| at)
                .min();
            let last_tail = chain
                .iter()
                .filter(|(_, r)| r.acts_as_tail())
                .map(|&(at, _)| at)
                .max();
            match (first_head, last_tail) {
                (Some(head_at), Some(tail_at)) => {
                    if head_at > tail_at {
                        report.violations.push(Violation {
                            kind: ViolationKind::ChainOrder,
                            key_fp: op.key_fp,
                            trace_ids: vec![op.trace_id],
                            expected: op.version,
                            observed: op.version,
                            at_ns: tail_at,
                            detail: format!(
                                "tail stamped {}ns before the head — hops out of chain order",
                                head_at - tail_at
                            ),
                        });
                    }
                }
                _ => {
                    report.violations.push(Violation {
                        kind: ViolationKind::ChainOrder,
                        key_fp: op.key_fp,
                        trace_ids: vec![op.trace_id],
                        expected: op.version,
                        observed: op.version,
                        at_ns: op.acked_at,
                        detail: format!(
                            "acked mutation missing {} evidence",
                            match (first_head, last_tail) {
                                (None, None) => "head and tail",
                                (None, _) => "head",
                                _ => "tail (ack without commit point)",
                            }
                        ),
                    });
                }
            }
        } else if op.op == EvidenceOp::Read {
            // ---- Invariants 3 and 4: freshness and durability. ----------
            report.reads += 1;
            if in_transition {
                report.suppressed += 1;
                continue;
            }
            let history = writes.get(&op.key_fp).map(Vec::as_slice).unwrap_or(&[]);
            let acked_before: Vec<&AckedWrite> = history
                .iter()
                .filter(|w| w.acked_at < op.issued_at)
                .collect();
            // A tombstone newer than every surviving write makes any read
            // result legal for this simple model; skip.
            if let Some(latest) = acked_before.iter().max_by_key(|w| w.acked_at) {
                if latest.deleted {
                    continue;
                }
            }
            report.checked += 1;
            let floor = acked_before
                .iter()
                .filter(|w| !w.deleted)
                .max_by_key(|w| w.version);
            if let Some(expect) = floor {
                if op.version < expect.version {
                    let post_repair = matches!(repair_end, Some(end) if op.issued_at > end.saturating_add(config.span_slack_ns));
                    let pre_repair_write = matches!(repair_start, Some(start) if expect.acked_at < start.saturating_sub(config.span_slack_ns));
                    let kind = if post_repair && pre_repair_write {
                        ViolationKind::LostKey
                    } else {
                        ViolationKind::StaleRead
                    };
                    report.violations.push(Violation {
                        kind,
                        key_fp: op.key_fp,
                        trace_ids: vec![op.trace_id, expect.trace_id],
                        expected: expect.version,
                        observed: op.version,
                        at_ns: op.acked_at,
                        detail: match kind {
                            ViolationKind::LostKey => format!(
                                "read issued after repair returned less than the \
                                 pre-repair acked version (write trace {})",
                                expect.trace_id
                            ),
                            _ => format!(
                                "read returned an older version than write trace {} \
                                 acked {}ns before the read issued",
                                expect.trace_id,
                                op.issued_at.saturating_sub(expect.acked_at)
                            ),
                        },
                    });
                }
            }
        }
    }

    report
}

/// The online shadow auditor: incremental freshness checking over *client*
/// evidence only, with bounded memory.
///
/// One acked write in a [`ShadowAuditor`]'s per-key history:
/// `(acked_at_ns, version, trace_id)`.
type AckedWrite = (u64, (u64, u64), u64);

/// Fed completed traces (in roughly completion order) on the live monitor
/// thread. Acked-ok mutations extend the per-key history; acked-ok reads are
/// judged against the highest version acked before they issued. Reads and
/// writes falling inside a suppression window (the statically-known fault
/// script envelope) are counted but not judged. Per-key history is capped:
/// evicted entries fold into a floor so later reads are still judged against
/// a (conservative) lower bound without unbounded growth.
#[derive(Debug)]
pub struct ShadowAuditor {
    /// Inclusive `(start_ns, end_ns)` windows where verdicts are withheld.
    suppress: Vec<(u64, u64)>,
    /// Per-key acked writes `(acked_at, version, trace_id)`, ack order.
    history: HashMap<u32, Vec<AckedWrite>>,
    /// Per-key folded floor for evicted entries.
    floor: HashMap<u32, (u64, (u64, u64))>,
    /// Reads judged.
    pub checked: u64,
    /// Operations withheld (suppression window).
    pub suppressed: u64,
    violations: Vec<Violation>,
}

/// Retained acked writes per key before folding into the floor.
const SHADOW_HISTORY_CAP: usize = 64;

impl ShadowAuditor {
    /// An auditor suppressing verdicts inside the given windows.
    pub fn new(suppress: Vec<(u64, u64)>) -> Self {
        ShadowAuditor {
            suppress,
            history: HashMap::new(),
            floor: HashMap::new(),
            checked: 0,
            suppressed: 0,
            violations: Vec::new(),
        }
    }

    /// Feeds one completed trace. Traces without client evidence are
    /// ignored.
    pub fn ingest(&mut self, trace: &PacketTrace) {
        let Some(op) = client_op(trace) else { return };
        if !op.ok {
            return;
        }
        if op.op.is_mutation() && op.op != EvidenceOp::Delete {
            let entries = self.history.entry(op.key_fp).or_default();
            entries.push((op.acked_at, op.version, op.trace_id));
            if entries.len() > SHADOW_HISTORY_CAP {
                let (acked_at, version, _) = entries.remove(0);
                let floor = self.floor.entry(op.key_fp).or_insert((0, (0, 0)));
                // Conservative fold: the floor only applies to reads issued
                // after the *newest* evicted ack.
                floor.0 = floor.0.max(acked_at);
                floor.1 = floor.1.max(version);
            }
        } else if op.op == EvidenceOp::Read {
            if overlaps_any(&self.suppress, op.issued_at, op.acked_at) {
                self.suppressed += 1;
                return;
            }
            self.checked += 1;
            let mut expect: Option<((u64, u64), u64)> = None;
            if let Some(entries) = self.history.get(&op.key_fp) {
                for &(acked_at, version, trace_id) in entries {
                    if acked_at < op.issued_at && expect.map(|(v, _)| version > v).unwrap_or(true) {
                        expect = Some((version, trace_id));
                    }
                }
            }
            if let Some(&(floor_at, floor_v)) = self.floor.get(&op.key_fp) {
                if floor_at < op.issued_at && expect.map(|(v, _)| floor_v > v).unwrap_or(true) {
                    expect = Some((floor_v, 0));
                }
            }
            if let Some((version, witness)) = expect {
                if op.version < version {
                    self.violations.push(Violation {
                        kind: ViolationKind::StaleRead,
                        key_fp: op.key_fp,
                        trace_ids: vec![op.trace_id, witness],
                        expected: version,
                        observed: op.version,
                        at_ns: op.acked_at,
                        detail: "shadow auditor: read below the acked version floor".to_string(),
                    });
                }
            }
        }
    }

    /// Takes the violations found so far.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Violations currently pending.
    pub fn pending(&self) -> usize {
        self.violations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Evidence, HopStamp};

    fn ev(op: EvidenceOp, role: HopRole, ok: bool, fp: u32, session: u64, seq: u64) -> Evidence {
        Evidence {
            op,
            role,
            ok,
            key_fp: fp,
            session,
            seq,
        }
    }

    fn stamp(ip: u32, at: u64, e: Evidence) -> HopStamp {
        HopStamp {
            hop_ip: ip,
            at_ns: at,
            evidence: Some(e),
        }
    }

    /// A full write trace: issue → head/mid/tail observing `pre` and
    /// applying `next` → ack carrying `next`.
    fn write_trace(id: u64, fp: u32, t: u64, pre: u64, next: u64) -> PacketTrace {
        PacketTrace {
            id,
            hops: vec![
                stamp(
                    1,
                    t,
                    ev(EvidenceOp::Write, HopRole::ClientIssue, true, fp, 0, 0),
                ),
                stamp(
                    11,
                    t + 10,
                    ev(EvidenceOp::Write, HopRole::Head, pre > 0, fp, 0, pre),
                ),
                stamp(
                    12,
                    t + 20,
                    ev(EvidenceOp::Write, HopRole::Replica, pre > 0, fp, 0, pre),
                ),
                stamp(
                    13,
                    t + 30,
                    ev(EvidenceOp::Write, HopRole::Tail, pre > 0, fp, 0, pre),
                ),
                stamp(
                    1,
                    t + 40,
                    ev(EvidenceOp::Write, HopRole::ClientAck, true, fp, 0, next),
                ),
            ],
        }
    }

    fn read_trace(id: u64, fp: u32, t: u64, seen: u64) -> PacketTrace {
        PacketTrace {
            id,
            hops: vec![
                stamp(
                    1,
                    t,
                    ev(EvidenceOp::Read, HopRole::ClientIssue, true, fp, 0, 0),
                ),
                stamp(
                    13,
                    t + 10,
                    ev(EvidenceOp::Read, HopRole::Tail, seen > 0, fp, 0, seen),
                ),
                stamp(
                    1,
                    t + 20,
                    ev(EvidenceOp::Read, HopRole::ClientAck, true, fp, 0, seen),
                ),
            ],
        }
    }

    #[test]
    fn clean_history_passes_every_check() {
        let traces = vec![
            write_trace(1, 7, 1000, 0, 1),
            read_trace(2, 7, 2000, 1),
            write_trace(3, 7, 3000, 1, 2),
            read_trace(4, 7, 4000, 2),
        ];
        let report = audit(&traces, &Journal::new(), &AuditConfig::default());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.writes, 2);
        assert_eq!(report.reads, 2);
        assert!(report.checked >= 4);
    }

    #[test]
    fn concurrent_read_may_see_either_side_of_an_unacked_write() {
        // Read issues while the write is in flight (before its ack): both
        // the old and the new version are legal.
        let w = write_trace(1, 7, 1000, 1, 2);
        for seen in [1u64, 2] {
            let r = read_trace(2, 7, 1020, seen); // issued before ack at 1040
            let report = audit(&[w.clone(), r], &Journal::new(), &AuditConfig::default());
            assert!(report.is_clean(), "seen={seen}: {:?}", report.violations);
        }
    }

    #[test]
    fn stale_read_is_flagged_with_witness() {
        let traces = vec![
            write_trace(1, 7, 1000, 1, 2),
            read_trace(2, 7, 2000, 1), // write acked at 1040, read issued 2000
        ];
        let report = audit(&traces, &Journal::new(), &AuditConfig::default());
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ViolationKind::StaleRead);
        assert_eq!(v.trace_ids, vec![2, 1]);
        assert_eq!(v.expected, (0, 2));
        assert_eq!(v.observed, (0, 1));
    }

    #[test]
    fn version_regression_per_replica_is_flagged() {
        // Two reads against the same tail: the register goes 5 then 3.
        let traces = vec![read_trace(1, 9, 1000, 5), read_trace(2, 9, 2000, 3)];
        let report = audit(&traces, &Journal::new(), &AuditConfig::default());
        // The read-freshness checker has no acked writes to hold these
        // against, so only the replica invariant fires.
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::VersionRegression);
    }

    #[test]
    fn simultaneous_observations_are_never_judged_against_each_other() {
        // Same at_ns (one wave-group clock read), different versions: legal.
        let a = PacketTrace {
            id: 1,
            hops: vec![stamp(
                13,
                500,
                ev(EvidenceOp::Read, HopRole::Tail, true, 9, 0, 5),
            )],
        };
        let b = PacketTrace {
            id: 2,
            hops: vec![stamp(
                13,
                500,
                ev(EvidenceOp::Read, HopRole::Tail, true, 9, 0, 3),
            )],
        };
        let report = audit(&[a, b], &Journal::new(), &AuditConfig::default());
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn transitions_suppress_rather_than_judge() {
        let mut journal = Journal::new();
        journal.span("repair", 1_500, 3_000);
        let traces = vec![
            write_trace(1, 7, 1000, 1, 2),
            read_trace(2, 7, 2000, 1), // issued inside the repair span
        ];
        let report = audit(&traces, &journal, &AuditConfig { span_slack_ns: 0 });
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn lost_key_is_distinguished_from_stale_read_after_repair() {
        let mut journal = Journal::new();
        journal.span("repair", 5_000, 6_000);
        let traces = vec![
            write_trace(1, 7, 1000, 1, 2), // acked well before repair
            read_trace(2, 7, 8_000, 1),    // issued well after repair end
        ];
        let report = audit(&traces, &journal, &AuditConfig { span_slack_ns: 100 });
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::LostKey);
    }

    #[test]
    fn shadow_auditor_matches_on_client_evidence() {
        let mut shadow = ShadowAuditor::new(vec![]);
        shadow.ingest(&write_trace(1, 7, 1000, 1, 2));
        shadow.ingest(&read_trace(2, 7, 2000, 2));
        assert_eq!(shadow.pending(), 0);
        shadow.ingest(&read_trace(3, 7, 3000, 1));
        let violations = shadow.take_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::StaleRead);
        assert_eq!(violations[0].trace_ids, vec![3, 1]);
        // Suppression window withholds the verdict.
        let mut quiet = ShadowAuditor::new(vec![(0, 10_000)]);
        quiet.ingest(&write_trace(1, 7, 1000, 1, 2));
        quiet.ingest(&read_trace(3, 7, 3000, 1));
        assert_eq!(quiet.pending(), 0);
        assert_eq!(quiet.suppressed, 1);
    }

    #[test]
    fn shadow_history_cap_folds_into_a_floor() {
        let mut shadow = ShadowAuditor::new(vec![]);
        // Push far past the cap; versions keep rising.
        for i in 0..200u64 {
            shadow.ingest(&write_trace(i, 7, 1_000 * i, i, i + 1));
        }
        // A read issued after everything returning version 1 must still be
        // caught, even though early history was evicted.
        shadow.ingest(&read_trace(999, 7, 1_000_000, 1));
        assert_eq!(shadow.take_violations().len(), 1);
    }

    #[test]
    fn violations_dump_through_the_flight_recorder() {
        let traces = vec![write_trace(1, 7, 1000, 1, 2), read_trace(2, 7, 2000, 1)];
        let report = audit(&traces, &Journal::new(), &AuditConfig::default());
        let recorder = FlightRecorder::new(16);
        report.record_into(&recorder);
        let text = recorder.to_jsonl();
        assert!(text.contains("\"kind\":\"audit.violation\""));
        assert!(text.contains("\"stale-read\""));
        assert!(text.contains("\"kind\":\"audit.summary\""));
        let line = text.lines().next().unwrap();
        let parsed = Json::parse(line).unwrap();
        assert_eq!(
            parsed.get("violation.expected.seq").and_then(Json::as_f64),
            Some(2.0)
        );
    }
}
