//! netchain-telemetry: the observability layer for the NetChain repro.
//!
//! NetChain's headline claims are distributional — orders-of-magnitude tail
//! latency wins, sub-millisecond failover — so measurement is a first-class
//! subsystem here, not per-experiment glue. The crate is dependency-free and
//! allocation-free on hot paths, and is wired through every execution mode
//! (discrete-event simulator, multi-core fabric, live control plane):
//!
//! * [`hist`] — log-bucketed latency histograms ([`LatencyHistogram`]) with
//!   mergeable snapshots ([`HistSnapshot`]) and p50/p99/p999 queries at
//!   ≤ 3.2% relative error.
//! * [`metrics`] — the [`Metrics`] trait putting every counter struct
//!   (`ShardStats`, `ClientReport`, ...) behind one named-counter API, a
//!   time-bucketed [`TimeSeries`], and lock-free [`LiveCounters`]
//!   publication for progress readers.
//! * [`trace`] — in-band per-hop tracing in the P4 INT spirit: the trace ID
//!   is derived from fields every packet already carries (client IP +
//!   request ID), so sim switches and fabric shards stamp sampled packets
//!   without any wire-format change, and [`TraceSummary`] reports chain-hop
//!   latency breakdowns.
//! * [`journal`] — a general control-plane phase/span recorder
//!   ([`Journal`]) generalising livectl's `FailoverTimeline`.
//! * [`export`] — a dependency-free JSON tree ([`Json`]) and JSON-lines
//!   [`ArtifactWriter`] producing `BENCH_<name>.jsonl` run artifacts.
//! * [`window`] — per-shard rolling windows of slice-aligned counters
//!   ([`RollingWindow`], [`WindowRegistry`]) feeding live dashboards and the
//!   gray-failure detector.
//! * [`flight`] — a bounded [`FlightRecorder`] ring of recent events, dumped
//!   to the artifact dir (`FLIGHT_<name>.jsonl`) on anomaly or smoke failure.
//! * [`audit`] — the chain auditor: reconstructs per-key version histories
//!   from [`trace::Evidence`]-carrying traces plus the [`Journal`] and checks
//!   chain-replication invariants (monotone replicas, head→tail order, read
//!   freshness, durability across repair), offline ([`audit::audit`]) and
//!   online ([`ShadowAuditor`]).

pub mod audit;
pub mod export;
pub mod flight;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod trace;
pub mod window;

pub use audit::{audit, AuditConfig, AuditReport, ShadowAuditor, Violation, ViolationKind};
pub use export::{
    artifact_dir, journal_from_json, trace_from_json, trace_record_fields, ArtifactWriter, Json,
    TRACE_SCHEMA,
};
pub use flight::FlightRecorder;
pub use hist::{HistBucket, HistSnapshot, LatencyHistogram, Quantiles};
pub use journal::{Journal, Span, SpanHandle};
pub use metrics::{sum_metrics, LiveCounters, Metrics, TimeSeries};
pub use trace::{
    ip_to_string, key_fingerprint, merge_traces, path_to_string, trace_id, Evidence, EvidenceOp,
    HopRole, HopStamp, PacketTrace, TraceConfig, TraceSink, TraceSummary,
};
pub use window::{
    RollingWindow, SliceCounters, WindowChannel, WindowRegistry, ALL_CHANNELS, WINDOW_CHANNELS,
};
