//! Flight recorder: a bounded ring of recent observability events, dumped to
//! the artifact directory when something goes wrong.
//!
//! Normal telemetry in this repo is post-hoc (JSONL exports at end of run).
//! A live system needs the opposite on failure: *what happened just before*.
//! The recorder keeps the last `capacity` events — journal instants/spans,
//! trace summaries, detector verdicts, arbitrary annotations — in memory,
//! and [`FlightRecorder::dump`] writes them as `FLIGHT_<name>.jsonl` into
//! [`artifact_dir`] ($NETCHAIN_ARTIFACT_DIR or the current directory). The
//! livectl gray-failure detector dumps on every anomaly; `failover_live`
//! dumps on smoke failure.
//!
//! Recording takes a `std::sync::Mutex` — the recorder is fed from control
//! and client threads at human-scale rates (anomalies, phase changes), never
//! from the per-packet path, so a plain mutex is the right tool.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::export::{artifact_dir, Json};
use crate::journal::Journal;
use crate::trace::TraceSummary;

/// A bounded ring of recent events, shareable across threads.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Monotone sequence number of the next event (survives eviction, so a
    /// dump shows how much history was discarded).
    next_seq: u64,
    ring: VecDeque<Json>,
}

impl FlightRecorder {
    /// Creates a recorder retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Records one event of the given kind with arbitrary fields. The stored
    /// object carries `seq`, `at_ns` and `kind` alongside the fields.
    pub fn record(&self, at_ns: u64, kind: &str, fields: Vec<(&str, Json)>) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mut pairs = vec![
            ("seq", Json::U64(seq)),
            ("at_ns", Json::U64(at_ns)),
            ("kind", Json::str(kind)),
        ];
        pairs.extend(fields);
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        let obj = Json::obj(pairs);
        inner.ring.push_back(obj);
    }

    /// Records every instant and span of a journal as individual events
    /// (timestamped with their own journal clocks).
    pub fn record_journal(&self, journal: &Journal) {
        for i in journal.instants() {
            self.record(
                i.at_ns,
                "journal.instant",
                vec![("name", Json::str(&i.name))],
            );
        }
        for s in journal.spans() {
            self.record(
                s.start_ns,
                "journal.span",
                vec![
                    ("name", Json::str(&s.name)),
                    ("end_ns", s.end_ns.map(Json::U64).unwrap_or(Json::Null)),
                    (
                        "duration_ns",
                        s.duration_ns().map(Json::U64).unwrap_or(Json::Null),
                    ),
                ],
            );
        }
    }

    /// Records a trace summary (paths + per-hop latency) as one event.
    pub fn record_trace_summary(&self, at_ns: u64, summary: &TraceSummary) {
        self.record(
            at_ns,
            "trace.summary",
            vec![("summary", Json::from(summary))],
        );
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .ring
            .len()
    }

    /// True if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .next_seq
    }

    /// Renders the retained events as JSON-lines text, oldest first.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        let mut out = String::new();
        for e in &inner.ring {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Dumps the retained events as `FLIGHT_<name>.jsonl` into
    /// [`artifact_dir`], returning the path. Errors are reported, not fatal
    /// — a failing dump must never take down the run it is documenting.
    pub fn dump(&self, name: &str) -> Option<PathBuf> {
        let path = artifact_dir().join(format!("FLIGHT_{name}.jsonl"));
        match std::fs::write(&path, self.to_jsonl()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!(
                    "warning: could not write flight dump {}: {e}",
                    path.display()
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i * 100, "tick", vec![("i", Json::U64(i))]);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.total_recorded(), 5);
        let text = fr.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Oldest retained is seq 2; newest is seq 4.
        assert!(lines[0].contains("\"seq\":2"));
        assert!(lines[2].contains("\"seq\":4"));
        assert!(lines[2].contains("\"kind\":\"tick\""));
    }

    #[test]
    fn journal_events_are_expanded() {
        let fr = FlightRecorder::new(16);
        let mut j = Journal::new();
        j.instant("kill", 10);
        j.span("repair", 20, 50);
        fr.record_journal(&j);
        let text = fr.to_jsonl();
        assert!(text.contains("\"kind\":\"journal.instant\""));
        assert!(text.contains("\"name\":\"kill\""));
        assert!(text.contains("\"duration_ns\":30"));
    }

    #[test]
    fn dump_writes_to_artifact_dir() {
        let dir = std::env::temp_dir().join(format!("netchain-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("NETCHAIN_ARTIFACT_DIR", &dir);
        let fr = FlightRecorder::new(4);
        fr.record(1, "anomaly", vec![("shard", Json::U64(2))]);
        let path = fr.dump("test").unwrap();
        std::env::remove_var("NETCHAIN_ARTIFACT_DIR");
        assert!(path.starts_with(&dir));
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("\"kind\":\"anomaly\""));
        assert!(read.contains("\"shard\":2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
