//! In-band per-hop tracing in the spirit of P4 INT (in-band network
//! telemetry).
//!
//! Real INT switches append per-hop metadata to the packet itself. This repo
//! keeps the wire format untouched by exploiting two fields every NetChain
//! packet already carries end-to-end: the client's source IP and the query
//! `request_id`. Mixing the two yields a stable trace ID that the client and
//! every switch/shard compute independently — the packet *is* the trace
//! carrier, no extra header bytes needed. Each hop that handles a sampled
//! packet stamps `(hop ip, timestamp)` into a local [`TraceSink`]; sinks are
//! merged after the run and summarised into per-hop-transition latency
//! breakdowns.
//!
//! Sampling is deterministic: a packet is traced iff the low `sample_shift`
//! bits of its trace ID hash to zero, so independent observers (sim client,
//! sim switches, fabric shards) agree on which packets are sampled without
//! coordination.

use std::collections::HashMap;

use crate::hist::{HistSnapshot, LatencyHistogram, Quantiles};

/// Sampling knobs for in-band tracing. `Copy` so it can ride on
/// `FabricConfig` without ceremony.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; when false no tracing code runs at all.
    pub enabled: bool,
    /// Sample 1 in `2^sample_shift` trace IDs. 0 means every packet.
    pub sample_shift: u32,
    /// Cap on completed traces retained per sink (oldest kept); bounds
    /// memory on long runs.
    pub max_traces: usize,
}

impl TraceConfig {
    /// Tracing disabled; the fast path stays untouched.
    pub const OFF: TraceConfig = TraceConfig {
        enabled: false,
        sample_shift: 0,
        max_traces: 0,
    };

    /// Trace 1 in `2^shift` queries, keeping at most `max_traces` of them.
    pub fn sampled(shift: u32, max_traces: usize) -> Self {
        TraceConfig {
            enabled: true,
            sample_shift: shift,
            max_traces,
        }
    }

    /// Whether a given trace ID is selected by this config.
    #[inline]
    pub fn samples(&self, trace_id: u64) -> bool {
        self.enabled && trace_id & ((1u64 << self.sample_shift) - 1) == 0
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::OFF
    }
}

/// Derives the trace ID from the two in-band fields. splitmix64-style mixing
/// so sampling on low bits is unbiased even for sequential request IDs.
#[inline]
pub fn trace_id(src_ip: u32, request_id: u64) -> u64 {
    let mut z = (u64::from(src_ip) << 32) ^ request_id;
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The operation class a hop observed, as recorded in [`Evidence`]. Coarser
/// than the wire `OpCode` (replies fold onto their query op) so the
/// telemetry crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvidenceOp {
    /// A read query (or its reply).
    Read,
    /// A write or insert.
    Write,
    /// A compare-and-swap.
    Cas,
    /// A delete.
    Delete,
    /// Anything else (stat probes, unknown future ops).
    Other,
}

impl EvidenceOp {
    /// Short wire label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            EvidenceOp::Read => "read",
            EvidenceOp::Write => "write",
            EvidenceOp::Cas => "cas",
            EvidenceOp::Delete => "delete",
            EvidenceOp::Other => "other",
        }
    }

    /// Inverse of [`EvidenceOp::label`]; unknown labels map to `Other` so
    /// newer producers stay readable.
    pub fn from_label(s: &str) -> Self {
        match s {
            "read" => EvidenceOp::Read,
            "write" => EvidenceOp::Write,
            "cas" => EvidenceOp::Cas,
            "delete" => EvidenceOp::Delete,
            _ => EvidenceOp::Other,
        }
    }

    /// True for ops that mutate chain state (write/CAS/delete).
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            EvidenceOp::Write | EvidenceOp::Cas | EvidenceOp::Delete
        )
    }
}

/// Where in the chain a stamped hop sat when it observed the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HopRole {
    /// The client, at query issue time.
    ClientIssue,
    /// The chain head (first hop of a mutation; assigns the sequence).
    Head,
    /// A mid-chain replica.
    Replica,
    /// The chain tail (generates the reply).
    Tail,
    /// A single-switch chain: head and tail at once.
    Solo,
    /// The client, at reply-absorption time.
    ClientAck,
}

impl HopRole {
    /// Short wire label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            HopRole::ClientIssue => "issue",
            HopRole::Head => "head",
            HopRole::Replica => "mid",
            HopRole::Tail => "tail",
            HopRole::Solo => "solo",
            HopRole::ClientAck => "ack",
        }
    }

    /// Inverse of [`HopRole::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "issue" => HopRole::ClientIssue,
            "head" => HopRole::Head,
            "mid" => HopRole::Replica,
            "tail" => HopRole::Tail,
            "solo" => HopRole::Solo,
            "ack" => HopRole::ClientAck,
            _ => return None,
        })
    }

    /// Chain position of a switch handling a query, derived from fields the
    /// packet already carries. Reads are answered wherever they are
    /// addressed (any remaining chain hops are failover alternates, not a
    /// forwarding path), so every read hop is a tail. For mutations, no
    /// sequence assigned yet means the hop is the head, and an empty
    /// remaining chain means it generates the reply (tail). Every execution
    /// mode derives roles through this one function so the auditor sees
    /// consistent evidence.
    pub fn for_query(is_mutation: bool, seq_is_zero: bool, chain_is_empty: bool) -> HopRole {
        if !is_mutation {
            return HopRole::Tail;
        }
        match (seq_is_zero, chain_is_empty) {
            (true, true) => HopRole::Solo,
            (true, false) => HopRole::Head,
            (false, true) => HopRole::Tail,
            (false, false) => HopRole::Replica,
        }
    }

    /// True if this hop could have been the chain head (sequence assigner).
    pub fn acts_as_head(self) -> bool {
        matches!(self, HopRole::Head | HopRole::Solo)
    }

    /// True if this hop could have been the chain tail (reply generator).
    pub fn acts_as_tail(self) -> bool {
        matches!(self, HopRole::Tail | HopRole::Solo)
    }
}

/// Folds a 64-bit stable key hash into the 32-bit fingerprint carried in
/// [`Evidence`]. XOR-folding keeps both halves contributing, so fingerprints
/// of sequential keys stay distinct.
#[inline]
pub fn key_fingerprint(stable_hash: u64) -> u32 {
    (stable_hash ^ (stable_hash >> 32)) as u32
}

/// What a hop semantically observed when it stamped a sampled packet: the
/// operation, which key it touched (as a fingerprint), and the value of the
/// per-key version register `(session, seq)` at that hop *before* the
/// operation executed. Client stamps instead carry the version the reply
/// returned (ack) or zeros (issue). This is the payload the chain auditor
/// reconstructs per-key version histories from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evidence {
    /// Operation class.
    pub op: EvidenceOp,
    /// Chain position of the stamping hop.
    pub role: HopRole,
    /// Switch hops: the key was present (register slot valid). Client ack:
    /// the reply status was `Ok`.
    pub ok: bool,
    /// 32-bit fingerprint of the key ([`key_fingerprint`]).
    pub key_fp: u32,
    /// Session half of the observed version register.
    pub session: u64,
    /// Sequence half of the observed version register.
    pub seq: u64,
}

impl Evidence {
    /// The observed version as the lexicographic `(session, seq)` tuple the
    /// chain orders writes by.
    #[inline]
    pub fn version(&self) -> (u64, u64) {
        (self.session, self.seq)
    }
}

/// One timestamped visit to a hop. The hop is identified by the big-endian
/// `u32` form of its IPv4 address (unit-friendly: no dependency on the wire
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopStamp {
    /// Hop identity (IPv4 address as big-endian u32).
    pub hop_ip: u32,
    /// Stamp time in nanoseconds (sim time or wall-clock since run start).
    pub at_ns: u64,
    /// Semantic payload, when the stamping hop recorded one. Plain
    /// `(ip, time)` stamps (schema-1 producers, transit hops) carry `None`.
    pub evidence: Option<Evidence>,
}

impl HopStamp {
    /// A bare stamp with no evidence payload.
    pub fn plain(hop_ip: u32, at_ns: u64) -> Self {
        HopStamp {
            hop_ip,
            at_ns,
            evidence: None,
        }
    }
}

/// The recorded path of one sampled query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTrace {
    /// The mixed trace ID.
    pub id: u64,
    /// Hops in stamp order, client-issue first.
    pub hops: Vec<HopStamp>,
}

impl PacketTrace {
    /// The hop IPs in visit order (the "chain order" of the trace).
    pub fn path(&self) -> Vec<u32> {
        self.hops.iter().map(|h| h.hop_ip).collect()
    }
}

/// A per-owner (client, shard, or switch) trace recorder. Stamping a trace
/// ID that has not been seen yet begins it implicitly, so every observer can
/// stamp unconditionally for sampled IDs.
#[derive(Debug)]
pub struct TraceSink {
    config: TraceConfig,
    active: HashMap<u64, PacketTrace>,
    done: Vec<PacketTrace>,
}

impl TraceSink {
    /// Creates a sink with the given sampling config.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            config,
            active: HashMap::new(),
            done: Vec::new(),
        }
    }

    /// The sampling config this sink was built with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Whether `id` should be stamped at all.
    #[inline]
    pub fn samples(&self, id: u64) -> bool {
        self.config.samples(id)
    }

    /// Records a hop visit for `id` (no-op if the ID is not sampled).
    #[inline]
    pub fn stamp(&mut self, id: u64, hop_ip: u32, at_ns: u64) {
        self.push(id, HopStamp::plain(hop_ip, at_ns));
    }

    /// Records a hop visit carrying semantic [`Evidence`]. Callers should
    /// check [`TraceSink::samples`] first and only then pay for gathering the
    /// evidence (register reads, key hashing) — this keeps unsampled packets
    /// free even with tracing on.
    #[inline]
    pub fn stamp_with(&mut self, id: u64, hop_ip: u32, at_ns: u64, evidence: Evidence) {
        self.push(
            id,
            HopStamp {
                hop_ip,
                at_ns,
                evidence: Some(evidence),
            },
        );
    }

    #[inline]
    fn push(&mut self, id: u64, stamp: HopStamp) {
        if !self.config.samples(id) {
            return;
        }
        self.active
            .entry(id)
            .or_insert_with(|| PacketTrace {
                id,
                hops: Vec::with_capacity(4),
            })
            .hops
            .push(stamp);
    }

    /// Marks `id` complete, moving it to the finished set.
    pub fn finish(&mut self, id: u64) {
        if let Some(trace) = self.active.remove(&id) {
            if self.done.len() < self.config.max_traces {
                self.done.push(trace);
            }
        }
    }

    /// Drains everything recorded so far — finished traces first, then any
    /// still-open ones (useful at end of run when replies raced shutdown).
    pub fn drain(&mut self) -> Vec<PacketTrace> {
        let mut out = std::mem::take(&mut self.done);
        let mut open: Vec<PacketTrace> = self.active.drain().map(|(_, t)| t).collect();
        open.sort_by_key(|t| t.id);
        for t in open {
            if out.len() >= self.config.max_traces {
                break;
            }
            out.push(t);
        }
        out
    }

    /// Number of completed traces currently held.
    pub fn finished(&self) -> usize {
        self.done.len()
    }

    /// Takes only the *completed* traces, leaving still-open ones in place.
    /// This is what a live shadow consumer (the online auditor) drains
    /// periodically: completed traces are final and safe to judge, open ones
    /// may still gain hops.
    pub fn take_finished(&mut self) -> Vec<PacketTrace> {
        std::mem::take(&mut self.done)
    }
}

/// Merges per-owner trace fragments by trace ID into whole-path traces.
/// Fragments for the same ID are concatenated and re-sorted by timestamp, so
/// it does not matter which observer stamped which hop.
pub fn merge_traces<I: IntoIterator<Item = PacketTrace>>(parts: I) -> Vec<PacketTrace> {
    let mut by_id: HashMap<u64, PacketTrace> = HashMap::new();
    for frag in parts {
        by_id
            .entry(frag.id)
            .and_modify(|t| t.hops.extend_from_slice(&frag.hops))
            .or_insert(frag);
    }
    let mut out: Vec<PacketTrace> = by_id.into_values().collect();
    for t in &mut out {
        t.hops.sort_by_key(|h| h.at_ns);
    }
    out.sort_by_key(|t| t.id);
    out
}

/// Latency breakdown for one hop-to-hop transition (e.g. head → mid).
#[derive(Debug, Clone)]
pub struct HopTransition {
    /// Source hop IP.
    pub from_ip: u32,
    /// Destination hop IP.
    pub to_ip: u32,
    /// Distribution of `to.at_ns - from.at_ns` across traces.
    pub latency: HistSnapshot,
}

impl HopTransition {
    /// Summary quantiles of the transition latency.
    pub fn quantiles(&self) -> Quantiles {
        self.latency.quantiles()
    }
}

/// Aggregated view over a set of merged traces: the distinct paths seen and
/// the latency distribution of every hop transition.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of traces aggregated.
    pub traces: usize,
    /// Distinct hop-IP paths with their occurrence counts, most common
    /// first.
    pub paths: Vec<(Vec<u32>, usize)>,
    /// Per-transition latency distributions, in first-seen order.
    pub transitions: Vec<HopTransition>,
}

impl TraceSummary {
    /// Builds a summary from merged traces.
    pub fn from_traces(traces: &[PacketTrace]) -> Self {
        let mut path_counts: Vec<(Vec<u32>, usize)> = Vec::new();
        let mut transitions: Vec<(u32, u32, LatencyHistogram)> = Vec::new();
        for t in traces {
            let path = t.path();
            match path_counts.iter_mut().find(|(p, _)| *p == path) {
                Some((_, n)) => *n += 1,
                None => path_counts.push((path, 1)),
            }
            for pair in t.hops.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let delta = b.at_ns.saturating_sub(a.at_ns);
                match transitions
                    .iter_mut()
                    .find(|(f, to, _)| *f == a.hop_ip && *to == b.hop_ip)
                {
                    Some((_, _, h)) => h.record(delta),
                    None => {
                        let mut h = LatencyHistogram::new();
                        h.record(delta);
                        transitions.push((a.hop_ip, b.hop_ip, h));
                    }
                }
            }
        }
        path_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        TraceSummary {
            traces: traces.len(),
            paths: path_counts,
            transitions: transitions
                .into_iter()
                .map(|(from_ip, to_ip, h)| HopTransition {
                    from_ip,
                    to_ip,
                    latency: h.snapshot(),
                })
                .collect(),
        }
    }

    /// The most common path, if any traces were recorded.
    pub fn dominant_path(&self) -> Option<&[u32]> {
        self.paths.first().map(|(p, _)| p.as_slice())
    }
}

/// Renders an IPv4-as-u32 hop ID as dotted quad for human output.
pub fn ip_to_string(ip: u32) -> String {
    let b = ip.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Renders a hop path as `a -> b -> c` dotted quads.
pub fn path_to_string(path: &[u32]) -> String {
    path.iter()
        .map(|&ip| ip_to_string(ip))
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_ratioed() {
        let cfg = TraceConfig::sampled(4, 1024);
        let mut hits = 0;
        for rid in 0..4096u64 {
            let id = trace_id(0x0a000001, rid);
            if cfg.samples(id) {
                hits += 1;
            }
            // Same inputs, same decision.
            assert_eq!(cfg.samples(id), cfg.samples(trace_id(0x0a000001, rid)));
        }
        // Expect roughly 4096/16 = 256; allow generous slack.
        assert!((128..=512).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shift_zero_samples_everything() {
        let cfg = TraceConfig::sampled(0, 16);
        for rid in 0..100u64 {
            assert!(cfg.samples(trace_id(1, rid)));
        }
        assert!(!TraceConfig::OFF.samples(0));
    }

    #[test]
    fn sink_auto_begins_and_finishes() {
        let mut sink = TraceSink::new(TraceConfig::sampled(0, 8));
        sink.stamp(7, 0x0a000001, 100);
        sink.stamp(7, 0x0a000002, 250);
        sink.finish(7);
        let traces = sink.drain();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].path(), vec![0x0a000001, 0x0a000002]);
        assert_eq!(traces[0].hops[1].at_ns, 250);
    }

    #[test]
    fn unsampled_ids_are_ignored() {
        let mut sink = TraceSink::new(TraceConfig::sampled(8, 8));
        // ID with a nonzero low byte is not sampled.
        let id = 0x1234_5601;
        assert!(!sink.samples(id));
        sink.stamp(id, 1, 1);
        sink.finish(id);
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn merge_reassembles_fragments_by_time() {
        let client = PacketTrace {
            id: 9,
            hops: vec![HopStamp::plain(1, 0), HopStamp::plain(1, 400)],
        };
        let switch = PacketTrace {
            id: 9,
            hops: vec![HopStamp::plain(2, 100), HopStamp::plain(3, 200)],
        };
        let merged = merge_traces(vec![switch, client]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].path(), vec![1, 2, 3, 1]);
    }

    #[test]
    fn summary_counts_paths_and_transitions() {
        let mk = |id: u64, ips: &[u32]| PacketTrace {
            id,
            hops: ips
                .iter()
                .enumerate()
                .map(|(i, &ip)| HopStamp::plain(ip, (id * 1000) + i as u64 * 100))
                .collect(),
        };
        let traces = vec![mk(1, &[10, 20, 30]), mk(2, &[10, 20, 30]), mk(3, &[10, 30])];
        let s = TraceSummary::from_traces(&traces);
        assert_eq!(s.traces, 3);
        assert_eq!(s.dominant_path(), Some(&[10, 20, 30][..]));
        assert_eq!(s.paths[0].1, 2);
        // Transitions: 10->20 (x2), 20->30 (x2), 10->30 (x1).
        assert_eq!(s.transitions.len(), 3);
        let t = s
            .transitions
            .iter()
            .find(|t| t.from_ip == 10 && t.to_ip == 20)
            .unwrap();
        assert_eq!(t.latency.count(), 2);
        assert_eq!(t.latency.quantile(1.0), Some(100));
    }

    #[test]
    fn sink_respects_max_traces() {
        let mut sink = TraceSink::new(TraceConfig::sampled(0, 2));
        for id in 0..5u64 {
            sink.stamp(id, 1, id);
            sink.finish(id);
        }
        assert_eq!(sink.finished(), 2);
        assert_eq!(sink.drain().len(), 2);
    }

    #[test]
    fn evidence_stamps_ride_alongside_plain_ones() {
        let mut sink = TraceSink::new(TraceConfig::sampled(0, 8));
        sink.stamp(3, 1, 10);
        sink.stamp_with(
            3,
            2,
            20,
            Evidence {
                op: EvidenceOp::Write,
                role: HopRole::Head,
                ok: true,
                key_fp: 0xdead,
                session: 1,
                seq: 7,
            },
        );
        sink.finish(3);
        let traces = sink.drain();
        assert_eq!(traces[0].hops[0].evidence, None);
        let ev = traces[0].hops[1].evidence.unwrap();
        assert_eq!(ev.version(), (1, 7));
        assert!(ev.role.acts_as_head());
        assert!(!ev.role.acts_as_tail());
    }

    #[test]
    fn take_finished_leaves_open_traces_active() {
        let mut sink = TraceSink::new(TraceConfig::sampled(0, 8));
        sink.stamp(1, 9, 1);
        sink.finish(1);
        sink.stamp(2, 9, 2); // still open
        let done = sink.take_finished();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert!(sink.take_finished().is_empty());
        // The open trace can still gain hops and finish later.
        sink.stamp(2, 10, 3);
        sink.finish(2);
        assert_eq!(sink.take_finished().len(), 1);
    }

    #[test]
    fn role_derivation_covers_all_chain_positions() {
        // Mutation, no seq yet, more hops follow: head.
        assert_eq!(HopRole::for_query(true, true, false), HopRole::Head);
        // Mutation mid-chain: replica; at the last hop: tail.
        assert_eq!(HopRole::for_query(true, false, false), HopRole::Replica);
        assert_eq!(HopRole::for_query(true, false, true), HopRole::Tail);
        // Single-switch chain assigns the seq and replies at one hop.
        assert_eq!(HopRole::for_query(true, true, true), HopRole::Solo);
        // Reads go straight to the tail — even with failover alternates
        // still listed in the chain.
        assert_eq!(HopRole::for_query(false, true, true), HopRole::Tail);
        assert_eq!(HopRole::for_query(false, true, false), HopRole::Tail);
        for role in [
            HopRole::ClientIssue,
            HopRole::Head,
            HopRole::Replica,
            HopRole::Tail,
            HopRole::Solo,
            HopRole::ClientAck,
        ] {
            assert_eq!(HopRole::from_label(role.label()), Some(role));
        }
        assert_eq!(HopRole::from_label("bogus"), None);
        for op in [
            EvidenceOp::Read,
            EvidenceOp::Write,
            EvidenceOp::Cas,
            EvidenceOp::Delete,
            EvidenceOp::Other,
        ] {
            assert_eq!(EvidenceOp::from_label(op.label()), op);
        }
    }

    #[test]
    fn key_fingerprint_folds_both_halves() {
        assert_ne!(
            key_fingerprint(0x1111_0000_0000_0000),
            key_fingerprint(0x2222_0000_0000_0000)
        );
        assert_ne!(key_fingerprint(1), key_fingerprint(2));
    }

    #[test]
    fn ip_rendering() {
        assert_eq!(ip_to_string(0x0a000102), "10.0.1.2");
        assert_eq!(
            path_to_string(&[0x0a000101, 0x0a000102]),
            "10.0.1.1 -> 10.0.1.2"
        );
    }
}
