//! In-band per-hop tracing in the spirit of P4 INT (in-band network
//! telemetry).
//!
//! Real INT switches append per-hop metadata to the packet itself. This repo
//! keeps the wire format untouched by exploiting two fields every NetChain
//! packet already carries end-to-end: the client's source IP and the query
//! `request_id`. Mixing the two yields a stable trace ID that the client and
//! every switch/shard compute independently — the packet *is* the trace
//! carrier, no extra header bytes needed. Each hop that handles a sampled
//! packet stamps `(hop ip, timestamp)` into a local [`TraceSink`]; sinks are
//! merged after the run and summarised into per-hop-transition latency
//! breakdowns.
//!
//! Sampling is deterministic: a packet is traced iff the low `sample_shift`
//! bits of its trace ID hash to zero, so independent observers (sim client,
//! sim switches, fabric shards) agree on which packets are sampled without
//! coordination.

use std::collections::HashMap;

use crate::hist::{HistSnapshot, LatencyHistogram, Quantiles};

/// Sampling knobs for in-band tracing. `Copy` so it can ride on
/// `FabricConfig` without ceremony.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; when false no tracing code runs at all.
    pub enabled: bool,
    /// Sample 1 in `2^sample_shift` trace IDs. 0 means every packet.
    pub sample_shift: u32,
    /// Cap on completed traces retained per sink (oldest kept); bounds
    /// memory on long runs.
    pub max_traces: usize,
}

impl TraceConfig {
    /// Tracing disabled; the fast path stays untouched.
    pub const OFF: TraceConfig = TraceConfig {
        enabled: false,
        sample_shift: 0,
        max_traces: 0,
    };

    /// Trace 1 in `2^shift` queries, keeping at most `max_traces` of them.
    pub fn sampled(shift: u32, max_traces: usize) -> Self {
        TraceConfig {
            enabled: true,
            sample_shift: shift,
            max_traces,
        }
    }

    /// Whether a given trace ID is selected by this config.
    #[inline]
    pub fn samples(&self, trace_id: u64) -> bool {
        self.enabled && trace_id & ((1u64 << self.sample_shift) - 1) == 0
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::OFF
    }
}

/// Derives the trace ID from the two in-band fields. splitmix64-style mixing
/// so sampling on low bits is unbiased even for sequential request IDs.
#[inline]
pub fn trace_id(src_ip: u32, request_id: u64) -> u64 {
    let mut z = (u64::from(src_ip) << 32) ^ request_id;
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One timestamped visit to a hop. The hop is identified by the big-endian
/// `u32` form of its IPv4 address (unit-friendly: no dependency on the wire
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopStamp {
    /// Hop identity (IPv4 address as big-endian u32).
    pub hop_ip: u32,
    /// Stamp time in nanoseconds (sim time or wall-clock since run start).
    pub at_ns: u64,
}

/// The recorded path of one sampled query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTrace {
    /// The mixed trace ID.
    pub id: u64,
    /// Hops in stamp order, client-issue first.
    pub hops: Vec<HopStamp>,
}

impl PacketTrace {
    /// The hop IPs in visit order (the "chain order" of the trace).
    pub fn path(&self) -> Vec<u32> {
        self.hops.iter().map(|h| h.hop_ip).collect()
    }
}

/// A per-owner (client, shard, or switch) trace recorder. Stamping a trace
/// ID that has not been seen yet begins it implicitly, so every observer can
/// stamp unconditionally for sampled IDs.
#[derive(Debug)]
pub struct TraceSink {
    config: TraceConfig,
    active: HashMap<u64, PacketTrace>,
    done: Vec<PacketTrace>,
}

impl TraceSink {
    /// Creates a sink with the given sampling config.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            config,
            active: HashMap::new(),
            done: Vec::new(),
        }
    }

    /// The sampling config this sink was built with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Whether `id` should be stamped at all.
    #[inline]
    pub fn samples(&self, id: u64) -> bool {
        self.config.samples(id)
    }

    /// Records a hop visit for `id` (no-op if the ID is not sampled).
    #[inline]
    pub fn stamp(&mut self, id: u64, hop_ip: u32, at_ns: u64) {
        if !self.config.samples(id) {
            return;
        }
        self.active
            .entry(id)
            .or_insert_with(|| PacketTrace {
                id,
                hops: Vec::with_capacity(4),
            })
            .hops
            .push(HopStamp { hop_ip, at_ns });
    }

    /// Marks `id` complete, moving it to the finished set.
    pub fn finish(&mut self, id: u64) {
        if let Some(trace) = self.active.remove(&id) {
            if self.done.len() < self.config.max_traces {
                self.done.push(trace);
            }
        }
    }

    /// Drains everything recorded so far — finished traces first, then any
    /// still-open ones (useful at end of run when replies raced shutdown).
    pub fn drain(&mut self) -> Vec<PacketTrace> {
        let mut out = std::mem::take(&mut self.done);
        let mut open: Vec<PacketTrace> = self.active.drain().map(|(_, t)| t).collect();
        open.sort_by_key(|t| t.id);
        for t in open {
            if out.len() >= self.config.max_traces {
                break;
            }
            out.push(t);
        }
        out
    }

    /// Number of completed traces currently held.
    pub fn finished(&self) -> usize {
        self.done.len()
    }
}

/// Merges per-owner trace fragments by trace ID into whole-path traces.
/// Fragments for the same ID are concatenated and re-sorted by timestamp, so
/// it does not matter which observer stamped which hop.
pub fn merge_traces<I: IntoIterator<Item = PacketTrace>>(parts: I) -> Vec<PacketTrace> {
    let mut by_id: HashMap<u64, PacketTrace> = HashMap::new();
    for frag in parts {
        by_id
            .entry(frag.id)
            .and_modify(|t| t.hops.extend_from_slice(&frag.hops))
            .or_insert(frag);
    }
    let mut out: Vec<PacketTrace> = by_id.into_values().collect();
    for t in &mut out {
        t.hops.sort_by_key(|h| h.at_ns);
    }
    out.sort_by_key(|t| t.id);
    out
}

/// Latency breakdown for one hop-to-hop transition (e.g. head → mid).
#[derive(Debug, Clone)]
pub struct HopTransition {
    /// Source hop IP.
    pub from_ip: u32,
    /// Destination hop IP.
    pub to_ip: u32,
    /// Distribution of `to.at_ns - from.at_ns` across traces.
    pub latency: HistSnapshot,
}

impl HopTransition {
    /// Summary quantiles of the transition latency.
    pub fn quantiles(&self) -> Quantiles {
        self.latency.quantiles()
    }
}

/// Aggregated view over a set of merged traces: the distinct paths seen and
/// the latency distribution of every hop transition.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of traces aggregated.
    pub traces: usize,
    /// Distinct hop-IP paths with their occurrence counts, most common
    /// first.
    pub paths: Vec<(Vec<u32>, usize)>,
    /// Per-transition latency distributions, in first-seen order.
    pub transitions: Vec<HopTransition>,
}

impl TraceSummary {
    /// Builds a summary from merged traces.
    pub fn from_traces(traces: &[PacketTrace]) -> Self {
        let mut path_counts: Vec<(Vec<u32>, usize)> = Vec::new();
        let mut transitions: Vec<(u32, u32, LatencyHistogram)> = Vec::new();
        for t in traces {
            let path = t.path();
            match path_counts.iter_mut().find(|(p, _)| *p == path) {
                Some((_, n)) => *n += 1,
                None => path_counts.push((path, 1)),
            }
            for pair in t.hops.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let delta = b.at_ns.saturating_sub(a.at_ns);
                match transitions
                    .iter_mut()
                    .find(|(f, to, _)| *f == a.hop_ip && *to == b.hop_ip)
                {
                    Some((_, _, h)) => h.record(delta),
                    None => {
                        let mut h = LatencyHistogram::new();
                        h.record(delta);
                        transitions.push((a.hop_ip, b.hop_ip, h));
                    }
                }
            }
        }
        path_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        TraceSummary {
            traces: traces.len(),
            paths: path_counts,
            transitions: transitions
                .into_iter()
                .map(|(from_ip, to_ip, h)| HopTransition {
                    from_ip,
                    to_ip,
                    latency: h.snapshot(),
                })
                .collect(),
        }
    }

    /// The most common path, if any traces were recorded.
    pub fn dominant_path(&self) -> Option<&[u32]> {
        self.paths.first().map(|(p, _)| p.as_slice())
    }
}

/// Renders an IPv4-as-u32 hop ID as dotted quad for human output.
pub fn ip_to_string(ip: u32) -> String {
    let b = ip.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Renders a hop path as `a -> b -> c` dotted quads.
pub fn path_to_string(path: &[u32]) -> String {
    path.iter()
        .map(|&ip| ip_to_string(ip))
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_ratioed() {
        let cfg = TraceConfig::sampled(4, 1024);
        let mut hits = 0;
        for rid in 0..4096u64 {
            let id = trace_id(0x0a000001, rid);
            if cfg.samples(id) {
                hits += 1;
            }
            // Same inputs, same decision.
            assert_eq!(cfg.samples(id), cfg.samples(trace_id(0x0a000001, rid)));
        }
        // Expect roughly 4096/16 = 256; allow generous slack.
        assert!((128..=512).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shift_zero_samples_everything() {
        let cfg = TraceConfig::sampled(0, 16);
        for rid in 0..100u64 {
            assert!(cfg.samples(trace_id(1, rid)));
        }
        assert!(!TraceConfig::OFF.samples(0));
    }

    #[test]
    fn sink_auto_begins_and_finishes() {
        let mut sink = TraceSink::new(TraceConfig::sampled(0, 8));
        sink.stamp(7, 0x0a000001, 100);
        sink.stamp(7, 0x0a000002, 250);
        sink.finish(7);
        let traces = sink.drain();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].path(), vec![0x0a000001, 0x0a000002]);
        assert_eq!(traces[0].hops[1].at_ns, 250);
    }

    #[test]
    fn unsampled_ids_are_ignored() {
        let mut sink = TraceSink::new(TraceConfig::sampled(8, 8));
        // ID with a nonzero low byte is not sampled.
        let id = 0x1234_5601;
        assert!(!sink.samples(id));
        sink.stamp(id, 1, 1);
        sink.finish(id);
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn merge_reassembles_fragments_by_time() {
        let client = PacketTrace {
            id: 9,
            hops: vec![
                HopStamp {
                    hop_ip: 1,
                    at_ns: 0,
                },
                HopStamp {
                    hop_ip: 1,
                    at_ns: 400,
                },
            ],
        };
        let switch = PacketTrace {
            id: 9,
            hops: vec![
                HopStamp {
                    hop_ip: 2,
                    at_ns: 100,
                },
                HopStamp {
                    hop_ip: 3,
                    at_ns: 200,
                },
            ],
        };
        let merged = merge_traces(vec![switch, client]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].path(), vec![1, 2, 3, 1]);
    }

    #[test]
    fn summary_counts_paths_and_transitions() {
        let mk = |id: u64, ips: &[u32]| PacketTrace {
            id,
            hops: ips
                .iter()
                .enumerate()
                .map(|(i, &ip)| HopStamp {
                    hop_ip: ip,
                    at_ns: (id * 1000) + i as u64 * 100,
                })
                .collect(),
        };
        let traces = vec![mk(1, &[10, 20, 30]), mk(2, &[10, 20, 30]), mk(3, &[10, 30])];
        let s = TraceSummary::from_traces(&traces);
        assert_eq!(s.traces, 3);
        assert_eq!(s.dominant_path(), Some(&[10, 20, 30][..]));
        assert_eq!(s.paths[0].1, 2);
        // Transitions: 10->20 (x2), 20->30 (x2), 10->30 (x1).
        assert_eq!(s.transitions.len(), 3);
        let t = s
            .transitions
            .iter()
            .find(|t| t.from_ip == 10 && t.to_ip == 20)
            .unwrap();
        assert_eq!(t.latency.count(), 2);
        assert_eq!(t.latency.quantile(1.0), Some(100));
    }

    #[test]
    fn sink_respects_max_traces() {
        let mut sink = TraceSink::new(TraceConfig::sampled(0, 2));
        for id in 0..5u64 {
            sink.stamp(id, 1, id);
            sink.finish(id);
        }
        assert_eq!(sink.finished(), 2);
        assert_eq!(sink.drain().len(), 2);
    }

    #[test]
    fn ip_rendering() {
        assert_eq!(ip_to_string(0x0a000102), "10.0.1.2");
        assert_eq!(
            path_to_string(&[0x0a000101, 0x0a000102]),
            "10.0.1.1 -> 10.0.1.2"
        );
    }
}
