//! Rolling-window metrics: per-shard, slice-aligned counters that a live
//! detector can compare across peers while the dataplane keeps running.
//!
//! A [`RollingWindow`] is a small ring of time slices (1 s by convention;
//! the slice length itself lives in the [`WindowRegistry`]). Each slice
//! holds one atomic counter per [`WindowChannel`]. Writers pick the slot by
//! `slice % len` and rotate it lazily — when a slot's stored epoch is older
//! than the slice being written, its counters are zeroed and re-stamped.
//! Everything is plain atomics: recording is wait-free for the common case
//! (a `fetch_add` on a hot slot), readers never block writers, and snapshots
//! from many shards merge element-wise.
//!
//! Time is an explicit slice index, never a wall clock read inside this
//! module — that is what makes the gray-failure detector's acceptance test
//! deterministic: tests feed synthetic slice data and the detector cannot
//! tell the difference.
//!
//! The lazy rotation has one documented approximation: if two writer threads
//! race to rotate the *same* stale slot at a slice boundary, a handful of
//! increments from the loser can land after the winner's zeroing and be
//! attributed to the new slice. The intended deployment is single-writer per
//! window (one shard worker owns its window; clients own their own), where
//! the race cannot occur at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The counters every window slice carries, one atomic each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowChannel {
    /// Operations processed (or completed, for client-side windows).
    Ops = 0,
    /// Retransmissions issued.
    Retries = 1,
    /// Queries dropped by a recovery block rule.
    Blocked = 2,
    /// Ingress queue depth; merged by maximum, not sum.
    QueueDepth = 3,
}

/// Number of [`WindowChannel`]s.
pub const WINDOW_CHANNELS: usize = 4;

/// All channels in index order (for iteration and display).
pub const ALL_CHANNELS: [WindowChannel; WINDOW_CHANNELS] = [
    WindowChannel::Ops,
    WindowChannel::Retries,
    WindowChannel::Blocked,
    WindowChannel::QueueDepth,
];

impl WindowChannel {
    /// Short display name of the channel.
    pub fn name(self) -> &'static str {
        match self {
            WindowChannel::Ops => "ops",
            WindowChannel::Retries => "retries",
            WindowChannel::Blocked => "blocked",
            WindowChannel::QueueDepth => "queue_depth",
        }
    }
}

/// One slice's counters, frozen.
pub type SliceCounters = [u64; WINDOW_CHANNELS];

#[derive(Debug)]
struct WindowSlot {
    /// The slice index this slot currently represents.
    epoch: AtomicU64,
    counters: [AtomicU64; WINDOW_CHANNELS],
}

impl WindowSlot {
    fn new() -> Self {
        WindowSlot {
            // Sentinel: no real slice uses u64::MAX (that would need ~584
            // years of 1s slices), so fresh slots never alias slice 0.
            epoch: AtomicU64::new(u64::MAX),
            counters: [const { AtomicU64::new(0) }; WINDOW_CHANNELS],
        }
    }
}

/// A ring of per-slice counters for one shard (or one client group).
#[derive(Debug)]
pub struct RollingWindow {
    slots: Box<[WindowSlot]>,
}

impl RollingWindow {
    /// Creates a window retaining `slices` slices (at least 2).
    pub fn new(slices: usize) -> Self {
        assert!(slices >= 2, "a rolling window needs at least 2 slices");
        RollingWindow {
            slots: (0..slices).map(|_| WindowSlot::new()).collect(),
        }
    }

    /// Number of slices retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the window retains no slices (never: `new` enforces ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Rotates the slot for `slice` if it still holds an older epoch,
    /// returning it ready for writes.
    fn slot_for(&self, slice: u64) -> &WindowSlot {
        let slot = &self.slots[(slice % self.slots.len() as u64) as usize];
        let cur = slot.epoch.load(Ordering::Acquire);
        if cur != slice
            && slot
                .epoch
                .compare_exchange(cur, slice, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            for c in &slot.counters {
                c.store(0, Ordering::Release);
            }
        }
        slot
    }

    /// Adds `n` to `channel` in `slice`.
    #[inline]
    pub fn add(&self, slice: u64, channel: WindowChannel, n: u64) {
        self.slot_for(slice).counters[channel as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Raises `channel` in `slice` to at least `v` (gauge semantics, used
    /// for queue depth).
    #[inline]
    pub fn raise(&self, slice: u64, channel: WindowChannel, v: u64) {
        self.slot_for(slice).counters[channel as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Reads the counters of `slice`, or `None` if the slot has rotated past
    /// it (the slice is too old or was never written).
    pub fn read(&self, slice: u64) -> Option<SliceCounters> {
        let slot = &self.slots[(slice % self.slots.len() as u64) as usize];
        if slot.epoch.load(Ordering::Acquire) != slice {
            return None;
        }
        let mut out = [0u64; WINDOW_CHANNELS];
        for (o, c) in out.iter_mut().zip(&slot.counters) {
            *o = c.load(Ordering::Relaxed);
        }
        // Re-check the epoch: if the slot rotated mid-read, discard.
        (slot.epoch.load(Ordering::Acquire) == slice).then_some(out)
    }

    /// The last `n` slices ending at `upto` (inclusive), oldest first.
    /// Unwritten/rotated slices read as all-zero.
    pub fn series(&self, upto: u64, n: usize) -> Vec<SliceCounters> {
        (0..n as u64)
            .map(|i| {
                let slice = upto + 1 + i;
                slice
                    .checked_sub(n as u64)
                    .and_then(|s| self.read(s))
                    .unwrap_or_default()
            })
            .collect()
    }
}

/// One window per shard, shared between the dataplane (writers) and the
/// detector / dashboard (readers). Cloning the registry is cheap (`Arc`s).
#[derive(Debug, Clone)]
pub struct WindowRegistry {
    windows: Vec<Arc<RollingWindow>>,
    slice_len: Duration,
}

impl WindowRegistry {
    /// Creates a registry of `shards` windows, each retaining `slices`
    /// slices of `slice_len` wall-clock time.
    pub fn new(shards: usize, slices: usize, slice_len: Duration) -> Self {
        assert!(slice_len > Duration::ZERO, "slice length must be positive");
        WindowRegistry {
            windows: (0..shards)
                .map(|_| Arc::new(RollingWindow::new(slices)))
                .collect(),
            slice_len,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.windows.len()
    }

    /// The configured slice length.
    pub fn slice_len(&self) -> Duration {
        self.slice_len
    }

    /// Maps elapsed-time-since-run-start to a slice index.
    pub fn slice_of(&self, elapsed: Duration) -> u64 {
        (elapsed.as_nanos() / self.slice_len.as_nanos().max(1)) as u64
    }

    /// The window of shard `shard`.
    pub fn window(&self, shard: usize) -> &Arc<RollingWindow> {
        &self.windows[shard]
    }

    /// Per-shard counters at `slice` (zeros where nothing was recorded).
    pub fn slice_across_shards(&self, slice: u64) -> Vec<SliceCounters> {
        self.windows
            .iter()
            .map(|w| w.read(slice).unwrap_or_default())
            .collect()
    }

    /// Per-shard series of the last `n` slices ending at `upto`, oldest
    /// first.
    pub fn series_across_shards(&self, upto: u64, n: usize) -> Vec<Vec<SliceCounters>> {
        self.windows.iter().map(|w| w.series(upto, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn add_and_read_one_slice() {
        let w = RollingWindow::new(4);
        w.add(0, WindowChannel::Ops, 10);
        w.add(0, WindowChannel::Ops, 5);
        w.add(0, WindowChannel::Retries, 1);
        w.raise(0, WindowChannel::QueueDepth, 7);
        w.raise(0, WindowChannel::QueueDepth, 3);
        let c = w.read(0).unwrap();
        assert_eq!(c[WindowChannel::Ops as usize], 15);
        assert_eq!(c[WindowChannel::Retries as usize], 1);
        assert_eq!(c[WindowChannel::Blocked as usize], 0);
        assert_eq!(c[WindowChannel::QueueDepth as usize], 7);
    }

    #[test]
    fn rotation_evicts_old_slices() {
        let w = RollingWindow::new(3);
        w.add(0, WindowChannel::Ops, 1);
        w.add(1, WindowChannel::Ops, 2);
        w.add(2, WindowChannel::Ops, 3);
        assert!(w.read(0).is_some());
        // Slice 3 reuses slot 0 and zeroes it.
        w.add(3, WindowChannel::Ops, 4);
        assert_eq!(w.read(0), None);
        assert_eq!(w.read(3).unwrap()[0], 4);
        assert_eq!(w.read(1).unwrap()[0], 2);
    }

    #[test]
    fn series_is_oldest_first_with_zero_fill() {
        let w = RollingWindow::new(8);
        w.add(5, WindowChannel::Ops, 50);
        w.add(7, WindowChannel::Ops, 70);
        let s = w.series(7, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0][0], 0); // slice 4: never written
        assert_eq!(s[1][0], 50); // slice 5
        assert_eq!(s[2][0], 0); // slice 6
        assert_eq!(s[3][0], 70); // slice 7
    }

    #[test]
    fn registry_maps_time_and_merges_across_shards() {
        let reg = WindowRegistry::new(3, 8, Duration::from_secs(1));
        assert_eq!(reg.slice_of(Duration::from_millis(500)), 0);
        assert_eq!(reg.slice_of(Duration::from_millis(2400)), 2);
        reg.window(0).add(2, WindowChannel::Ops, 100);
        reg.window(1).add(2, WindowChannel::Ops, 90);
        // Shard 2 records nothing: the straggler the detector looks for.
        let across = reg.slice_across_shards(2);
        assert_eq!(across[0][0], 100);
        assert_eq!(across[1][0], 90);
        assert_eq!(across[2][0], 0);
        assert_eq!(reg.series_across_shards(2, 3)[1][2][0], 90);
    }

    #[test]
    fn concurrent_writers_never_lose_steady_state_counts() {
        // Away from rotation boundaries, fetch_add is exact even with many
        // writers on the same slot.
        let w = Arc::new(RollingWindow::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        w.add(1, WindowChannel::Ops, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(w.read(1).unwrap()[0], 40_000);
    }
}
