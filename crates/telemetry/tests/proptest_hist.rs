//! Property tests for histogram snapshot merging: merge must be
//! associative, commutative, and order-independent, and a merged snapshot
//! must be indistinguishable from recording every sample into one
//! histogram.

use netchain_telemetry::{HistSnapshot, LatencyHistogram};
use proptest::prelude::*;

fn snapshot_of(samples: &[u64]) -> HistSnapshot {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX, 0..64),
        b in proptest::collection::vec(0u64..u64::MAX, 0..64),
        c in proptest::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a + b) + c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a + (b + c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..u64::MAX, 0..64),
        b in proptest::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_order_independent_and_equals_union(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000u64, 0..32),
            1..6,
        ),
        seed in 0u64..1000,
    ) {
        // Merge the parts in a permuted order.
        let mut order: Vec<usize> = (0..parts.len()).collect();
        // Cheap deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }

        let in_order = HistSnapshot::merged(parts.iter().map(|p| snapshot_of(p)).collect::<Vec<_>>().iter());
        let permuted = HistSnapshot::merged(order.iter().map(|&i| snapshot_of(&parts[i])).collect::<Vec<_>>().iter());
        prop_assert_eq!(&in_order, &permuted);

        // And both equal one histogram over the concatenation.
        let all: Vec<u64> = parts.iter().flatten().copied().collect();
        prop_assert_eq!(&in_order, &snapshot_of(&all));
    }

    #[test]
    fn empty_is_identity(a in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let sa = snapshot_of(&a);
        let mut merged = sa.clone();
        merged.merge(&HistSnapshot::empty());
        prop_assert_eq!(&merged, &sa);
        let mut other = HistSnapshot::empty();
        other.merge(&sa);
        prop_assert_eq!(&other, &sa);
    }

    #[test]
    fn quantile_bounded_by_oracle(
        samples in proptest::collection::vec(0u64..10_000_000_000u64, 1..200),
        q in 0.001f64..1.0,
    ) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = snap.quantile(q).unwrap();
        prop_assert!(approx >= exact);
        let err = (approx - exact) as f64 / (exact.max(1)) as f64;
        // 2^-5 bucket resolution plus f64 slack.
        prop_assert!(err <= 1.0 / 32.0 + 1e-9, "err {} at q {}", err, q);
    }
}
