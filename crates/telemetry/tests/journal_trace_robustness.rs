//! Robustness of the observability plumbing itself: journal ordering when
//! many threads emit concurrently (each into its own journal, merged after —
//! the deployment shape every runner uses), and `merge_traces` on the messy
//! fragment sets a real run produces: dropped hops, partial fragments,
//! duplicated observers.

use std::thread;

use netchain_telemetry::{merge_traces, HopStamp, Journal, PacketTrace};

/// Concurrent emitters each own a journal; the run-level journal is the
/// merge. Ordering guarantees: per-emitter recording order survives the
/// merge verbatim, and `to_table` presents the union chronologically no
/// matter the merge order.
#[test]
fn concurrent_emitters_merge_in_order_and_render_chronologically() {
    const EMITTERS: usize = 8;
    const EVENTS: u64 = 50;
    let journals: Vec<Journal> = (0..EMITTERS)
        .map(|e| {
            thread::spawn(move || {
                let mut j = Journal::new();
                for i in 0..EVENTS {
                    // Interleave instants and spans with emitter-skewed
                    // timestamps so no two emitters agree on event times.
                    let at = i * 1000 + e as u64;
                    j.instant(format!("e{e}-i{i}"), at);
                    let h = j.begin(format!("e{e}-s{i}"), at);
                    j.end(h, at + 500);
                }
                j
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("emitter thread panicked"))
        .collect();

    // Merge in arbitrary (reversed) order.
    let mut merged = Journal::new();
    for j in journals.iter().rev() {
        merged.extend(j);
    }
    assert_eq!(merged.instants().len(), EMITTERS * EVENTS as usize);
    assert_eq!(merged.spans().len(), EMITTERS * EVENTS as usize);

    // Per-emitter recording order is preserved inside the merged journal.
    for e in 0..EMITTERS {
        let times: Vec<u64> = merged
            .instants()
            .iter()
            .filter(|i| i.name.starts_with(&format!("e{e}-")))
            .map(|i| i.at_ns)
            .collect();
        assert_eq!(times.len(), EVENTS as usize);
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "emitter {e}'s events must stay in recording order"
        );
    }
    // Every span closed exactly once with its emitter's duration.
    assert!(merged.spans().iter().all(|s| s.duration_ns() == Some(500)));

    // The rendered table is globally chronological even though the merge
    // interleaved eight emitters' clocks.
    let table = merged.to_table();
    let first = table.lines().next().expect("nonempty table");
    assert!(
        first.contains("e0-i0") || first.contains("e0-s0"),
        "emitter 0's t=0 event must render first, got: {first}"
    );
    let pos_early = table.find("e3-i1").expect("event rendered");
    let pos_late = table.find("e3-i40").expect("event rendered");
    assert!(pos_early < pos_late);
}

fn frag(id: u64, hops: &[(u32, u64)]) -> PacketTrace {
    PacketTrace {
        id,
        hops: hops
            .iter()
            .map(|&(hop_ip, at_ns)| HopStamp::plain(hop_ip, at_ns))
            .collect(),
    }
}

/// A dropped hop (a shard that never stamped, e.g. its fragment was lost at
/// shutdown) must not panic the merge or corrupt other traces: the trace
/// simply has a shorter path.
#[test]
fn merge_traces_tolerates_dropped_hops() {
    let full = vec![
        frag(1, &[(10, 0)]),            // client issue
        frag(1, &[(101, 5), (102, 9)]), // two chain hops
        frag(1, &[(10, 20)]),           // client reply
    ];
    let dropped = vec![
        frag(2, &[(10, 0)]),
        // The middle observer's fragment was lost — no hops 101/102.
        frag(2, &[(10, 30)]),
    ];
    let merged = merge_traces(full.into_iter().chain(dropped));
    assert_eq!(merged.len(), 2);
    let t1 = merged.iter().find(|t| t.id == 1).expect("trace 1");
    let t2 = merged.iter().find(|t| t.id == 2).expect("trace 2");
    assert_eq!(t1.path(), vec![10, 101, 102, 10]);
    // The degraded trace keeps what was observed, in time order.
    assert_eq!(t2.path(), vec![10, 10]);
}

/// Partial fragments of one trace arriving from many observers, in any
/// order, with duplicate stamps from a retransmission observed twice: hops
/// are concatenated and re-sorted by timestamp, never misattributed to
/// another trace ID.
#[test]
fn merge_traces_reassembles_out_of_order_partial_fragments() {
    let parts = vec![
        frag(7, &[(102, 9)]),
        frag(8, &[(201, 4)]),
        frag(7, &[(10, 0), (10, 20)]), // client stamps: issue + reply
        frag(7, &[(101, 5)]),
        frag(8, &[(20, 1)]),
        // A duplicate stamp (same hop, same time) from a second observer of
        // the same packet survives as-is; it is data, not an error.
        frag(8, &[(201, 4)]),
    ];
    let merged = merge_traces(parts);
    assert_eq!(merged.len(), 2);
    // Output is sorted by trace ID for determinism.
    assert!(merged.windows(2).all(|w| w[0].id < w[1].id));
    let t7 = &merged[0];
    assert_eq!(t7.id, 7);
    assert_eq!(t7.path(), vec![10, 101, 102, 10]);
    assert!(
        t7.hops.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
        "hops must be time-ordered after merge"
    );
    let t8 = &merged[1];
    assert_eq!(t8.path(), vec![20, 201, 201]);
}

/// The empty and singleton cases stay trivial.
#[test]
fn merge_traces_handles_empty_and_hopless_fragments() {
    assert!(merge_traces(std::iter::empty()).is_empty());
    // A fragment with no hops at all (a sink drained mid-begin) is kept as
    // an empty-path trace rather than inventing or dropping data.
    let merged = merge_traces(vec![frag(3, &[])]);
    assert_eq!(merged.len(), 1);
    assert!(merged[0].path().is_empty());
}
