//! Differential trace test, net edition: the in-band per-hop traces recorded
//! by the socket dataplane's workers must agree with the discrete-event
//! simulator's switches on the *chain hop order* of every query — with the
//! net side's every byte having crossed a real UDP socket. Both sides derive
//! the trace ID from fields every packet already carries (client IP +
//! request id), so the same scripted op sequence must yield identical
//! per-query hop paths even though one side stamps virtual time and the
//! other wall-clock time on a worker thread.

use std::collections::HashMap;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use netchain_core::{AgentCore, ClusterConfig, KvOp, NetChainCluster};
use netchain_net::{NetConfig, NetDataplane};
use netchain_sim::{SimDuration, SimTime};
use netchain_switch::PipelineConfig;
use netchain_telemetry::{merge_traces, trace_id, PacketTrace, TraceConfig};
use netchain_wire::{Ipv4Addr, Key, NetChainPacket, Value, MAX_FRAME_LEN};

/// Trace everything: shift 0 samples every query.
const TRACE_ALL: TraceConfig = TraceConfig {
    enabled: true,
    sample_shift: 0,
    max_traces: 4096,
};

/// The scripted sequence both executions run: writes and reads over enough
/// keys to cross several distinct chains, plus a miss and a delete.
fn script() -> Vec<KvOp> {
    let keys: Vec<Key> = (0..8)
        .map(|i| Key::from_name(&format!("ntrace/key{i}")))
        .collect();
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        ops.push(KvOp::Write(k, Value::from_u64(700 + i as u64)));
    }
    for &k in &keys {
        ops.push(KvOp::Read(k));
    }
    ops.push(KvOp::Read(Key::from_name("ntrace/never-populated")));
    ops.push(KvOp::Delete(keys[0]));
    ops
}

fn populated_keys() -> Vec<Key> {
    (0..8)
        .map(|i| Key::from_name(&format!("ntrace/key{i}")))
        .collect()
}

/// Hop-IP sequence per trace ID, with client hops (10.1.x.x) filtered out so
/// paths are comparable whether or not a client-side stamper participated.
fn switch_paths(traces: &[PacketTrace]) -> HashMap<u64, Vec<u32>> {
    let client_prefix = |ip: u32| ip >> 16 == (10 << 8) | 1;
    traces
        .iter()
        .map(|t| {
            (
                t.id,
                t.hops
                    .iter()
                    .map(|h| h.hop_ip)
                    .filter(|&ip| !client_prefix(ip))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn net_and_sim_traces_agree_on_chain_hop_order() {
    let pipeline = PipelineConfig::tiny(256);
    let config = ClusterConfig {
        pipeline,
        ..ClusterConfig::default()
    };

    // ---- Simulator execution, tracing every query ----
    let mut cluster = NetChainCluster::testbed(config);
    let sink = cluster.enable_switch_tracing(TRACE_ALL);
    for key in populated_keys() {
        cluster.populate_key(key, &Value::from_u64(0));
    }
    cluster.install_scripted_client(0, script());
    cluster.sim.run_for(SimDuration::from_millis(500));
    assert!(
        cluster.scripted_client(0).expect("host 0").is_done(),
        "simulated script did not finish"
    );
    let sim_traces = merge_traces(sink.borrow_mut().drain());
    let sim_paths = switch_paths(&sim_traces);

    // ---- Socket-dataplane execution, same ring, tracing on ----
    let ring = cluster.ring().clone();
    let populate: Vec<(Key, Value)> = populated_keys()
        .into_iter()
        .map(|k| (k, Value::from_u64(0)))
        .collect();
    let mut net_config = NetConfig::new(ring.clone(), 2, pipeline);
    net_config.trace = Some(TRACE_ALL);
    let plane = NetDataplane::start(net_config, &populate).expect("start dataplane");

    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    socket
        .set_read_timeout(Some(Duration::from_millis(10)))
        .expect("timeout");
    // A generous retry timeout: a retransmitted query would legitimately
    // stamp its chain a second time and the paths would no longer be
    // comparable, so this client never retransmits.
    let agent_config = cluster
        .agent_config(0)
        .with_timeout(SimDuration::from_secs(30));
    plane.register_client(agent_config.client_ip, socket.local_addr().expect("addr"));
    let mut agent = AgentCore::new(agent_config, cluster.directory());
    let epoch = Instant::now();
    let mut buf = [0u8; MAX_FRAME_LEN + 1];
    for op in script() {
        let now = || SimTime(epoch.elapsed().as_nanos() as u64);
        let key = op.key();
        let (request_id, pkt) = agent.begin(now(), op);
        socket
            .send_to(&pkt.to_bytes(), plane.addr_of_key(&key))
            .expect("send query");
        let start = Instant::now();
        loop {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "op {request_id} timed out"
            );
            if let Ok((len, _)) = socket.recv_from(&mut buf) {
                if let Ok(reply) = NetChainPacket::from_bytes(&buf[..len]) {
                    if agent.on_reply(now(), &reply).is_some() {
                        break;
                    }
                }
            }
        }
    }
    let report = plane.shutdown();
    let net_paths = switch_paths(&report.traces);

    // ---- Comparison ----
    let ops = script().len();
    assert_eq!(sim_paths.len(), ops, "sim must trace every scripted op");
    assert_eq!(net_paths.len(), ops, "net must trace every scripted op");
    let client_ip = u32::from_be_bytes(Ipv4Addr::for_host(0).0);
    for request_id in 1..=ops as u64 {
        let id = trace_id(client_ip, request_id);
        let sim = sim_paths
            .get(&id)
            .unwrap_or_else(|| panic!("sim lacks a trace for request {request_id}"));
        let net = net_paths
            .get(&id)
            .unwrap_or_else(|| panic!("net lacks a trace for request {request_id}"));
        assert_eq!(
            sim, net,
            "request {request_id}: hop order diverged between simulator and socket dataplane"
        );
        assert!(!sim.is_empty(), "request {request_id}: empty hop path");
    }
    // Writes walk full chains (3 hops), reads hit the tail alone.
    assert!(
        net_paths.values().any(|p| p.len() >= 3),
        "no full-chain write path was traced"
    );
    assert!(
        net_paths.values().any(|p| p.len() == 1),
        "no tail-only read path was traced"
    );
}
