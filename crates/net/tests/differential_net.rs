//! Differential test: the socket dataplane and the discrete-event simulator
//! run the *same* switch program (`netchain_switch::NetChainSwitch`), so the
//! same scripted op sequence must produce identical reply statuses/values and
//! identical per-switch KV state in both — with the dataplane's copy of every
//! byte having crossed a real UDP socket. This is the net-mode analogue of
//! the fabric's `differential_sim` test: any divergence in chain routing,
//! per-op behaviour, or stored sequence numbers fails loudly.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use netchain_core::{AgentCore, ClusterConfig, CompletedQuery, KvOp, NetChainCluster};
use netchain_net::{NetConfig, NetDataplane};
use netchain_sim::{SimDuration, SimTime};
use netchain_switch::{ExportedEntry, PipelineConfig};
use netchain_wire::{Ipv4Addr, Key, NetChainPacket, Value, MAX_FRAME_LEN};

/// The scripted sequence both executions run: writes, reads (hits and
/// misses), contended CAS (success then failure), deletes, and a
/// read-after-delete, spread over enough keys to cross several chains.
fn script() -> Vec<KvOp> {
    let keys: Vec<Key> = (0..8)
        .map(|i| Key::from_name(&format!("diff/key{i}")))
        .collect();
    let lock = Key::from_name("diff/lock");
    let ghost = Key::from_name("diff/never-populated");
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        ops.push(KvOp::Write(k, Value::from_u64(100 + i as u64)));
    }
    for &k in &keys {
        ops.push(KvOp::Read(k));
    }
    for (i, &k) in keys.iter().enumerate().take(4) {
        ops.push(KvOp::Write(k, Value::from_u64(200 + i as u64)));
        ops.push(KvOp::Read(k));
    }
    ops.push(KvOp::Cas {
        key: lock,
        expected: 0,
        new: 11,
    });
    ops.push(KvOp::Cas {
        key: lock,
        expected: 0,
        new: 22,
    });
    ops.push(KvOp::Cas {
        key: lock,
        expected: 11,
        new: 33,
    });
    ops.push(KvOp::Read(lock));
    ops.push(KvOp::Read(ghost));
    ops.push(KvOp::Delete(keys[7]));
    ops.push(KvOp::Read(keys[7]));
    ops
}

/// Keys the control plane pre-populates (everything the script touches except
/// the deliberate miss).
fn populated_keys() -> Vec<Key> {
    let mut keys: Vec<Key> = (0..8)
        .map(|i| Key::from_name(&format!("diff/key{i}")))
        .collect();
    keys.push(Key::from_name("diff/lock"));
    keys
}

/// Sorted, comparable snapshot of one switch's live KV state.
fn kv_snapshot(entries: impl IntoIterator<Item = ExportedEntry>) -> Vec<ExportedEntry> {
    let mut v: Vec<ExportedEntry> = entries.into_iter().collect();
    v.sort_by_key(|a| a.key);
    v
}

/// Executes one op against the dataplane over a real socket and returns the
/// completion, retransmitting on (loopback-rare) loss.
fn execute(
    socket: &UdpSocket,
    agent: &mut AgentCore,
    plane: &NetDataplane,
    epoch: Instant,
    op: KvOp,
) -> CompletedQuery {
    let now = || SimTime(epoch.elapsed().as_nanos() as u64);
    let key = op.key();
    let (request_id, pkt) = agent.begin(now(), op);
    socket
        .send_to(&pkt.to_bytes(), plane.addr_of_key(&key))
        .expect("send query");
    let start = Instant::now();
    let mut buf = [0u8; MAX_FRAME_LEN + 1];
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "op {request_id} timed out"
        );
        if let Ok((len, _)) = socket.recv_from(&mut buf) {
            if let Ok(reply) = NetChainPacket::from_bytes(&buf[..len]) {
                if let Some(done) = agent.on_reply(now(), &reply) {
                    assert_eq!(
                        done.request_id, request_id,
                        "sequential client completed a different op"
                    );
                    return done;
                }
            }
        }
        for retry in agent.poll_retries(now()).retransmit {
            let key = retry.netchain.key;
            let _ = socket.send_to(&retry.to_bytes(), plane.addr_of_key(&key));
        }
    }
}

#[test]
fn net_dataplane_matches_simulator_on_scripted_ops() {
    // Both executions share geometry: the testbed ring (4 switches) and a
    // small identical pipeline, so slot-level state is comparable.
    let pipeline = PipelineConfig::tiny(256);
    let config = ClusterConfig {
        pipeline,
        ..ClusterConfig::default()
    };

    // ---- Simulator execution ----
    let mut cluster = NetChainCluster::testbed(config);
    for key in populated_keys() {
        cluster.populate_key(key, &Value::from_u64(0));
    }
    cluster.install_scripted_client(0, script());
    cluster.sim.run_for(SimDuration::from_millis(500));
    let sim_client = cluster.scripted_client(0).expect("host 0 has the script");
    assert!(sim_client.is_done(), "simulated script did not finish");
    assert_eq!(sim_client.agent_stats().version_regressions, 0);
    let sim_results = sim_client.results();

    // ---- Socket-dataplane execution ----
    // Same ring, same pipeline, keyspace split over two shard workers; every
    // query and reply crosses a real UDP socket.
    let ring = cluster.ring().clone();
    let populate: Vec<(Key, Value)> = populated_keys()
        .into_iter()
        .map(|k| (k, Value::from_u64(0)))
        .collect();
    let plane = NetDataplane::start(NetConfig::new(ring.clone(), 2, pipeline), &populate)
        .expect("start dataplane");

    // Same client logic: an AgentCore configured exactly like the simulated
    // host 0 (so request ids line up), driven sequentially over a socket.
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    socket
        .set_read_timeout(Some(Duration::from_millis(10)))
        .expect("timeout");
    let agent_config = cluster.agent_config(0);
    plane.register_client(agent_config.client_ip, socket.local_addr().expect("addr"));
    let mut agent = AgentCore::new(agent_config, cluster.directory());
    let epoch = Instant::now();
    let net_results: Vec<CompletedQuery> = script()
        .into_iter()
        .map(|op| execute(&socket, &mut agent, &plane, epoch, op))
        .collect();
    assert_eq!(agent.stats().version_regressions, 0);
    let report = plane.shutdown();

    // ---- Reply-level comparison ----
    assert_eq!(sim_results.len(), net_results.len());
    for (i, (sim, net)) in sim_results.iter().zip(&net_results).enumerate() {
        assert_eq!(sim.op, net.op, "op {i}: scripts diverged");
        assert_eq!(sim.request_id, net.request_id, "op {i}: request id");
        assert_eq!(sim.status, net.status, "op {i} ({:?}): status", sim.op);
        assert_eq!(sim.value, net.value, "op {i} ({:?}): value", sim.op);
        assert_eq!(sim.seq, net.seq, "op {i} ({:?}): version", sim.op);
    }

    // ---- KV-state comparison ----
    // A dataplane switch's state is the union over shard workers (shards
    // partition the keyspace, so the union is disjoint); it must equal the
    // simulated switch's state entry for entry — including tombstones.
    let switch_ips: Vec<Ipv4Addr> = ring.switches().to_vec();
    for (idx, &ip) in switch_ips.iter().enumerate() {
        let sim_state = kv_snapshot(cluster.switch(idx).switch().kv().export_entries());
        let net_state = kv_snapshot(report.shards.iter().flat_map(|s| {
            s.switch(ip)
                .expect("every shard hosts every ring switch")
                .kv()
                .export_entries()
        }));
        assert_eq!(
            sim_state, net_state,
            "switch {idx} diverged between simulator and socket dataplane"
        );
    }
}
