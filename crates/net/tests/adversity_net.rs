//! Adversity tests: the socket dataplane's fault shim injects packet loss
//! and reply duplication at the syscall boundary, and the sans-IO agent
//! machinery must absorb both without consistency damage — retransmissions
//! recover dropped queries with zero version regressions, and a duplicated
//! reply must never complete the same query twice.

use std::time::Duration;

use netchain_core::HashRing;
use netchain_fabric::WorkloadSpec;
use netchain_net::{run_open_loop, FaultSpec, NetConfig, NetDataplane, OpenLoopConfig};
use netchain_sim::SimDuration;
use netchain_switch::PipelineConfig;
use netchain_wire::{Ipv4Addr, Key, Value};

fn start_plane(num_keys: u64, fault: FaultSpec) -> NetDataplane {
    let ring = HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
    let populate: Vec<(Key, Value)> = (0..num_keys)
        .map(|k| (Key::from_u64(k), Value::from_u64(0)))
        .collect();
    let config = NetConfig {
        fault,
        ..NetConfig::new(ring, 2, PipelineConfig::tiny(4096))
    };
    NetDataplane::start(config, &populate).expect("start plane")
}

#[test]
fn dropped_queries_are_absorbed_by_retries_without_version_regressions() {
    // Every 3rd ingress datagram (queries and retransmissions alike) is
    // dropped at the worker's receive loop. Agents must retransmit through
    // the loss and complete every single op, and the version-monotonicity
    // check each agent runs on every reply must stay clean.
    let plane = start_plane(
        32,
        FaultSpec {
            drop_every: 3,
            duplicate_every: 0,
        },
    );
    let spec = WorkloadSpec::mixed(32, u64::MAX, 60, 30);
    let mut config = OpenLoopConfig::new(32, 2, 1_500.0, Duration::from_millis(300));
    // Tight timeout so retransmissions race through the drop pattern well
    // inside the drain grace.
    config.agent_timeout = SimDuration::from_millis(10);
    config.agent_max_retries = 20;
    config.drain_grace = Duration::from_secs(2);
    let report = run_open_loop(&plane, spec, config);
    let net = plane.shutdown();

    let dropped: u64 = net.io.iter().map(|io| io.shim_dropped).sum();
    assert!(dropped > 0, "the fault shim never fired");
    assert!(
        report.retries > 0,
        "loss without retransmissions means nothing was dropped"
    );
    assert_eq!(report.abandoned, 0, "retry budget must absorb the loss");
    assert_eq!(
        report.completed, report.issued,
        "every op must eventually complete through the loss"
    );
    assert_eq!(report.version_regressions, 0);
}

#[test]
fn duplicated_replies_never_complete_a_query_twice() {
    // Every 2nd reply is sent twice. The first copy completes the query and
    // retires it; the second must be classified stale and discarded — never
    // matched to a different outstanding op, never double-counted.
    let plane = start_plane(
        16,
        FaultSpec {
            drop_every: 0,
            duplicate_every: 2,
        },
    );
    let spec = WorkloadSpec::uniform_read(16, u64::MAX);
    let config = OpenLoopConfig::new(16, 1, 1_000.0, Duration::from_millis(300));
    let report = run_open_loop(&plane, spec, config);
    let net = plane.shutdown();

    let duplicated: u64 = net.io.iter().map(|io| io.shim_duplicated).sum();
    assert!(duplicated > 0, "the duplication shim never fired");
    assert_eq!(
        report.completed, report.issued,
        "a duplicate reply must not complete a second query"
    );
    assert!(
        report.stale_replies > 0,
        "duplicate replies must be counted stale, not silently matched"
    );
    assert_eq!(report.version_regressions, 0);
}
