//! The controlled batched-vs-single syscall measurement.
//!
//! The open-loop system runs in [`crate::openloop`] measure the whole
//! co-located pipeline — generators, shard workers and the kernel sharing
//! whatever cores the machine has — so on small machines the burst/single
//! comparison there is dominated by scheduler placement, not syscall cost.
//! This microbenchmark isolates the quantity the `mmsg` shim actually
//! changes: one thread, one socket pair, the same frames, timed once
//! through `sendmmsg`/`recvmmsg` bursts and once through the
//! `send_to`/`recv_from` single-packet discipline. The difference is pure
//! per-datagram syscall amortization and is stable even on a single core.

pub use mmsg::MAX_BURST;

use mmsg::{RecvQueue, SendQueue};
use netchain_wire::MAX_FRAME_LEN;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// Result of [`syscall_microbench`]: nanoseconds of send+receive syscall
/// work per datagram, for each I/O discipline.
#[derive(Debug, Clone, Copy)]
pub struct SyscallBench {
    /// ns/datagram through `send_to` + `recv_from` (one syscall pair each).
    pub single_ns_per_datagram: f64,
    /// ns/datagram through `sendmmsg` + `recvmmsg` (one syscall pair per
    /// [`MAX_BURST`]).
    pub burst_ns_per_datagram: f64,
}

impl SyscallBench {
    /// How much faster the batched discipline moves a datagram.
    pub fn speedup(&self) -> f64 {
        self.single_ns_per_datagram / self.burst_ns_per_datagram.max(1e-9)
    }
}

/// Times `bursts` round trips of [`MAX_BURST`] query-sized datagrams over a
/// loopback socket pair, in both I/O disciplines; each discipline's figure
/// is the minimum over `repeats` timed runs (minimum, because every source
/// of error — scheduling, interrupts — only ever adds time).
pub fn syscall_microbench(bursts: u32, repeats: u32) -> SyscallBench {
    assert!(bursts > 0 && repeats > 0);
    let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    let dst = rx.local_addr().expect("rx addr");
    rx.set_read_timeout(Some(Duration::from_secs(1)))
        .expect("rx timeout");
    // A representative query frame: headers plus a short value, well under
    // MAX_FRAME_LEN, like the load generator emits.
    let frame = [0x5au8; 100];
    let mut rq = RecvQueue::new(MAX_BURST, MAX_FRAME_LEN + 1);
    let mut sq = SendQueue::with_capacity(MAX_BURST, MAX_FRAME_LEN);
    let mut buf = [0u8; MAX_FRAME_LEN + 1];

    let burst_pass = |sq: &mut SendQueue, rq: &mut RecvQueue| {
        for _ in 0..bursts {
            sq.clear();
            for _ in 0..MAX_BURST {
                sq.push(&frame, dst);
            }
            sq.send(&tx).expect("burst send");
            let mut got = 0;
            while got < MAX_BURST {
                got += rq.recv(&rx).expect("burst recv");
            }
        }
    };
    let single_pass = |buf: &mut [u8]| {
        for _ in 0..bursts {
            // The single-packet discipline still moves the same windows of
            // MAX_BURST in-flight datagrams — only the syscall shape
            // differs.
            for _ in 0..MAX_BURST {
                tx.send_to(&frame, dst).expect("single send");
            }
            for _ in 0..MAX_BURST {
                rx.recv_from(buf).expect("single recv");
            }
        }
    };

    // Warm up both paths (page faults, route caches) before timing.
    burst_pass(&mut sq, &mut rq);
    single_pass(&mut buf);

    let datagrams = f64::from(bursts) * MAX_BURST as f64;
    let mut burst_ns = f64::INFINITY;
    let mut single_ns = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        burst_pass(&mut sq, &mut rq);
        burst_ns = burst_ns.min(t0.elapsed().as_nanos() as f64 / datagrams);
        let t0 = Instant::now();
        single_pass(&mut buf);
        single_ns = single_ns.min(t0.elapsed().as_nanos() as f64 / datagrams);
    }
    SyscallBench {
        single_ns_per_datagram: single_ns,
        burst_ns_per_datagram: burst_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_times_both_disciplines() {
        let bench = syscall_microbench(20, 2);
        assert!(bench.single_ns_per_datagram > 0.0);
        assert!(bench.burst_ns_per_datagram > 0.0);
        assert!(bench.speedup() > 0.0);
    }
}
