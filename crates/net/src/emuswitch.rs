//! A NetChain switch emulated on a loopback UDP socket.
//!
//! The full wire packet (Ethernet + IPv4 + UDP + NetChain header, exactly as
//! `netchain-wire` emits it) is carried as the payload of a real UDP
//! datagram. The emulated switch parses it, runs the data-plane program, and
//! re-emits the rewritten packet towards whatever socket currently stands in
//! for the destination IP.

use netchain_switch::{NetChainSwitch, SwitchAction};
use netchain_wire::{Ipv4Addr, NetChainPacket, MAX_FRAME_LEN};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A handle to a running emulated switch: the data plane is shared with the
/// forwarding thread behind a mutex so the control plane (the deployment,
/// playing the controller's role) can program tables and read statistics
/// while traffic flows.
pub struct SwitchHandle {
    ip: Ipv4Addr,
    addr: SocketAddr,
    switch: Arc<Mutex<NetChainSwitch>>,
    shutdown: Arc<AtomicBool>,
    oversized: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl SwitchHandle {
    /// Spawns the forwarding thread for `switch` on `socket`, forwarding
    /// rewritten packets according to `routes` (virtual IP → real socket).
    /// The route table is shared so the deployment can register client
    /// sockets after the switches are already running.
    pub fn spawn(
        switch: NetChainSwitch,
        socket: UdpSocket,
        routes: Arc<RwLock<HashMap<Ipv4Addr, SocketAddr>>>,
    ) -> std::io::Result<Self> {
        let ip = switch.ip();
        let addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let switch = Arc::new(Mutex::new(switch));
        let shutdown = Arc::new(AtomicBool::new(false));
        let oversized = Arc::new(AtomicU64::new(0));
        let thread_switch = Arc::clone(&switch);
        let thread_shutdown = Arc::clone(&shutdown);
        let thread_oversized = Arc::clone(&oversized);
        let thread = std::thread::Builder::new()
            .name(format!("netchain-switch-{ip}"))
            .spawn(move || {
                // One byte past the longest legal frame, so an oversized
                // datagram is detected and counted instead of being silently
                // truncated into an unparseable prefix.
                let mut buf = [0u8; MAX_FRAME_LEN + 1];
                while !thread_shutdown.load(Ordering::Relaxed) {
                    let len = match socket.recv_from(&mut buf) {
                        Ok((len, _)) => len,
                        Err(ref e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    };
                    if len > MAX_FRAME_LEN {
                        thread_oversized.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let Ok(pkt) = NetChainPacket::from_bytes(&buf[..len]) else {
                        continue;
                    };
                    let action = thread_switch.lock().handle(pkt);
                    if let SwitchAction::Forward(out) = action {
                        let dest = routes.read().get(&out.ip.dst).copied();
                        if let Some(dest) = dest {
                            let _ = socket.send_to(&out.to_bytes(), dest);
                        }
                    }
                }
            })?;
        Ok(SwitchHandle {
            ip,
            addr,
            switch,
            shutdown,
            oversized,
            thread: Some(thread),
        })
    }

    /// The switch's virtual IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The real socket address the switch listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Datagrams received that exceeded the maximum legal frame length
    /// (dropped and counted, never silently truncated).
    pub fn oversized(&self) -> u64 {
        self.oversized.load(Ordering::Relaxed)
    }

    /// Control-plane access to the data plane (install keys, rules, read
    /// statistics) — the role the switch OS agent plays in the prototype.
    pub fn with_switch<R>(&self, f: impl FnOnce(&mut NetChainSwitch) -> R) -> R {
        f(&mut self.switch.lock())
    }
}

impl Drop for SwitchHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
