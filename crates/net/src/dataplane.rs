//! The batched, keyspace-sharded socket dataplane.
//!
//! This is the fabric's architecture carried onto real kernel UDP sockets.
//! Where the legacy [`crate::Deployment`] runs one thread per emulated
//! switch — single-packet `recv_from`, an owned parse, one mutex-guarded
//! [`netchain_switch::NetChainSwitch::handle`] call, one `send_to` — the
//! dataplane runs one worker thread per **keyspace shard**:
//!
//! * Ingress is burst I/O through the vendored [`mmsg`] shim: one
//!   `recvmmsg` call fills a whole [`RecvQueue`] of fixed-size slots
//!   (sized one byte past [`MAX_FRAME_LEN`], so oversized datagrams are
//!   detected and counted instead of silently truncated).
//! * Each worker owns a [`netchain_fabric::Shard`] — the staged
//!   validate/hash/probe/execute pipeline over
//!   [`netchain_switch::NetChainSwitch::step_batch_staged`], parsing
//!   zero-copy straight out of the receive slots. No mutex: the shard is
//!   thread-local, clients steer queries to the owning worker's socket with
//!   [`NetDataplane::addr_of_key`] (the same [`shard_of_key`] rule the
//!   fabric uses).
//! * Egress batches every generated reply into a [`SendQueue`] routed by the
//!   reply's destination IP and flushes it in `sendmmsg` bursts.
//!
//! [`IoMode::Single`] forces the portable one-datagram-per-syscall paths on
//! the identical processing pipeline, which is what lets `net_scale` measure
//! the benefit of batched syscalls on the same box. [`FaultSpec`] is the
//! test shim for adversity coverage: deterministically drop every Nth
//! ingress datagram or duplicate every Nth reply.

use mmsg::{RecvQueue, SendQueue, MAX_BURST};
use netchain_core::HashRing;
use netchain_fabric::{shard_of_key, Shard};
use netchain_switch::{PipelineConfig, ProbeGauges};
use netchain_telemetry::{merge_traces, Metrics, PacketTrace, TraceConfig};
use netchain_wire::{BatchEncoder, Ipv4Addr, Key, Value, MAX_FRAME_LEN};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the workers cross the kernel boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// `recvmmsg`/`sendmmsg` bursts (portable single-packet fallback on
    /// platforms without the syscalls).
    Burst,
    /// One datagram per syscall, unconditionally — the pre-rewrite I/O
    /// discipline on the rewritten processing pipeline, kept as the
    /// measurable baseline.
    Single,
}

impl IoMode {
    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            IoMode::Burst => "burst",
            IoMode::Single => "single",
        }
    }
}

/// Deterministic adversity injection on the worker's I/O path (testing
/// only; [`FaultSpec::none`] is free).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSpec {
    /// Drop every Nth ingress datagram before parsing (0 disables). Models
    /// query or in-chain loss: the client's retry machinery must absorb it.
    pub drop_every: u64,
    /// Send every Nth reply twice (0 disables). Models duplication in the
    /// network: the client must not complete a query twice.
    pub duplicate_every: u64,
}

impl FaultSpec {
    /// No injected faults.
    pub fn none() -> Self {
        FaultSpec::default()
    }
}

/// Configuration of a [`NetDataplane`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The consistent-hash ring the shards replicate (shared with clients so
    /// chain construction and shard steering agree).
    pub ring: HashRing,
    /// Worker threads / keyspace shards.
    pub num_shards: usize,
    /// Pipeline geometry of every switch replica.
    pub pipeline: PipelineConfig,
    /// Syscall discipline.
    pub io_mode: IoMode,
    /// Receive slots filled per recv call (clamped to [`MAX_BURST`]).
    pub burst: usize,
    /// Socket read timeout: the shutdown latency bound.
    pub read_timeout: Duration,
    /// Injected adversity (tests only).
    pub fault: FaultSpec,
    /// In-band per-hop tracing on the worker shards. `None` (the default)
    /// keeps the hot path exactly as before; when set, every worker stamps
    /// sampled packets against a wall-clock origin taken at
    /// [`NetDataplane::start`] and the merged traces come back in
    /// [`NetReport::traces`].
    pub trace: Option<TraceConfig>,
}

impl NetConfig {
    /// Burst-mode defaults over `ring` with `num_shards` workers.
    pub fn new(ring: HashRing, num_shards: usize, pipeline: PipelineConfig) -> Self {
        NetConfig {
            ring,
            num_shards,
            pipeline,
            io_mode: IoMode::Burst,
            burst: 32,
            read_timeout: Duration::from_millis(5),
            fault: FaultSpec::none(),
            trace: None,
        }
    }
}

/// Number of buckets in [`IoStats::recv_fill`].
pub const RECV_FILL_BUCKETS: usize = 7;

/// Upper bounds (inclusive) of the [`IoStats::recv_fill`] buckets: recv
/// calls returning 1, 2, ≤4, ≤8, ≤16, ≤32 and ≤64 datagrams.
pub const RECV_FILL_BOUNDS: [usize; RECV_FILL_BUCKETS] = [1, 2, 4, 8, 16, 32, MAX_BURST];

/// The [`IoStats::recv_fill`] bucket a recv call returning `n` datagrams
/// lands in.
fn recv_fill_bucket(n: usize) -> usize {
    RECV_FILL_BOUNDS
        .iter()
        .position(|&b| n <= b)
        .unwrap_or(RECV_FILL_BUCKETS - 1)
}

/// Per-worker syscall-layer counters (the shard's own [`netchain_fabric::ShardStats`]
/// cover the processing pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStats {
    /// recv calls that returned at least one datagram.
    pub recv_calls: u64,
    /// Datagrams received.
    pub datagrams_in: u64,
    /// Datagrams handed to the kernel for transmission.
    pub datagrams_out: u64,
    /// Datagrams exceeding [`MAX_FRAME_LEN`] (counted, never truncated).
    pub oversized: u64,
    /// Ingress datagrams dropped by the fault shim.
    pub shim_dropped: u64,
    /// Replies duplicated by the fault shim.
    pub shim_duplicated: u64,
    /// Replies whose destination IP had no registered socket.
    pub unrouted_replies: u64,
    /// Send calls that failed (their queued frames were discarded).
    pub send_errors: u64,
    /// Recv-batch-occupancy histogram: how many recv calls returned 1, 2,
    /// ≤4, ≤8, ≤16, ≤32 and ≤64 datagrams ([`RECV_FILL_BOUNDS`]). This is
    /// the denominator of the burst-vs-single question: `recvmmsg` only
    /// amortises its syscall when the socket queue actually holds a batch,
    /// and at moderate offered loads most calls return one or two datagrams.
    pub recv_fill: [u64; RECV_FILL_BUCKETS],
}

impl IoStats {
    /// Mean datagrams returned per successful recv call.
    pub fn batch_factor(&self) -> f64 {
        if self.recv_calls == 0 {
            0.0
        } else {
            self.datagrams_in as f64 / self.recv_calls as f64
        }
    }
}

/// Counter names for [`IoStats`]'s [`Metrics`] implementation.
pub const IO_METRICS: [&str; 8 + RECV_FILL_BUCKETS] = [
    "recv_calls",
    "datagrams_in",
    "datagrams_out",
    "oversized",
    "shim_dropped",
    "shim_duplicated",
    "unrouted_replies",
    "send_errors",
    "recv_fill_le_1",
    "recv_fill_le_2",
    "recv_fill_le_4",
    "recv_fill_le_8",
    "recv_fill_le_16",
    "recv_fill_le_32",
    "recv_fill_le_64",
];

impl Metrics for IoStats {
    fn metric_names(&self) -> &'static [&'static str] {
        &IO_METRICS
    }

    fn metric_values(&self) -> Vec<u64> {
        let mut v = vec![
            self.recv_calls,
            self.datagrams_in,
            self.datagrams_out,
            self.oversized,
            self.shim_dropped,
            self.shim_duplicated,
            self.unrouted_replies,
            self.send_errors,
        ];
        v.extend_from_slice(&self.recv_fill);
        v
    }
}

/// Everything a stopped dataplane hands back: the shards (with their switch
/// replicas' final state, for differential checks) and the per-worker I/O
/// counters.
pub struct NetReport {
    /// The worker shards, index-aligned with the shard ids.
    pub shards: Vec<Shard>,
    /// Per-worker syscall-layer counters, index-aligned with the shards.
    pub io: Vec<IoStats>,
    /// Merged per-hop traces from every worker (empty unless
    /// [`NetConfig::trace`] was set).
    pub traces: Vec<PacketTrace>,
}

struct Worker {
    addr: SocketAddr,
    thread: JoinHandle<(Shard, IoStats)>,
}

/// A running sharded socket dataplane.
pub struct NetDataplane {
    ring: HashRing,
    num_shards: usize,
    workers: Vec<Worker>,
    routes: Arc<RwLock<HashMap<Ipv4Addr, SocketAddr>>>,
    shutdown: Arc<AtomicBool>,
    /// Wall-clock origin every worker's trace stamps are relative to.
    epoch: std::time::Instant,
}

impl NetDataplane {
    /// Binds one socket per shard, pre-populates `populate` (each key lands
    /// on the worker owning it, on every switch of its chain) and spawns the
    /// worker threads.
    pub fn start(config: NetConfig, populate: &[(Key, Value)]) -> std::io::Result<Self> {
        assert!(config.num_shards > 0, "at least one shard");
        let burst = config.burst.clamp(1, MAX_BURST);
        let routes: Arc<RwLock<HashMap<Ipv4Addr, SocketAddr>>> =
            Arc::new(RwLock::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(config.num_shards);
        // One wall-clock origin for every worker, so hop stamps from
        // different threads are comparable after the merge.
        let t0 = std::time::Instant::now();
        for id in 0..config.num_shards {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.set_read_timeout(Some(config.read_timeout))?;
            let addr = socket.local_addr()?;
            let mut shard = Shard::new(id, config.num_shards, config.ring.clone(), config.pipeline);
            if let Some(trace) = config.trace {
                shard.enable_tracing(trace, t0);
            }
            for (key, value) in populate {
                if shard.owns(key) {
                    shard.populate(*key, value);
                }
            }
            let routes = Arc::clone(&routes);
            let shutdown = Arc::clone(&shutdown);
            let (io_mode, fault) = (config.io_mode, config.fault);
            let thread = std::thread::Builder::new()
                .name(format!("netchain-net-shard-{id}"))
                .spawn(move || {
                    worker_loop(socket, shard, routes, io_mode, burst, fault, shutdown)
                })?;
            workers.push(Worker { addr, thread });
        }
        Ok(NetDataplane {
            ring: config.ring,
            num_shards: config.num_shards,
            workers,
            routes,
            shutdown,
            epoch: t0,
        })
    }

    /// The wall-clock origin of the dataplane's trace stamps. Client-side
    /// stampers (the open-loop generator) must use the same origin so merged
    /// hop sequences are comparable across threads and processes.
    pub fn epoch(&self) -> std::time::Instant {
        self.epoch
    }

    /// The ring shared with clients.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The socket addresses of the workers, index-aligned with shard ids.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.workers.iter().map(|w| w.addr).collect()
    }

    /// The socket address of the worker owning `key` — where a query for it
    /// must be sent.
    pub fn addr_of_key(&self, key: &Key) -> SocketAddr {
        self.workers[shard_of_key(&self.ring, key, self.num_shards)].addr
    }

    /// Registers a client's reply route (virtual IP → real socket address).
    pub fn register_client(&self, ip: Ipv4Addr, addr: SocketAddr) {
        self.routes.write().insert(ip, addr);
    }

    /// Removes a client's reply route.
    pub fn deregister_client(&self, ip: Ipv4Addr) {
        self.routes.write().remove(&ip);
    }

    /// Stops the workers and returns their final shard state and counters.
    pub fn shutdown(self) -> NetReport {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut io = Vec::with_capacity(self.workers.len());
        for worker in self.workers {
            let (shard, stats) = worker
                .thread
                .join()
                .expect("dataplane worker must not panic");
            shards.push(shard);
            io.push(stats);
        }
        let traces = merge_traces(shards.iter_mut().flat_map(|s| s.take_traces()));
        NetReport { shards, io, traces }
    }
}

/// Frame-absolute offset of the IPv4 destination address: Ethernet (14) +
/// the 16-byte prefix of the IPv4 header. Replies come out of the shard's
/// own [`BatchEncoder`], so the fixed-offset read needs no re-validation.
const DST_IP_OFF: usize = 14 + 16;

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    socket: UdpSocket,
    mut shard: Shard,
    routes: Arc<RwLock<HashMap<Ipv4Addr, SocketAddr>>>,
    io_mode: IoMode,
    burst: usize,
    fault: FaultSpec,
    shutdown: Arc<AtomicBool>,
) -> (Shard, IoStats) {
    let mut io = IoStats::default();
    // Slots one byte past the longest legal frame: an oversized datagram
    // shows up as `len > MAX_FRAME_LEN` instead of a silently truncated
    // prefix (in burst mode the kernel would not even flag it per-message).
    let mut rq = RecvQueue::new(burst, MAX_FRAME_LEN + 1);
    let mut sq = SendQueue::with_capacity(burst, MAX_FRAME_LEN);
    let mut replies = BatchEncoder::with_capacity(burst, MAX_FRAME_LEN);
    let mut accepted: Vec<usize> = Vec::with_capacity(burst);
    // Deterministic shim counters (per worker, so `every Nth` is exact).
    let mut ingress_seen = 0u64;
    let mut egress_seen = 0u64;
    while !shutdown.load(Ordering::Relaxed) {
        let received = match io_mode {
            IoMode::Burst => rq.recv(&socket),
            IoMode::Single => rq.recv_single(&socket),
        };
        let n = match received {
            Ok(n) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    // A prior send_to towards a closed port can surface here
                    // as a latched ICMP error on Linux; not fatal.
                    || e.kind() == std::io::ErrorKind::ConnectionRefused =>
            {
                continue
            }
            Err(_) => break,
        };
        io.recv_calls += 1;
        io.datagrams_in += n as u64;
        io.recv_fill[recv_fill_bucket(n)] += 1;
        accepted.clear();
        for i in 0..n {
            if rq.frame(i).len() > MAX_FRAME_LEN {
                io.oversized += 1;
                continue;
            }
            ingress_seen += 1;
            if fault.drop_every != 0 && ingress_seen.is_multiple_of(fault.drop_every) {
                io.shim_dropped += 1;
                continue;
            }
            accepted.push(i);
        }
        if accepted.is_empty() {
            continue;
        }
        // Publish the worker's gauges so an in-band `Stat` probe inside this
        // burst reports live ingress occupancy. One copy per hosted switch
        // per burst, never per packet.
        shard.set_probe_gauges(ProbeGauges {
            queue_depth: n as u16,
            queue_cap: burst as u16,
            lat_buckets: [0; netchain_wire::STAT_LAT_BUCKETS],
        });
        replies.clear();
        shard.process_burst(accepted.iter().map(|&i| rq.frame(i)), &mut replies);
        if replies.is_empty() {
            continue;
        }
        sq.clear();
        {
            let routes = routes.read();
            for frame in replies.frames() {
                let dst = Ipv4Addr([
                    frame[DST_IP_OFF],
                    frame[DST_IP_OFF + 1],
                    frame[DST_IP_OFF + 2],
                    frame[DST_IP_OFF + 3],
                ]);
                let Some(&addr) = routes.get(&dst) else {
                    io.unrouted_replies += 1;
                    continue;
                };
                sq.push(frame, addr);
                egress_seen += 1;
                if fault.duplicate_every != 0 && egress_seen.is_multiple_of(fault.duplicate_every) {
                    sq.push(frame, addr);
                    io.shim_duplicated += 1;
                }
            }
        }
        if sq.is_empty() {
            continue;
        }
        let sent = match io_mode {
            IoMode::Burst => sq.send(&socket),
            IoMode::Single => sq.send_single(&socket),
        };
        match sent {
            Ok(count) => io.datagrams_out += count as u64,
            Err(_) => {
                // UDP towards a vanished client (ICMP unreachable latched on
                // the socket): discard the rest of this batch and move on.
                io.send_errors += 1;
                sq.clear();
            }
        }
    }
    (shard, io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_core::{AgentConfig, AgentCore, ChainDirectory, KvOp};
    use netchain_sim::{SimDuration, SimTime};
    use netchain_wire::{NetChainPacket, PacketView, QueryStatus};
    use std::time::Instant;

    fn test_ring() -> HashRing {
        HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7)
    }

    /// Synchronous one-op-at-a-time client over the dataplane, for tests.
    struct TestClient {
        socket: UdpSocket,
        agent: AgentCore,
        epoch: Instant,
    }

    impl TestClient {
        fn connect(plane: &NetDataplane, id: u32) -> TestClient {
            let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client");
            socket
                .set_read_timeout(Some(Duration::from_millis(10)))
                .expect("timeout");
            let ip = Ipv4Addr::for_host(id);
            plane.register_client(ip, socket.local_addr().expect("addr"));
            let config = AgentConfig::new(ip)
                .with_timeout(SimDuration::from_millis(50))
                .with_max_retries(5);
            TestClient {
                socket,
                agent: AgentCore::new(config, ChainDirectory::new(plane.ring().clone())),
                epoch: Instant::now(),
            }
        }

        fn now(&self) -> SimTime {
            SimTime(self.epoch.elapsed().as_nanos() as u64)
        }

        fn execute(&mut self, plane: &NetDataplane, op: KvOp) -> netchain_core::CompletedQuery {
            let key = op.key();
            let (request_id, pkt) = self.agent.begin(self.now(), op);
            let dest = plane.addr_of_key(&key);
            self.socket
                .send_to(&pkt.to_bytes(), dest)
                .expect("send query");
            let start = Instant::now();
            let mut buf = [0u8; MAX_FRAME_LEN + 1];
            loop {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "op {request_id} timed out"
                );
                if let Ok((len, _)) = self.socket.recv_from(&mut buf) {
                    if let Ok(reply) = NetChainPacket::from_bytes(&buf[..len]) {
                        if let Some(done) = self.agent.on_reply(self.now(), &reply) {
                            if done.request_id == request_id {
                                return done;
                            }
                        }
                    }
                }
                for retry in self.agent.poll_retries(self.now()).retransmit {
                    let key = retry.netchain.key;
                    let _ = self
                        .socket
                        .send_to(&retry.to_bytes(), plane.addr_of_key(&key));
                }
            }
        }
    }

    #[test]
    fn write_read_cas_through_the_sharded_dataplane() {
        let ring = test_ring();
        let keys: Vec<Key> = (0..8u64).map(Key::from_u64).collect();
        let populate: Vec<(Key, Value)> = keys.iter().map(|&k| (k, Value::from_u64(0))).collect();
        let config = NetConfig::new(ring, 2, PipelineConfig::tiny(64));
        let plane = NetDataplane::start(config, &populate).expect("start");
        let mut client = TestClient::connect(&plane, 0);
        for (i, &key) in keys.iter().enumerate() {
            let w = client.execute(&plane, KvOp::Write(key, Value::from_u64(100 + i as u64)));
            assert_eq!(w.status, Some(QueryStatus::Ok));
        }
        for (i, &key) in keys.iter().enumerate() {
            let r = client.execute(&plane, KvOp::Read(key));
            assert_eq!(r.value.as_u64(), Some(100 + i as u64));
        }
        let cas_ok = client.execute(
            &plane,
            KvOp::Cas {
                key: keys[0],
                expected: 100,
                new: 7,
            },
        );
        assert_eq!(cas_ok.status, Some(QueryStatus::Ok));
        let cas_fail = client.execute(
            &plane,
            KvOp::Cas {
                key: keys[0],
                expected: 100,
                new: 8,
            },
        );
        assert_eq!(cas_fail.status, Some(QueryStatus::CasFailed));
        assert_eq!(client.agent.stats().version_regressions, 0);

        let report = plane.shutdown();
        // Every write landed on every chain replica of its owning shard.
        for (i, &key) in keys.iter().enumerate() {
            let shard = report
                .shards
                .iter()
                .find(|s| s.owns(&key))
                .expect("one shard owns each key");
            let expected = if i == 0 { 7 } else { 100 + i as u64 };
            for ip in plane_chain(&key) {
                let sw = shard.switch(ip).expect("chain member hosted");
                let slot = sw
                    .kv()
                    .lookup(&key)
                    .unwrap_or_else(|| panic!("replica {ip} never stored key {i}"));
                assert_eq!(sw.kv().read_value(slot).as_u64(), Some(expected));
            }
        }
        let io_in: u64 = report.io.iter().map(|s| s.datagrams_in).sum();
        let io_out: u64 = report.io.iter().map(|s| s.datagrams_out).sum();
        assert!(io_in >= 18, "expected one datagram per op, got {io_in}");
        assert_eq!(io_in, io_out, "every query must produce exactly one reply");
    }

    fn plane_chain(key: &Key) -> Vec<Ipv4Addr> {
        test_ring().chain_for_key(key).switches
    }

    #[test]
    fn oversized_datagrams_are_counted_not_parsed() {
        let ring = test_ring();
        let config = NetConfig::new(ring, 1, PipelineConfig::tiny(16));
        let plane = NetDataplane::start(config, &[]).expect("start");
        let addr = plane.shard_addrs()[0];
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket
            .send_to(&vec![0u8; MAX_FRAME_LEN + 40], addr)
            .expect("send oversized");
        std::thread::sleep(Duration::from_millis(50));
        let report = plane.shutdown();
        assert_eq!(report.io[0].oversized, 1);
        assert_eq!(report.shards[0].stats().parse_errors, 0);
    }

    #[test]
    fn single_mode_matches_burst_semantics() {
        let ring = test_ring();
        let key = Key::from_u64(1);
        let populate = vec![(key, Value::from_u64(0))];
        let mut config = NetConfig::new(ring, 2, PipelineConfig::tiny(64));
        config.io_mode = IoMode::Single;
        let plane = NetDataplane::start(config, &populate).expect("start");
        let mut client = TestClient::connect(&plane, 0);
        let w = client.execute(&plane, KvOp::Write(key, Value::from_u64(5)));
        assert_eq!(w.status, Some(QueryStatus::Ok));
        let r = client.execute(&plane, KvOp::Read(key));
        assert_eq!(r.value.as_u64(), Some(5));
        plane.shutdown();
    }

    #[test]
    fn reply_to_unregistered_client_is_counted_unrouted() {
        let ring = test_ring();
        let key = Key::from_u64(2);
        let populate = vec![(key, Value::from_u64(3))];
        let config = NetConfig::new(ring.clone(), 1, PipelineConfig::tiny(64));
        let plane = NetDataplane::start(config, &populate).expect("start");
        // Send a query without registering the client's reply route.
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let agent_config = AgentConfig::new(Ipv4Addr::for_host(9));
        let mut agent = AgentCore::new(agent_config, ChainDirectory::new(ring));
        let (_, pkt) = agent.begin(SimTime(0), KvOp::Read(key));
        socket
            .send_to(&pkt.to_bytes(), plane.addr_of_key(&key))
            .expect("send");
        std::thread::sleep(Duration::from_millis(50));
        let report = plane.shutdown();
        let unrouted: u64 = report.io.iter().map(|s| s.unrouted_replies).sum();
        assert_eq!(unrouted, 1);
    }

    #[test]
    fn stat_probe_over_the_socket_reports_live_gauges() {
        let ring = test_ring();
        let key = Key::from_u64(5);
        let populate = vec![(key, Value::from_u64(9))];
        let config = NetConfig::new(ring.clone(), 1, PipelineConfig::tiny(64));
        let plane = NetDataplane::start(config, &populate).expect("start");
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket
            .set_read_timeout(Some(Duration::from_millis(100)))
            .expect("timeout");
        let prober_ip = Ipv4Addr::for_host(77);
        plane.register_client(prober_ip, socket.local_addr().expect("addr"));
        // Probe the tail switch of `key`'s chain, in band through the
        // worker's socket like any query.
        let target = ring.chain_for_key(&key).tail();
        let probe = NetChainPacket::query(
            prober_ip,
            40_000,
            target,
            netchain_wire::OpCode::Stat,
            key,
            Value::empty(),
            netchain_wire::ChainList::new(vec![]).unwrap(),
            1,
        );
        let mut buf = [0u8; MAX_FRAME_LEN + 1];
        let mut snap = None;
        for _ in 0..50 {
            socket
                .send_to(&probe.to_bytes(), plane.shard_addrs()[0])
                .expect("send probe");
            if let Ok((len, _)) = socket.recv_from(&mut buf) {
                let view = PacketView::parse(&buf[..len]).expect("parse reply");
                assert_eq!(view.netchain.op(), netchain_wire::OpCode::StatReply);
                snap = Some(
                    netchain_wire::StatSnapshot::decode(view.netchain.value())
                        .expect("decode snapshot"),
                );
                break;
            }
        }
        let snap = snap.expect("no probe reply within the retry budget");
        assert!(snap.packets_seen >= 1);
        assert_eq!(snap.store_size, 1);
        // The worker published its live ingress gauges before the burst that
        // carried the probe.
        assert_eq!(snap.queue_cap, 32);
        assert!(snap.queue_depth >= 1);
        let report = plane.shutdown();
        assert!(report.io[0].recv_fill.iter().sum::<u64>() >= 1);
        assert!(report.shards[0].switch(target).unwrap().stats().stat_probes >= 1);
    }

    #[test]
    fn reply_frames_carry_the_client_ip_at_dst_ip_off() {
        // Pin the fixed-offset read the egress router depends on.
        let pkt = NetChainPacket::query(
            Ipv4Addr::for_host(3),
            40_000,
            Ipv4Addr::for_switch(1),
            netchain_wire::OpCode::Read,
            Key::from_u64(0),
            Value::empty(),
            netchain_wire::ChainList::new(vec![]).unwrap(),
            1,
        );
        let bytes = pkt.to_bytes();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(
            Ipv4Addr([
                bytes[DST_IP_OFF],
                bytes[DST_IP_OFF + 1],
                bytes[DST_IP_OFF + 2],
                bytes[DST_IP_OFF + 3]
            ]),
            view.ip.dst
        );
    }
}
