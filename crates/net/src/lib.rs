//! # netchain-net
//!
//! A *real-network* deployment mode: every NetChain switch is emulated by a
//! thread owning a UDP socket on loopback, parsing the exact
//! [`netchain_wire`] byte format and running the same
//! [`netchain_switch::NetChainSwitch`] data-plane program the simulator uses.
//! A socket-based client agent reuses the sans-IO [`netchain_core::AgentCore`]
//! for packet construction, reply matching and retries.
//!
//! This mode exists to demonstrate that the protocol implementation is not a
//! simulator artifact: the same bytes flow through real sockets, the same
//! destination-IP rewriting steers queries along the chain (here realised as
//! a UDP-port hop table, since all emulated switches share the loopback
//! address), and the same consistency machinery applies. It is obviously not
//! a performance platform — kernel UDP on one machine is millions of times
//! slower than a Tofino — and the throughput experiments never use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod emuswitch;

pub use deployment::{Deployment, DeploymentConfig, LoopbackClient};
pub use emuswitch::SwitchHandle;
