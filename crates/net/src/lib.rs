//! # netchain-net
//!
//! A *real-network* deployment mode: every NetChain switch is emulated by a
//! thread owning a UDP socket on loopback, parsing the exact
//! [`netchain_wire`] byte format and running the same
//! [`netchain_switch::NetChainSwitch`] data-plane program the simulator uses.
//! A socket-based client agent reuses the sans-IO [`netchain_core::AgentCore`]
//! for packet construction, reply matching and retries.
//!
//! This mode exists to demonstrate that the protocol implementation is not a
//! simulator artifact: the same bytes flow through real sockets, the same
//! destination-IP rewriting steers queries along the chain (here realised as
//! a UDP-port hop table, since all emulated switches share the loopback
//! address), and the same consistency machinery applies.
//!
//! Two deployment shapes coexist:
//!
//! * [`Deployment`] — the legacy thread-per-switch shape: one mutex-guarded
//!   switch per thread, single-packet `recv`/`send`, closed-loop
//!   [`LoopbackClient`]s. Kept as the didactic reference and the measurable
//!   pre-rewrite baseline.
//! * [`NetDataplane`] — the throughput shape ([`dataplane`]): keyspace-
//!   sharded workers running the fabric's staged
//!   [`netchain_fabric::Shard`] pipeline zero-copy out of `recvmmsg` burst
//!   receive buffers (via the vendored `mmsg` shim), with an **open-loop**
//!   load generator ([`openloop`]) driving thousands of sans-IO agents and
//!   reporting coordinated-omission-free p50/p99/p999. Kernel UDP on one
//!   machine is still orders of magnitude slower than a Tofino, but the
//!   `net_scale` experiment measures what this shape sustains and how much
//!   batched syscalls buy over the single-packet discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataplane;
pub mod deployment;
pub mod emuswitch;
pub mod iobench;
pub mod openloop;

pub use dataplane::{
    FaultSpec, IoMode, IoStats, NetConfig, NetDataplane, NetReport, RECV_FILL_BOUNDS,
    RECV_FILL_BUCKETS,
};
pub use deployment::{Deployment, DeploymentConfig, LoopbackClient};
pub use emuswitch::SwitchHandle;
pub use iobench::{syscall_microbench, SyscallBench};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
