//! Open-loop load generation over the socket dataplane.
//!
//! The fabric's load generator is *closed-loop*: each client keeps a bounded
//! window outstanding and only issues when a reply retires an old query.
//! That measures sustainable capacity but systematically under-reports tail
//! latency — a slow reply pauses its own client, so the generator backs off
//! exactly when the system is struggling (coordinated omission). The paper's
//! latency figures (§8.2) come from a generator that offers load at a fixed
//! rate regardless of completions; this module reproduces that shape:
//!
//! * Issue times follow a Poisson process of the configured rate: the
//!   schedule is drawn up front from exponential inter-arrival gaps and
//!   **never adjusts to replies**.
//! * Each scheduled op is assigned to one of thousands of sans-IO
//!   [`ClientState`] agents (the same agent core every other mode uses),
//!   multiplexed over one UDP socket per generator thread and demuxed by
//!   the reply's embedded client IP.
//! * The clock handed to [`ClientState::issue_at`] is the op's *scheduled*
//!   time, not the moment the syscall happened — so a backlogged generator
//!   charges the queueing delay to the op's latency instead of silently
//!   re-scheduling it, and the reported p50/p99/p999 are
//!   coordinated-omission-free.
//!
//! Latencies land in [`netchain_telemetry::LatencyHistogram`]s (one per
//! agent, merged at the end) and the run returns an [`OpenLoopReport`] with
//! the offered vs. achieved rate and the merged quantiles.

use crate::dataplane::NetDataplane;
use mmsg::{RecvQueue, SendQueue, MAX_BURST};
use netchain_core::AgentConfig;
use netchain_fabric::{client_id_of, ClientState, WorkloadSpec};
use netchain_sim::{SimDuration, SimTime};
use netchain_telemetry::{HistSnapshot, PacketTrace, TraceConfig};
use netchain_wire::{Ipv4Addr, MAX_FRAME_LEN};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// Configuration of an open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Total concurrent sans-IO agents, divided evenly over the threads.
    /// More agents = more concurrently outstanding ops before demux
    /// collisions; thousands are cheap (an idle agent is a hash-map entry).
    pub agents: usize,
    /// Generator threads (each owns one socket and `agents / threads`
    /// agents).
    pub threads: usize,
    /// Offered load in operations per second, across all threads.
    pub target_rate: f64,
    /// Issue window: ops are scheduled over this span.
    pub duration: Duration,
    /// Retransmission timeout of each agent.
    pub agent_timeout: SimDuration,
    /// Retry budget of each agent.
    pub agent_max_retries: u32,
    /// How long past the issue window to keep draining replies and driving
    /// retries before declaring the leftovers lost.
    pub drain_grace: Duration,
    /// Client-side in-band tracing: sampled ops get issue/ack evidence
    /// stamps on the dataplane's shared clock, returned in
    /// [`OpenLoopReport::traces`]. `None` keeps the generator allocation-free.
    pub trace: Option<TraceConfig>,
}

impl OpenLoopConfig {
    /// A sane default shape: `agents` agents on `threads` threads offering
    /// `target_rate` ops/s for `duration`.
    pub fn new(agents: usize, threads: usize, target_rate: f64, duration: Duration) -> Self {
        assert!(
            threads > 0 && agents >= threads,
            "agents must cover threads"
        );
        assert!(target_rate > 0.0);
        OpenLoopConfig {
            agents,
            threads,
            target_rate,
            duration,
            agent_timeout: SimDuration::from_millis(100),
            agent_max_retries: 8,
            drain_grace: Duration::from_millis(500),
            trace: None,
        }
    }
}

/// The outcome of an open-loop run (all counters summed over agents).
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The configured offered rate (ops/s).
    pub offered_rate: f64,
    /// Completions per second of wall-clock issue window.
    pub achieved_rate: f64,
    /// Ops issued (scheduled and actually begun).
    pub issued: u64,
    /// Ops completed with a matched reply.
    pub completed: u64,
    /// Completions with `Ok` status.
    pub ok: u64,
    /// Completions with `CasFailed` (expected under CAS contention).
    pub cas_failed: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// Ops abandoned after exhausting the retry budget.
    pub abandoned: u64,
    /// Replies for no-longer-outstanding requests (duplicates / stragglers).
    pub stale_replies: u64,
    /// Version-monotonicity violations observed by any agent (must be 0).
    pub version_regressions: u64,
    /// Merged issue→reply latency distribution, in nanoseconds, measured
    /// from each op's *scheduled* issue time.
    pub latency: HistSnapshot,
    /// Wall-clock span of the issue window.
    pub elapsed: Duration,
    /// Client-side trace fragments (issue/ack evidence), empty unless
    /// [`OpenLoopConfig::trace`] was set. Merge with the dataplane's
    /// `NetReport::traces` for full per-hop paths.
    pub traces: Vec<PacketTrace>,
}

/// Runs an open-loop workload against `plane` and returns the merged report.
///
/// `spec` provides the key-space and op mix (its closed-loop `window` /
/// `ops_per_client` fields are ignored — the open-loop schedule decides when
/// to issue and when to stop).
pub fn run_open_loop(
    plane: &NetDataplane,
    spec: WorkloadSpec,
    config: OpenLoopConfig,
) -> OpenLoopReport {
    let per_thread = config.agents / config.threads;
    assert!(per_thread > 0);
    let rate_per_thread = config.target_rate / config.threads as f64;
    let start = Instant::now();
    let thread_outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                scope.spawn(move || {
                    generator_thread(plane, spec, config, t, per_thread, rate_per_thread)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("generator thread must not panic"))
            .collect()
    });
    let elapsed = start.elapsed().min(config.duration);
    let mut report = OpenLoopReport {
        offered_rate: config.target_rate,
        achieved_rate: 0.0,
        issued: 0,
        completed: 0,
        ok: 0,
        cas_failed: 0,
        retries: 0,
        abandoned: 0,
        stale_replies: 0,
        version_regressions: 0,
        latency: HistSnapshot::empty(),
        elapsed,
        traces: Vec::new(),
    };
    for outcome in thread_outcomes {
        report.issued += outcome.issued;
        report.completed += outcome.completed;
        report.ok += outcome.ok;
        report.cas_failed += outcome.cas_failed;
        report.retries += outcome.retries;
        report.abandoned += outcome.abandoned;
        report.stale_replies += outcome.stale_replies;
        report.version_regressions += outcome.version_regressions;
        report.latency.merge(&outcome.latency);
        report.traces.extend(outcome.traces);
    }
    report.achieved_rate = report.completed as f64 / config.duration.as_secs_f64();
    report
}

#[derive(Debug, Default)]
struct ThreadOutcome {
    issued: u64,
    completed: u64,
    ok: u64,
    cas_failed: u64,
    retries: u64,
    abandoned: u64,
    stale_replies: u64,
    version_regressions: u64,
    latency: HistSnapshot,
    traces: Vec<PacketTrace>,
}

/// Draws the next exponential inter-arrival gap (nanoseconds) of a Poisson
/// process with `rate` events/s.
fn exp_gap_ns(rng: &mut ChaCha8Rng, rate: f64) -> u64 {
    // (0, 1]: never ln(0).
    let u: f64 = 1.0 - rng.gen_range(0.0..1.0f64);
    let secs = -u.ln() / rate;
    (secs * 1e9) as u64
}

fn generator_thread(
    plane: &NetDataplane,
    spec: WorkloadSpec,
    config: OpenLoopConfig,
    thread_index: usize,
    per_thread: usize,
    rate: f64,
) -> ThreadOutcome {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind generator socket");
    // Non-blocking, paced explicitly below: a blocking recv timeout would be
    // rounded up to scheduler jiffies (milliseconds) by the kernel, which
    // would dominate every latency this generator is supposed to measure.
    socket.set_nonblocking(true).expect("set nonblocking");
    let local_addr = socket.local_addr().expect("local addr");

    // Agent ids partition by thread: thread t owns [t*per, (t+1)*per).
    let first_id = (thread_index * per_thread) as u32;
    let mut clients: Vec<ClientState> = (0..per_thread)
        .map(|i| {
            let id = first_id + i as u32;
            let agent_config = AgentConfig::new(Ipv4Addr::for_host(id))
                .with_timeout(config.agent_timeout)
                .with_max_retries(config.agent_max_retries);
            // Open-loop: the window must never gate an issue.
            let spec = WorkloadSpec {
                window: usize::MAX,
                ops_per_client: u64::MAX,
                ..spec
            };
            plane.register_client(Ipv4Addr::for_host(id), local_addr);
            let mut client = ClientState::with_agent_config(id, plane.ring(), spec, agent_config);
            if let Some(tc) = config.trace {
                client.enable_tracing(tc);
            }
            client
        })
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x6f70_656e ^ (thread_index as u64) << 40);
    let mut rq = RecvQueue::new(MAX_BURST, MAX_FRAME_LEN + 1);
    let mut sq = SendQueue::with_capacity(MAX_BURST, MAX_FRAME_LEN);
    let mut frame_buf = [0u8; MAX_FRAME_LEN];
    let mut outcome = ThreadOutcome::default();

    // All clocks are relative to the *dataplane's* epoch, not a thread-local
    // Instant: shard workers stamp trace evidence on that origin, and the
    // auditor compares client issue/ack times across threads — a per-thread
    // epoch would skew them by the spawn staggering. The schedule itself is
    // shifted to the absolute timeline by `base_ns`.
    let epoch = plane.epoch();
    let base_ns = epoch.elapsed().as_nanos() as u64;
    let end_ns = base_ns + config.duration.as_nanos() as u64;
    let hard_end_ns = end_ns + config.drain_grace.as_nanos() as u64;
    let mut next_issue_ns = base_ns + exp_gap_ns(&mut rng, rate);
    let mut next_retry_poll_ns = base_ns;
    loop {
        let now_ns = epoch.elapsed().as_nanos() as u64;

        // Issue everything that has come due, stamped with its *scheduled*
        // time — queueing delay is the op's problem, not the schedule's.
        sq.clear();
        while next_issue_ns <= now_ns && next_issue_ns < end_ns {
            let idx = rng.gen_range(0..per_thread);
            let pkt = clients[idx].issue_at(SimTime(next_issue_ns));
            let key = pkt.netchain.key;
            let len = pkt.emit_into(&mut frame_buf).expect("bounded frame");
            sq.push(&frame_buf[..len], plane.addr_of_key(&key));
            if sq.len() >= MAX_BURST {
                let _ = sq.send(&socket);
            }
            next_issue_ns += exp_gap_ns(&mut rng, rate);
        }
        if !sq.is_empty() {
            let _ = sq.send(&socket);
        }

        // Drain every reply already queued on the socket, demuxed by the
        // embedded client IP.
        let mut received_any = false;
        let mut fatal = false;
        loop {
            match rq.recv(&socket) {
                Ok(n) => {
                    received_any = true;
                    let absorb_at = SimTime(epoch.elapsed().as_nanos() as u64);
                    for i in 0..n {
                        let frame = rq.frame(i);
                        if frame.len() > MAX_FRAME_LEN || frame.len() < 34 {
                            continue;
                        }
                        // Reply dst IP at Ethernet(14) + IPv4 dst offset (16).
                        let dst = Ipv4Addr([frame[30], frame[31], frame[32], frame[33]]);
                        let Some(id) = client_id_of(dst) else {
                            continue;
                        };
                        let Some(local) = (id as usize).checked_sub(first_id as usize) else {
                            continue;
                        };
                        if local < per_thread {
                            clients[local].absorb_reply_at(absorb_at, frame);
                        }
                    }
                    if n < rq.burst() {
                        break;
                    }
                }
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::ConnectionRefused =>
                {
                    break;
                }
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            break;
        }

        // Drive retransmissions about once per millisecond.
        let now_ns = epoch.elapsed().as_nanos() as u64;
        if now_ns >= next_retry_poll_ns {
            let poll_at = SimTime(now_ns);
            sq.clear();
            for client in clients.iter_mut() {
                for pkt in client.poll_retries_at(poll_at) {
                    let key = pkt.netchain.key;
                    let len = pkt.emit_into(&mut frame_buf).expect("bounded frame");
                    sq.push(&frame_buf[..len], plane.addr_of_key(&key));
                    if sq.len() >= MAX_BURST {
                        let _ = sq.send(&socket);
                    }
                }
            }
            if !sq.is_empty() {
                let _ = sq.send(&socket);
            }
            next_retry_poll_ns = now_ns + 1_000_000;
        }

        if now_ns >= end_ns {
            let drained = clients.iter().all(|c| c.outstanding() == 0);
            if drained || now_ns >= hard_end_ns {
                break;
            }
        }

        // Pacing. With replies in flight, stay hot (yield, don't sleep) so
        // an arriving reply is absorbed — and its latency stamped — within
        // microseconds. Fully idle, sleep up to the next scheduled event;
        // issues that come due mid-sleep are still stamped with their
        // scheduled time, so sleep coarseness never distorts the schedule.
        if !received_any {
            if clients.iter().any(|c| c.outstanding() > 0) {
                std::thread::yield_now();
            } else {
                let now_ns = epoch.elapsed().as_nanos() as u64;
                let next_event_ns = if next_issue_ns < end_ns {
                    next_issue_ns.min(next_retry_poll_ns)
                } else {
                    next_retry_poll_ns
                };
                if next_event_ns > now_ns {
                    let gap = (next_event_ns - now_ns).min(200_000);
                    std::thread::sleep(Duration::from_nanos(gap));
                }
            }
        }
    }

    for client in &mut clients {
        let report = client.report();
        outcome.issued += report.issued;
        outcome.completed += report.completed;
        outcome.ok += report.ok;
        outcome.cas_failed += report.cas_failed;
        outcome.retries += report.retries;
        outcome.abandoned += report.abandoned;
        outcome.stale_replies += client.agent_stats().stale_replies;
        outcome.version_regressions += report.version_regressions;
        outcome.latency.merge(&client.latency_snapshot());
        outcome.traces.extend(client.take_traces());
        plane.deregister_client(Ipv4Addr::for_host(client.id()));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataplane::{NetConfig, NetDataplane};
    use netchain_core::HashRing;
    use netchain_switch::PipelineConfig;
    use netchain_wire::{Key, Value};

    fn start_plane(num_keys: u64) -> NetDataplane {
        let ring = HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
        let populate: Vec<(Key, Value)> = (0..num_keys)
            .map(|k| (Key::from_u64(k), Value::from_u64(0)))
            .collect();
        let config = NetConfig::new(ring, 2, PipelineConfig::tiny(4096));
        NetDataplane::start(config, &populate).expect("start plane")
    }

    #[test]
    fn open_loop_completes_offered_load_with_tail_quantiles() {
        let plane = start_plane(64);
        let spec = WorkloadSpec::mixed(64, u64::MAX, 80, 15);
        let config = OpenLoopConfig::new(64, 2, 2_000.0, Duration::from_millis(300));
        let report = run_open_loop(&plane, spec, config);
        plane.shutdown();
        assert!(report.issued > 100, "issued only {}", report.issued);
        assert_eq!(report.version_regressions, 0);
        assert_eq!(report.abandoned, 0, "loopback must not abandon");
        assert_eq!(report.completed, report.issued, "every op must complete");
        let q = report.latency.quantiles();
        assert!(q.p50_ns > 0 && q.p99_ns >= q.p50_ns && q.p999_ns >= q.p99_ns);
    }

    #[test]
    fn issue_times_follow_the_schedule_not_the_replies() {
        // Offered load must be met (within Poisson noise) even though every
        // single op also completes — i.e. the generator is not closed-loop
        // paced. 2k ops/s for 300ms ≈ 600 ops ± sqrt(600)*4.
        let plane = start_plane(16);
        let spec = WorkloadSpec::uniform_read(16, u64::MAX);
        let config = OpenLoopConfig::new(32, 1, 2_000.0, Duration::from_millis(300));
        let report = run_open_loop(&plane, spec, config);
        plane.shutdown();
        let expected: f64 = 600.0;
        let tolerance = 4.0 * expected.sqrt();
        assert!(
            (report.issued as f64 - expected).abs() < tolerance,
            "issued {} vs scheduled ≈{expected}",
            report.issued
        );
    }
}
