//! Assembling a loopback deployment: emulated switches, a consistent-hash
//! ring, and socket-based clients reusing the sans-IO agent core.

use crate::emuswitch::SwitchHandle;
use netchain_core::{AgentConfig, AgentCore, ChainDirectory, CompletedQuery, HashRing, KvOp};
use netchain_sim::{SimDuration, SimTime};
use netchain_switch::{NetChainSwitch, PipelineConfig};
use netchain_wire::{Ipv4Addr, Key, NetChainPacket, Value, MAX_FRAME_LEN};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a loopback deployment.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentConfig {
    /// Number of emulated switches.
    pub switches: usize,
    /// Chain length (`f + 1`).
    pub replication: usize,
    /// Virtual nodes per switch.
    pub vnodes_per_switch: usize,
    /// Pipeline geometry of each switch.
    pub pipeline: PipelineConfig,
    /// Ring placement seed.
    pub ring_seed: u64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            switches: 3,
            replication: 3,
            vnodes_per_switch: 8,
            pipeline: PipelineConfig::tofino_prototype(),
            ring_seed: 7,
        }
    }
}

/// A running loopback deployment.
pub struct Deployment {
    switches: Vec<SwitchHandle>,
    ring: HashRing,
    routes: Arc<RwLock<HashMap<Ipv4Addr, SocketAddr>>>,
    next_client: u32,
}

impl Deployment {
    /// Binds sockets, spawns switch threads and builds the ring.
    pub fn start(config: DeploymentConfig) -> std::io::Result<Self> {
        assert!(
            config.switches >= config.replication,
            "need at least as many switches as the replication factor"
        );
        // Bind all sockets first so every switch knows every address.
        let sockets: Vec<UdpSocket> = (0..config.switches)
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let switch_ips: Vec<Ipv4Addr> = (0..config.switches)
            .map(|i| Ipv4Addr::for_switch(i as u32))
            .collect();
        let mut route_table: HashMap<Ipv4Addr, SocketAddr> = HashMap::new();
        for (ip, socket) in switch_ips.iter().zip(&sockets) {
            route_table.insert(*ip, socket.local_addr()?);
        }
        let routes = Arc::new(RwLock::new(route_table));
        let mut switches = Vec::with_capacity(config.switches);
        for (ip, socket) in switch_ips.iter().zip(sockets) {
            let data_plane = NetChainSwitch::new(*ip, config.pipeline);
            switches.push(SwitchHandle::spawn(
                data_plane,
                socket,
                Arc::clone(&routes),
            )?);
        }
        let ring = HashRing::new(
            switch_ips,
            config.vnodes_per_switch,
            config.replication,
            config.ring_seed,
        );
        Ok(Deployment {
            switches,
            ring,
            routes,
            next_client: 0,
        })
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Handles of the running switches.
    pub fn switches(&self) -> &[SwitchHandle] {
        &self.switches
    }

    /// Installs a key on every switch of its chain (the controller's `Insert`
    /// path) and returns the chain.
    pub fn populate_key(&self, key: Key, value: &Value) -> Vec<Ipv4Addr> {
        let chain = self.ring.chain_for_key(&key);
        for handle in &self.switches {
            if chain.contains(handle.ip()) {
                handle.with_switch(|sw| {
                    let _ = sw.kv_mut().insert(key, value);
                });
            }
        }
        chain.switches
    }

    /// Creates a socket-based client agent for this deployment.
    pub fn client(&mut self) -> std::io::Result<LoopbackClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let client_ip = Ipv4Addr::for_host(self.next_client);
        self.next_client += 1;
        // Register the client so tail switches can route replies back to it.
        self.routes.write().insert(client_ip, socket.local_addr()?);
        let config = AgentConfig::new(client_ip)
            .with_timeout(SimDuration::from_millis(50))
            .with_max_retries(5);
        let agent = AgentCore::new(config, ChainDirectory::new(self.ring.clone()));
        Ok(LoopbackClient {
            socket,
            agent,
            client_ip,
            routes: Arc::clone(&self.routes),
            epoch: Instant::now(),
            oversized: 0,
            late_completions: 0,
        })
    }
}

/// A client issuing NetChain operations over real loopback sockets.
pub struct LoopbackClient {
    socket: UdpSocket,
    agent: AgentCore,
    client_ip: Ipv4Addr,
    routes: Arc<RwLock<HashMap<Ipv4Addr, SocketAddr>>>,
    epoch: Instant,
    /// Datagrams longer than the longest legal frame, counted not truncated.
    oversized: u64,
    /// Replies that completed an *earlier* operation (one whose `execute`
    /// already returned) — observed, counted, never misattributed.
    late_completions: u64,
}

impl LoopbackClient {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn transmit(&self, pkt: &NetChainPacket) -> std::io::Result<()> {
        let dest = self.routes.read().get(&pkt.ip.dst).copied();
        let Some(dest) = dest else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("no socket registered for {}", pkt.ip.dst),
            ));
        };
        self.socket.send_to(&pkt.to_bytes(), dest)?;
        Ok(())
    }

    /// Executes one operation synchronously, retrying on timeout, and returns
    /// the completed query (or an error if the overall deadline expires).
    pub fn execute(&mut self, op: KvOp, deadline: Duration) -> std::io::Result<CompletedQuery> {
        let start = Instant::now();
        let (request_id, pkt) = self.agent.begin(self.now(), op);
        self.transmit(&pkt)?;
        // One byte past the longest legal frame: any datagram that does not
        // fit is detectably oversized rather than silently truncated.
        let mut buf = [0u8; MAX_FRAME_LEN + 1];
        loop {
            if start.elapsed() > deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "operation deadline exceeded",
                ));
            }
            match self.socket.recv_from(&mut buf) {
                Ok((len, _)) => {
                    if len > MAX_FRAME_LEN {
                        self.oversized += 1;
                    } else if let Ok(reply) = NetChainPacket::from_bytes(&buf[..len]) {
                        if let Some(done) = self.agent.on_reply(self.now(), &reply) {
                            if done.request_id == request_id {
                                return Ok(done);
                            }
                            // A straggler completed an earlier operation whose
                            // `execute` already returned; count it, never
                            // attribute it to the op running now.
                            self.late_completions += 1;
                        }
                    }
                }
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
            // Drive retransmissions for anything that timed out.
            let outcome = self.agent.poll_retries(self.now());
            for retry in outcome.retransmit {
                self.transmit(&retry)?;
            }
            // Only an abandonment of *this* operation fails it; an earlier
            // in-flight request exhausting its budget concurrently is not
            // this op's outcome.
            if outcome.abandoned.iter().any(|q| q.request_id == request_id) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "operation abandoned after retries",
                ));
            }
        }
    }

    /// Convenience: write a value.
    pub fn write(&mut self, key: Key, value: Value) -> std::io::Result<CompletedQuery> {
        self.execute(KvOp::Write(key, value), Duration::from_secs(2))
    }

    /// Convenience: read a value.
    pub fn read(&mut self, key: Key) -> std::io::Result<CompletedQuery> {
        self.execute(KvOp::Read(key), Duration::from_secs(2))
    }

    /// Convenience: compare-and-swap.
    pub fn cas(&mut self, key: Key, expected: u64, new: u64) -> std::io::Result<CompletedQuery> {
        self.execute(KvOp::Cas { key, expected, new }, Duration::from_secs(2))
    }

    /// Agent statistics (retries, latency, version regressions).
    pub fn agent_stats(&self) -> &netchain_core::AgentStats {
        self.agent.stats()
    }

    /// The client's virtual IP.
    pub fn client_ip(&self) -> Ipv4Addr {
        self.client_ip
    }

    /// Datagrams received that exceeded the maximum legal frame length.
    pub fn oversized(&self) -> u64 {
        self.oversized
    }

    /// Replies that completed an earlier (already returned) operation.
    pub fn late_completions(&self) -> u64 {
        self.late_completions
    }
}

impl Drop for LoopbackClient {
    /// Deregisters the client's reply route: long-lived deployments churn
    /// through clients, and a stale entry would alias any future client that
    /// recycles this virtual IP.
    fn drop(&mut self) {
        self.routes.write().remove(&self.client_ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_wire::QueryStatus;

    #[test]
    fn write_read_and_cas_over_real_sockets() {
        let mut deployment = Deployment::start(DeploymentConfig::default()).expect("bind loopback");
        let key = Key::from_name("loopback-demo");
        let chain = deployment.populate_key(key, &Value::from_u64(0));
        assert_eq!(chain.len(), 3);

        let mut client = deployment.client().expect("client socket");
        let write = client.write(key, Value::from_u64(99)).expect("write");
        assert_eq!(write.status, Some(QueryStatus::Ok));
        let read = client.read(key).expect("read");
        assert_eq!(read.value.as_u64(), Some(99));
        assert!(read.seq >= 1);

        // Lock-style CAS: succeeds, then conflicts.
        let lock = Key::from_name("loopback-lock");
        deployment.populate_key(lock, &Value::from_u64(0));
        let acquired = client.cas(lock, 0, 7).expect("cas");
        assert_eq!(acquired.status, Some(QueryStatus::Ok));
        let contended = client.cas(lock, 0, 8).expect("cas");
        assert_eq!(contended.status, Some(QueryStatus::CasFailed));
        assert_eq!(client.agent_stats().version_regressions, 0);
    }

    #[test]
    fn every_chain_replica_converges_after_a_write() {
        let mut deployment = Deployment::start(DeploymentConfig::default()).expect("bind loopback");
        let key = Key::from_name("converge");
        let chain = deployment.populate_key(key, &Value::from_u64(1));
        assert!(!chain.is_empty());
        let mut client = deployment.client().expect("client socket");
        client.write(key, Value::from_u64(5)).expect("write");
        // The write reply comes from the tail, so by chain replication every
        // replica already applied it. Every chain member must hold the key —
        // a replica that never stored it is a replication failure, not a
        // replica to skip.
        for handle in deployment.switches() {
            if !chain.contains(&handle.ip()) {
                continue;
            }
            let stored =
                handle.with_switch(|sw| sw.kv().lookup(&key).map(|slot| sw.kv().read_value(slot)));
            let value = stored
                .unwrap_or_else(|| panic!("chain replica {} never stored the key", handle.ip()));
            assert_eq!(value.as_u64(), Some(5));
        }
    }

    #[test]
    fn dropping_a_client_deregisters_its_route() {
        let mut deployment = Deployment::start(DeploymentConfig::default()).expect("bind loopback");
        let client = deployment.client().expect("client socket");
        let ip = client.client_ip();
        assert!(deployment.routes.read().contains_key(&ip));
        drop(client);
        assert!(
            !deployment.routes.read().contains_key(&ip),
            "stale route left behind would alias a recycled client IP"
        );
    }
}
