//! Shortest-path routing tables with equal-cost multipath.
//!
//! NetChain builds its chain routing *on top of* the existing underlay routing
//! (§4.2): a switch only decides "which neighbour gets a packet destined to
//! IP X", and the chain logic merely rewrites X. This module computes those
//! underlay next-hop tables by breadth-first search from every destination,
//! keeping *all* equal-cost next hops so the data plane can hash across them
//! like a real ECMP fabric.

use crate::node::NodeId;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Per-node next-hop tables: `next_hops[node][dst]` is the sorted list of
/// neighbours of `node` that lie on a shortest path towards `dst`.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    next_hops: Vec<Vec<Vec<NodeId>>>,
    distance: Vec<Vec<u32>>,
}

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

impl RoutingTables {
    /// Computes shortest-path (hop count) routing for the whole topology.
    pub fn compute(topology: &Topology) -> Self {
        let n = topology.num_nodes();
        let mut next_hops = vec![vec![Vec::new(); n]; n];
        let mut distance = vec![vec![UNREACHABLE; n]; n];
        // BFS from every destination; a neighbour v of u is a valid next hop
        // from u towards dst iff dist(v, dst) + 1 == dist(u, dst).
        for dst in 0..n {
            let dist = &mut distance[dst];
            dist[dst] = 0;
            let mut queue = VecDeque::from([NodeId(dst)]);
            while let Some(u) = queue.pop_front() {
                for &v in topology.neighbors(u) {
                    if dist[v.index()] == UNREACHABLE {
                        dist[v.index()] = dist[u.index()] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        for node in 0..n {
            for dst in 0..n {
                if node == dst || distance[dst][node] == UNREACHABLE {
                    continue;
                }
                let mut hops: Vec<NodeId> = topology
                    .neighbors(NodeId(node))
                    .iter()
                    .copied()
                    .filter(|v| {
                        distance[dst][v.index()] != UNREACHABLE
                            && distance[dst][v.index()] + 1 == distance[dst][node]
                    })
                    .collect();
                hops.sort();
                next_hops[node][dst] = hops;
            }
        }
        RoutingTables {
            next_hops,
            distance,
        }
    }

    /// All equal-cost next hops from `node` towards `dst` (empty if
    /// unreachable or if `node == dst`).
    pub fn next_hops(&self, node: NodeId, dst: NodeId) -> &[NodeId] {
        &self.next_hops[node.index()][dst.index()]
    }

    /// Picks one next hop deterministically from the ECMP set using a flow
    /// hash (e.g. derived from the packet 5-tuple). Returns `None` if the
    /// destination is unreachable from `node`.
    pub fn next_hop(&self, node: NodeId, dst: NodeId, flow_hash: u64) -> Option<NodeId> {
        let hops = self.next_hops(node, dst);
        if hops.is_empty() {
            None
        } else {
            Some(hops[(flow_hash % hops.len() as u64) as usize])
        }
    }

    /// Hop-count distance from `node` to `dst` ([`UNREACHABLE`] if none).
    pub fn distance(&self, node: NodeId, dst: NodeId) -> u32 {
        self.distance[dst.index()][node.index()]
    }

    /// Enumerates one concrete shortest path from `src` to `dst` (choosing the
    /// lowest-id next hop at every step). Useful for tests and for the
    /// capacity model's hop accounting.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if self.distance(src, dst) == UNREACHABLE {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let next = *self.next_hops(cur, dst).first()?;
            path.push(next);
            cur = next;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::topology::{Topology, TopologyBuilder};

    #[test]
    fn line_topology_routes_through_middle() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a");
        let m = b.add_switch("m");
        let c = b.add_switch("c");
        b.add_link(a, m, LinkParams::ideal());
        b.add_link(m, c, LinkParams::ideal());
        let t = b.build();
        let r = RoutingTables::compute(&t);
        assert_eq!(r.next_hops(a, c), &[m]);
        assert_eq!(r.distance(a, c), 2);
        assert_eq!(r.shortest_path(a, c), Some(vec![a, m, c]));
        assert_eq!(r.next_hop(a, a, 0), None);
    }

    #[test]
    fn ecmp_returns_all_equal_cost_hops() {
        // Diamond: a - {x, y} - b.
        let mut bld = TopologyBuilder::new();
        let a = bld.add_switch("a");
        let x = bld.add_switch("x");
        let y = bld.add_switch("y");
        let b = bld.add_switch("b");
        bld.add_link(a, x, LinkParams::ideal());
        bld.add_link(a, y, LinkParams::ideal());
        bld.add_link(x, b, LinkParams::ideal());
        bld.add_link(y, b, LinkParams::ideal());
        let t = bld.build();
        let r = RoutingTables::compute(&t);
        assert_eq!(r.next_hops(a, b), &[x, y]);
        // Flow hashing is deterministic and spreads across both.
        assert_eq!(r.next_hop(a, b, 0), Some(x));
        assert_eq!(r.next_hop(a, b, 1), Some(y));
        assert_eq!(r.distance(a, b), 2);
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a");
        let c = b.add_switch("c");
        let t = b.build();
        let r = RoutingTables::compute(&t);
        assert_eq!(r.distance(a, c), UNREACHABLE);
        assert!(r.next_hops(a, c).is_empty());
        assert_eq!(r.shortest_path(a, c), None);
    }

    #[test]
    fn testbed_paths_have_expected_lengths() {
        let (t, layout) = Topology::netchain_testbed(LinkParams::datacenter_40g());
        let r = RoutingTables::compute(&t);
        let [s0, _s1, s2, _s3] = layout.switches;
        let [h0, h1, ..] = layout.hosts;
        // H0 -> H1 crosses S0, one of {S1,S3}, S2: 4 hops.
        assert_eq!(r.distance(h0, h1), 4);
        // S0 -> S2 has two equal-cost paths.
        assert_eq!(r.next_hops(s0, s2).len(), 2);
    }

    #[test]
    fn spine_leaf_any_host_pair_is_at_most_four_hops() {
        let (t, layout) = Topology::spine_leaf(
            4,
            8,
            2,
            LinkParams::datacenter_100g(),
            LinkParams::datacenter_40g(),
        );
        let r = RoutingTables::compute(&t);
        let hosts = layout.all_hosts();
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    assert!(r.distance(a, b) <= 4, "host pair too far apart");
                }
            }
        }
        // Leaf to leaf goes through any of the 4 spines.
        assert_eq!(r.next_hops(layout.leaves[0], layout.leaves[1]).len(), 4);
    }
}
