//! Simulated time.
//!
//! Time is measured in integer nanoseconds from the start of the simulation.
//! Nanosecond granularity comfortably resolves both the sub-microsecond
//! switch processing delays and the multi-minute failure-recovery intervals
//! the paper evaluates (a `u64` of nanoseconds spans ~584 years).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since the epoch, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let t2 = t + SimDuration::from_micros(5);
        assert_eq!((t2 - t).as_nanos(), 5_000);
        assert_eq!(t.since(t2), SimDuration::ZERO); // saturates
        assert_eq!(t2.since(t), SimDuration::from_micros(5));
    }

    #[test]
    fn saturating_behaviour() {
        let max = SimTime(u64::MAX);
        assert_eq!(max + SimDuration::from_secs(1), max);
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_micros(9_700); // 9.7 ms
        assert!((d.as_secs_f64() - 0.0097).abs() < 1e-12);
        assert!((d.as_micros_f64() - 9700.0).abs() < 1e-9);
    }
}
