//! Measurement helpers used by nodes and experiment harnesses: event
//! counters, time-bucketed throughput series (for the failure-handling time
//! series of Figure 10) and latency statistics (for Figure 9(e)).

use crate::time::{SimDuration, SimTime};

/// A simple named counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Counts events into fixed-width time buckets and reports a rate series.
///
/// This is how the failure-handling experiment reproduces the "throughput
/// time series of one client server" plots (Figure 10). The bucketing engine
/// lives in `netchain-telemetry`; this type adapts it to simulator time.
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    series: netchain_telemetry::TimeSeries,
}

impl ThroughputSeries {
    /// Creates a series with the given bucket width.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(bucket_width.as_nanos() > 0, "bucket width must be non-zero");
        ThroughputSeries {
            series: netchain_telemetry::TimeSeries::new(bucket_width.as_nanos()),
        }
    }

    /// Records one event at simulated time `at`.
    pub fn record(&mut self, at: SimTime) {
        self.series.record(at.as_nanos());
    }

    /// Records `n` events at simulated time `at`.
    pub fn record_n(&mut self, at: SimTime, n: u64) {
        self.series.record_n(at.as_nanos(), n);
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.series.total()
    }

    /// The series as `(bucket start time in seconds, events per second)`.
    pub fn rate_series(&self) -> Vec<(f64, f64)> {
        self.series.rate_series()
    }

    /// Average rate (events per second) over `[0, end]`.
    pub fn average_rate(&self, end: SimTime) -> f64 {
        self.series.average_rate(end.as_nanos())
    }

    /// The underlying telemetry series, for exporters.
    pub fn inner(&self) -> &netchain_telemetry::TimeSeries {
        &self.series
    }
}

/// Collects latency samples and reports summary statistics.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples_ns.push(latency.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Arithmetic mean, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let sum: u128 = self.samples_ns.iter().map(|&v| u128::from(v)).sum();
        Some(SimDuration::from_nanos(
            (sum / self.samples_ns.len() as u128) as u64,
        ))
    }

    /// The `p`-th percentile (0 < p <= 100) using nearest-rank, or `None` if
    /// no samples were recorded.
    pub fn percentile(&mut self, p: f64) -> Option<SimDuration> {
        if self.samples_ns.is_empty() {
            return None;
        }
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples_ns.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.samples_ns.len()) - 1;
        Some(SimDuration::from_nanos(self.samples_ns[idx]))
    }

    /// Median latency.
    pub fn median(&mut self) -> Option<SimDuration> {
        self.percentile(50.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples_ns
            .iter()
            .min()
            .map(|&v| SimDuration::from_nanos(v))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples_ns
            .iter()
            .max()
            .map(|&v| SimDuration::from_nanos(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn throughput_series_buckets_events() {
        let mut s = ThroughputSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::ZERO);
        s.record(SimTime::ZERO + SimDuration::from_millis(400));
        s.record(SimTime::ZERO + SimDuration::from_millis(1700));
        s.record_n(SimTime::ZERO + SimDuration::from_millis(2100), 10);
        assert_eq!(s.total(), 13);
        let series = s.rate_series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (0.0, 2.0));
        assert_eq!(series[1], (1.0, 1.0));
        assert_eq!(series[2], (2.0, 10.0));
        let avg = s.average_rate(SimTime::ZERO + SimDuration::from_secs(13));
        assert!((avg - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bucket_width_rejected() {
        ThroughputSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn latency_stats_percentiles() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), None);
        for us in 1..=100u64 {
            l.record(SimDuration::from_micros(us));
        }
        assert_eq!(l.count(), 100);
        assert_eq!(l.mean(), Some(SimDuration::from_nanos(50_500)));
        assert_eq!(l.percentile(50.0), Some(SimDuration::from_micros(50)));
        assert_eq!(l.percentile(99.0), Some(SimDuration::from_micros(99)));
        assert_eq!(l.percentile(100.0), Some(SimDuration::from_micros(100)));
        assert_eq!(l.min(), Some(SimDuration::from_micros(1)));
        assert_eq!(l.max(), Some(SimDuration::from_micros(100)));
        assert_eq!(l.median(), Some(SimDuration::from_micros(50)));
    }

    #[test]
    fn percentile_of_single_sample() {
        let mut l = LatencyStats::new();
        l.record(SimDuration::from_micros(7));
        assert_eq!(l.percentile(1.0), Some(SimDuration::from_micros(7)));
        assert_eq!(l.percentile(99.9), Some(SimDuration::from_micros(7)));
    }
}
