//! Fault injection: scheduled fail-stop node failures and recoveries.
//!
//! The paper's failure model (§5) is fail-stop with failures detected by the
//! controller; the plan here schedules when a node stops (it silently drops
//! all traffic and its timers no longer fire) and when it comes back. The
//! simulator separately notifies surviving nodes after the configured
//! detection delay, modelling "failures are detected by the network
//! controller using existing techniques".

use crate::node::NodeId;
use crate::time::SimTime;

/// One scheduled fault action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The node fail-stops at the given time.
    Fail(NodeId),
    /// The node rejoins (empty state, links restored) at the given time.
    Recover(NodeId),
}

/// A time-ordered schedule of fault actions.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules a fail-stop of `node` at `at`.
    pub fn fail_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultAction::Fail(node)));
        self
    }

    /// Schedules a recovery of `node` at `at`.
    pub fn recover_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultAction::Recover(node)));
        self
    }

    /// The scheduled actions sorted by time (stable for equal times).
    pub fn events(&self) -> Vec<(SimTime, FaultAction)> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|(t, _)| *t);
        sorted
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn plan_orders_events_by_time() {
        let plan = FaultPlan::none()
            .recover_at(SimTime::ZERO + SimDuration::from_secs(40), NodeId(1))
            .fail_at(SimTime::ZERO + SimDuration::from_secs(20), NodeId(1));
        assert_eq!(plan.len(), 2);
        let events = plan.events();
        assert_eq!(events[0].1, FaultAction::Fail(NodeId(1)));
        assert_eq!(events[1].1, FaultAction::Recover(NodeId(1)));
        assert!(events[0].0 < events[1].0);
    }

    #[test]
    fn empty_plan() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().events(), Vec::new());
    }
}
