//! Topology description and builders.
//!
//! A topology is a set of nodes (switches, hosts, an optional controller) and
//! full-duplex links between them. Two builders cover the paper's setups:
//!
//! * [`Topology::netchain_testbed`] — the four-switch, four-server testbed of
//!   Figure 8 used for Figures 9(a)–(e), 10 and 11;
//! * [`Topology::spine_leaf`] — the 64-port spine–leaf fabrics of §8.3 used
//!   for the scalability study in Figure 9(f).

use crate::link::LinkParams;
use crate::node::{NodeId, NodeKind};
use std::collections::BTreeMap;

/// A static description of the simulated network.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    adjacency: Vec<Vec<NodeId>>,
    links: BTreeMap<(usize, usize), LinkParams>,
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    links: Vec<(NodeId, NodeId, LinkParams)>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.kinds.len());
        self.kinds.push(kind);
        self.names.push(name.into());
        id
    }

    /// Adds a switch node.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name)
    }

    /// Adds a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name)
    }

    /// Adds a controller node.
    pub fn add_controller(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Controller, name)
    }

    /// Connects `a` and `b` with a full-duplex link using the same parameters
    /// in both directions.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> &mut Self {
        assert_ne!(a, b, "self-links are not allowed");
        self.links.push((a, b, params));
        self
    }

    /// Finalises the topology.
    ///
    /// # Panics
    /// Panics if any link references a node that was never added, or if the
    /// same unordered pair is linked twice.
    pub fn build(self) -> Topology {
        let n = self.kinds.len();
        let mut adjacency = vec![Vec::new(); n];
        let mut links = BTreeMap::new();
        for (a, b, params) in self.links {
            assert!(
                a.index() < n && b.index() < n,
                "link references unknown node"
            );
            let fwd = (a.index(), b.index());
            let rev = (b.index(), a.index());
            assert!(
                !links.contains_key(&fwd),
                "duplicate link between {a} and {b}"
            );
            links.insert(fwd, params);
            links.insert(rev, params);
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
        }
        for neighbors in &mut adjacency {
            neighbors.sort();
            neighbors.dedup();
        }
        Topology {
            kinds: self.kinds,
            names: self.names,
            adjacency,
            links,
        }
    }
}

/// Node-id layout of a spine–leaf fabric returned by [`Topology::spine_leaf`].
#[derive(Debug, Clone)]
pub struct SpineLeafLayout {
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Leaf (top-of-rack) switches.
    pub leaves: Vec<NodeId>,
    /// Hosts attached to each leaf (`hosts[i]` hangs off `leaves[i]`).
    pub hosts: Vec<Vec<NodeId>>,
}

impl SpineLeafLayout {
    /// All switches (spines then leaves).
    pub fn switches(&self) -> Vec<NodeId> {
        self.spines
            .iter()
            .chain(self.leaves.iter())
            .copied()
            .collect()
    }

    /// All hosts in rack order.
    pub fn all_hosts(&self) -> Vec<NodeId> {
        self.hosts.iter().flatten().copied().collect()
    }
}

/// Node-id layout of the four-switch testbed returned by
/// [`Topology::netchain_testbed`].
#[derive(Debug, Clone)]
pub struct TestbedLayout {
    /// Switches S0–S3.
    pub switches: [NodeId; 4],
    /// Hosts H0–H3.
    pub hosts: [NodeId; 4],
}

impl Topology {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// The role of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// The human-readable name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// The neighbours of a node, sorted by id.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id.index()]
    }

    /// The parameters of the directed link `a → b`, if the nodes are adjacent.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkParams> {
        self.links.get(&(a.index(), b.index())).copied()
    }

    /// Iterates over all directed links as `(from, to, params)`.
    pub fn directed_links(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkParams)> + '_ {
        self.links
            .iter()
            .map(|(&(a, b), &p)| (NodeId(a), NodeId(b), p))
    }

    /// All node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        (0..self.num_nodes())
            .map(NodeId)
            .filter(|id| self.kind(*id) == kind)
            .collect()
    }

    /// All switches.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Switch)
    }

    /// All hosts.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Host)
    }

    /// Overrides the parameters of every existing link (both directions).
    /// Used by experiments that sweep loss rate or jitter over a fixed shape.
    pub fn set_all_links(&mut self, params: LinkParams) {
        for p in self.links.values_mut() {
            *p = params;
        }
    }

    /// The testbed of Figure 8: four switches and four servers.
    ///
    /// Connectivity follows the evaluation's described paths: H0 attaches to
    /// S0; H1–H3 attach to S2; S1 and S3 each connect S0 to S2, giving the
    /// write path S0–S1–S2 and the alternative path S0–S3–S2 used for reads
    /// in the failure-handling experiment (§8.4).
    pub fn netchain_testbed(link: LinkParams) -> (Topology, TestbedLayout) {
        let mut b = TopologyBuilder::new();
        let s: Vec<NodeId> = (0..4).map(|i| b.add_switch(format!("S{i}"))).collect();
        let h: Vec<NodeId> = (0..4).map(|i| b.add_host(format!("H{i}"))).collect();
        // Switch fabric.
        b.add_link(s[0], s[1], link);
        b.add_link(s[1], s[2], link);
        b.add_link(s[0], s[3], link);
        b.add_link(s[3], s[2], link);
        // Hosts.
        b.add_link(h[0], s[0], link);
        b.add_link(h[1], s[2], link);
        b.add_link(h[2], s[2], link);
        b.add_link(h[3], s[2], link);
        let topo = b.build();
        let layout = TestbedLayout {
            switches: [s[0], s[1], s[2], s[3]],
            hosts: [h[0], h[1], h[2], h[3]],
        };
        (topo, layout)
    }

    /// A non-blocking spine–leaf fabric as in §8.3: each leaf has
    /// `hosts_per_leaf` hosts, every leaf connects to every spine, and the
    /// number of spines is typically half the number of leaves.
    pub fn spine_leaf(
        n_spine: usize,
        n_leaf: usize,
        hosts_per_leaf: usize,
        fabric_link: LinkParams,
        host_link: LinkParams,
    ) -> (Topology, SpineLeafLayout) {
        assert!(n_spine > 0 && n_leaf > 0, "fabric must have switches");
        let mut b = TopologyBuilder::new();
        let spines: Vec<NodeId> = (0..n_spine)
            .map(|i| b.add_switch(format!("spine{i}")))
            .collect();
        let leaves: Vec<NodeId> = (0..n_leaf)
            .map(|i| b.add_switch(format!("leaf{i}")))
            .collect();
        let mut hosts = Vec::with_capacity(n_leaf);
        for (li, &leaf) in leaves.iter().enumerate() {
            for &spine in &spines {
                b.add_link(leaf, spine, fabric_link);
            }
            let mut rack = Vec::with_capacity(hosts_per_leaf);
            for hi in 0..hosts_per_leaf {
                let host = b.add_host(format!("host{li}-{hi}"));
                b.add_link(host, leaf, host_link);
                rack.push(host);
            }
            hosts.push(rack);
        }
        let topo = b.build();
        (
            topo,
            SpineLeafLayout {
                spines,
                leaves,
                hosts,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_symmetric_adjacency() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a");
        let c = b.add_host("c");
        b.add_link(a, c, LinkParams::ideal());
        let t = b.build();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.neighbors(a), &[c]);
        assert_eq!(t.neighbors(c), &[a]);
        assert!(t.link(a, c).is_some());
        assert!(t.link(c, a).is_some());
        assert_eq!(t.kind(a), NodeKind::Switch);
        assert_eq!(t.kind(c), NodeKind::Host);
        assert_eq!(t.name(a), "a");
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_links_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a");
        let c = b.add_switch("c");
        b.add_link(a, c, LinkParams::ideal());
        b.add_link(c, a, LinkParams::ideal());
        b.build();
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_links_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a");
        b.add_link(a, a, LinkParams::ideal());
    }

    #[test]
    fn testbed_matches_figure8() {
        let (t, layout) = Topology::netchain_testbed(LinkParams::datacenter_40g());
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.switches().len(), 4);
        assert_eq!(t.hosts().len(), 4);
        let [s0, s1, s2, s3] = layout.switches;
        let [h0, h1, _h2, _h3] = layout.hosts;
        // Write path S0-S1-S2 and read path S0-S3-S2 both exist.
        assert!(t.link(s0, s1).is_some() && t.link(s1, s2).is_some());
        assert!(t.link(s0, s3).is_some() && t.link(s3, s2).is_some());
        // H0 on S0, H1 on S2, S0 and S2 not directly connected.
        assert!(t.link(h0, s0).is_some());
        assert!(t.link(h1, s2).is_some());
        assert!(t.link(s0, s2).is_none());
    }

    #[test]
    fn spine_leaf_is_fully_bipartite() {
        let (t, layout) = Topology::spine_leaf(
            2,
            4,
            3,
            LinkParams::datacenter_100g(),
            LinkParams::datacenter_40g(),
        );
        assert_eq!(layout.spines.len(), 2);
        assert_eq!(layout.leaves.len(), 4);
        assert_eq!(layout.all_hosts().len(), 12);
        assert_eq!(t.num_nodes(), 2 + 4 + 12);
        for &leaf in &layout.leaves {
            for &spine in &layout.spines {
                assert!(t.link(leaf, spine).is_some());
            }
        }
        // Hosts connect only to their own leaf.
        for (li, rack) in layout.hosts.iter().enumerate() {
            for &host in rack {
                assert_eq!(t.neighbors(host), &[layout.leaves[li]]);
            }
        }
        assert_eq!(layout.switches().len(), 6);
    }

    #[test]
    fn set_all_links_applies_everywhere() {
        let (mut t, _) = Topology::netchain_testbed(LinkParams::datacenter_40g());
        let lossy = LinkParams::datacenter_40g().with_loss(0.1);
        t.set_all_links(lossy);
        for (_, _, p) in t.directed_links() {
            assert!((p.loss_rate - 0.1).abs() < 1e-12);
        }
    }
}
