//! Link model: latency, bandwidth, loss, reordering and a bounded FIFO
//! transmission queue per direction.
//!
//! Every (ordered) pair of adjacent nodes has an independent [`LinkState`], so
//! the two directions of a physical cable never contend with each other, just
//! like full-duplex Ethernet.

use crate::time::{SimDuration, SimTime};

/// Static parameters of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bandwidth in bits per second. Serialization delay of a packet of `n`
    /// bytes is `8n / bandwidth`.
    pub bandwidth_bps: u64,
    /// Independent probability that a packet is dropped in flight.
    pub loss_rate: f64,
    /// Maximum extra random delay added to each packet. A non-zero jitter
    /// allows packets to overtake each other — the out-of-order delivery that
    /// §4.3 of the paper has to defend against.
    pub jitter: SimDuration,
    /// Maximum queueing delay tolerated at the transmitter before tail drop.
    /// Models shallow datacenter switch buffers.
    pub max_queue_delay: SimDuration,
}

impl LinkParams {
    /// A typical 40 Gbps datacenter server-to-ToR / switch-to-switch link with
    /// ~1 µs propagation delay and no loss. These are the defaults the
    /// experiments start from; individual figures override loss and jitter.
    pub fn datacenter_40g() -> Self {
        LinkParams {
            latency: SimDuration::from_micros(1),
            bandwidth_bps: 40_000_000_000,
            loss_rate: 0.0,
            jitter: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_millis(1),
        }
    }

    /// A 100 Gbps fabric link (spine–leaf experiments).
    pub fn datacenter_100g() -> Self {
        LinkParams {
            bandwidth_bps: 100_000_000_000,
            ..Self::datacenter_40g()
        }
    }

    /// A 25 Gbps NIC link (one server in the paper's testbed has a 25G NIC).
    pub fn datacenter_25g() -> Self {
        LinkParams {
            bandwidth_bps: 25_000_000_000,
            ..Self::datacenter_40g()
        }
    }

    /// An ideal link: zero latency, effectively infinite bandwidth, no loss.
    /// Useful for unit tests that want to exercise protocol logic only.
    pub fn ideal() -> Self {
        LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: u64::MAX,
            loss_rate: 0.0,
            jitter: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_secs(3600),
        }
    }

    /// Returns a copy with the given loss rate.
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate;
        self
    }

    /// Returns a copy with the given jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Returns a copy with the given one-way latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Serialization delay for a packet of `bytes` bytes.
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == u64::MAX {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000 / self.bandwidth_bps as u128;
        SimDuration::from_nanos(ns as u64)
    }
}

/// Per-direction counters, readable after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets handed to the link by the sender.
    pub offered: u64,
    /// Packets delivered to the receiver.
    pub delivered: u64,
    /// Packets dropped by the random-loss process.
    pub lost: u64,
    /// Packets dropped because the transmission queue was full.
    pub tail_dropped: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
}

/// Dynamic state of one link direction.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Static parameters.
    pub params: LinkParams,
    /// Time at which the transmitter becomes free.
    next_free: SimTime,
    /// Counters.
    pub stats: LinkStats,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The packet will arrive at the receiver at the given time.
    Deliver(SimTime),
    /// The packet was dropped by the loss process or the queue bound.
    Dropped,
}

impl LinkState {
    /// Creates a fresh link direction with the given parameters.
    pub fn new(params: LinkParams) -> Self {
        LinkState {
            params,
            next_free: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Offers a packet of `bytes` bytes for transmission at time `now`.
    ///
    /// `loss_draw` and `jitter_draw` are uniform `[0,1)` samples supplied by
    /// the caller (the simulator), keeping all randomness in one PRNG.
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: usize,
        loss_draw: f64,
        jitter_draw: f64,
    ) -> TransmitOutcome {
        self.stats.offered += 1;
        let start = self.next_free.max(now);
        let queue_delay = start - now;
        if queue_delay > self.params.max_queue_delay {
            self.stats.tail_dropped += 1;
            return TransmitOutcome::Dropped;
        }
        let tx = self.params.serialization_delay(bytes);
        self.next_free = start + tx;
        if loss_draw < self.params.loss_rate {
            self.stats.lost += 1;
            return TransmitOutcome::Dropped;
        }
        let jitter =
            SimDuration::from_nanos((self.params.jitter.as_nanos() as f64 * jitter_draw) as u64);
        let arrival = start + tx + self.params.latency + jitter;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes as u64;
        TransmitOutcome::Deliver(arrival)
    }

    /// Time at which the transmitter becomes idle (for tests/diagnostics).
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_matches_bandwidth() {
        let p = LinkParams::datacenter_40g();
        // 1500 bytes at 40 Gbps = 12000 bits / 40e9 bps = 300 ns.
        assert_eq!(p.serialization_delay(1500), SimDuration::from_nanos(300));
        assert_eq!(
            LinkParams::ideal().serialization_delay(1500),
            SimDuration::ZERO
        );
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut link = LinkState::new(LinkParams::datacenter_40g());
        let a = link.transmit(SimTime(0), 1500, 1.0, 0.0);
        let b = link.transmit(SimTime(0), 1500, 1.0, 0.0);
        let (ta, tb) = match (a, b) {
            (TransmitOutcome::Deliver(ta), TransmitOutcome::Deliver(tb)) => (ta, tb),
            other => panic!("unexpected outcomes: {other:?}"),
        };
        // Second packet waits for the first to serialize: 300 ns later.
        assert_eq!(tb - ta, SimDuration::from_nanos(300));
        assert_eq!(link.stats.delivered, 2);
        assert_eq!(link.stats.bytes_delivered, 3000);
    }

    #[test]
    fn loss_draw_below_rate_drops() {
        let mut link = LinkState::new(LinkParams::datacenter_40g().with_loss(0.5));
        assert_eq!(
            link.transmit(SimTime(0), 100, 0.4, 0.0),
            TransmitOutcome::Dropped
        );
        assert!(matches!(
            link.transmit(SimTime(0), 100, 0.6, 0.0),
            TransmitOutcome::Deliver(_)
        ));
        assert_eq!(link.stats.lost, 1);
        assert_eq!(link.stats.offered, 2);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let mut params = LinkParams::datacenter_40g();
        params.max_queue_delay = SimDuration::from_nanos(500);
        let mut link = LinkState::new(params);
        // Each 1500-byte packet takes 300 ns to serialize. The third packet
        // would wait 600 ns > 500 ns and must be dropped.
        assert!(matches!(
            link.transmit(SimTime(0), 1500, 1.0, 0.0),
            TransmitOutcome::Deliver(_)
        ));
        assert!(matches!(
            link.transmit(SimTime(0), 1500, 1.0, 0.0),
            TransmitOutcome::Deliver(_)
        ));
        assert_eq!(
            link.transmit(SimTime(0), 1500, 1.0, 0.0),
            TransmitOutcome::Dropped
        );
        assert_eq!(link.stats.tail_dropped, 1);
    }

    #[test]
    fn jitter_adds_bounded_delay() {
        let params = LinkParams::datacenter_40g().with_jitter(SimDuration::from_micros(10));
        let mut link = LinkState::new(params);
        let base = match link.transmit(SimTime(0), 100, 1.0, 0.0) {
            TransmitOutcome::Deliver(t) => t,
            _ => panic!(),
        };
        let mut link2 = LinkState::new(params);
        let jittered = match link2.transmit(SimTime(0), 100, 1.0, 0.999) {
            TransmitOutcome::Deliver(t) => t,
            _ => panic!(),
        };
        let extra = jittered - base;
        assert!(extra > SimDuration::from_micros(9));
        assert!(extra <= SimDuration::from_micros(10));
    }
}
