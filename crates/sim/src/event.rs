//! The event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`, where the sequence number is the
//! order of insertion. Ties in time are therefore resolved deterministically,
//! which is what makes whole-simulation runs reproducible bit-for-bit for a
//! fixed seed.

use crate::node::{NodeId, TimerToken};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message finishes arriving at `to`.
    Deliver {
        /// Sender (the adjacent node, or the control-channel source).
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// A timer armed by `node` fires.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Token the node supplied when arming the timer.
        token: TimerToken,
    },
    /// The fault plan takes `node` down.
    NodeDown {
        /// The failing node.
        node: NodeId,
    },
    /// The fault plan brings `node` back up.
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
    /// All nodes that are still alive are notified that `node` failed
    /// (failure detection completed).
    NotifyDown {
        /// The failed node being reported.
        node: NodeId,
    },
    /// All nodes that are still alive are notified that `node` recovered.
    NotifyUp {
        /// The recovered node being reported.
        node: NodeId,
    },
    /// End of simulation.
    Stop,
}

#[derive(Debug)]
struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of [`Event`]s.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tag(u32);

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<Tag> = EventQueue::new();
        q.push(
            SimTime(30),
            Event::Timer {
                node: NodeId(0),
                token: 3,
            },
        );
        q.push(
            SimTime(10),
            Event::Timer {
                node: NodeId(0),
                token: 1,
            },
        );
        q.push(
            SimTime(20),
            Event::Timer {
                node: NodeId(0),
                token: 2,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_resolve_by_insertion_order() {
        let mut q: EventQueue<Tag> = EventQueue::new();
        for token in 0..100 {
            q.push(
                SimTime(5),
                Event::Timer {
                    node: NodeId(1),
                    token,
                },
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<Tag> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), Event::Stop);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        q.pop();
        assert!(q.is_empty());
    }
}
