//! Node abstraction: everything attached to the simulated network — switches,
//! hosts, servers, the controller — implements [`Node`].
//!
//! Node callbacks never touch the simulator directly; they record their
//! intents (send a message, arm a timer) in a [`Context`], and the simulator
//! applies those intents after the callback returns. This keeps the borrow
//! structure trivial and the execution order explicit and deterministic.

use crate::time::{SimDuration, SimTime};
use rand::RngCore;
use std::any::Any;
use std::fmt;

/// Dense integer identifier of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Coarse role of a node, used by topology builders and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A network switch (possibly running the NetChain program).
    Switch,
    /// An end host: a client agent or an application server.
    Host,
    /// The logically centralised network controller.
    Controller,
}

/// Opaque token identifying a timer to the node that armed it.
pub type TimerToken = u64;

/// Messages carried by the simulator.
///
/// The simulator never inspects message contents; it only needs the wire size
/// to charge serialization delay against link bandwidth.
pub trait Message: Clone + fmt::Debug + 'static {
    /// Size of the message on the wire, in bytes.
    fn wire_size(&self) -> usize;
}

/// Intents recorded by a node callback, applied by the simulator afterwards.
#[derive(Debug)]
pub(crate) enum Action<M> {
    /// Transmit `msg` to an adjacent node over the connecting link.
    Send { to: NodeId, msg: M },
    /// Deliver `msg` to any node after a fixed delay, bypassing the data-plane
    /// topology (management/control network).
    SendControl {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
        /// One-way delay of the control channel.
        latency: SimDuration,
    },
    /// Arm a timer that fires `delay` from now with the given token.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Token passed back to [`Node::on_timer`].
        token: TimerToken,
    },
}

/// Execution context handed to every node callback.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) neighbors: &'a [NodeId],
    pub(crate) rng: &'a mut dyn RngCore,
    pub(crate) actions: Vec<Action<M>>,
}

impl<'a, M: Message> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The nodes directly connected to this node by a link.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// True if `other` is directly connected to this node.
    pub fn is_neighbor(&self, other: NodeId) -> bool {
        self.neighbors.contains(&other)
    }

    /// Transmits `msg` to the adjacent node `to` over the connecting link.
    /// Sending to a non-neighbor is a programming error in the node logic;
    /// the simulator will drop the message and count it in
    /// [`crate::SimStats::invalid_sends`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Delivers `msg` to an arbitrary node after `latency`, bypassing the
    /// data-plane links. Models the out-of-band management network the
    /// controller uses to program switches (§5).
    pub fn send_control(&mut self, to: NodeId, msg: M, latency: SimDuration) {
        self.actions.push(Action::SendControl { to, msg, latency });
    }

    /// Arms a timer that calls [`Node::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Draws a uniform float in `[0, 1)` from the simulation PRNG.
    pub fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard uniform construction.
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform `u64` from the simulation PRNG.
    pub fn random_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Draws a uniform integer in `[0, bound)` (bound must be non-zero).
    pub fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_below requires a non-zero bound");
        // Rejection-free modulo is fine here: bounds are tiny relative to 2^64
        // and the bias is far below anything an experiment could observe.
        self.rng.next_u64() % bound
    }

    /// Samples an exponential inter-arrival time with the given mean. Used by
    /// workload generators for Poisson query arrivals.
    pub fn random_exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u = self.random_f64().max(1e-12);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
}

/// A participant in the simulation.
///
/// All callbacks run on the simulator thread; `&mut self` access is exclusive
/// by construction. `as_any`/`as_any_mut` let experiment harnesses recover the
/// concrete node type after a run to read out its recorded metrics.
pub trait Node<M: Message>: 'static {
    /// Called once, at time zero, before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message arrives on one of this node's links (or over the
    /// control channel; `from` identifies the sender either way).
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>);

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<M>) {}

    /// Called when the fault plan marks another node as failed. The delay
    /// between the failure and this notification is the failure-detection
    /// delay configured in [`crate::SimConfig`].
    fn on_node_down(&mut self, _node: NodeId, _ctx: &mut Context<M>) {}

    /// Called when the fault plan revives another node.
    fn on_node_up(&mut self, _node: NodeId, _ctx: &mut Context<M>) {}

    /// Human-readable name for logs and reports.
    fn name(&self) -> String {
        "node".to_string()
    }

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Upcast for post-run mutation/extraction.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[derive(Debug, Clone)]
    struct Ping(usize);
    impl Message for Ping {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn context_records_actions_in_order() {
        let mut rng = StepRng::new(0, 1);
        let neighbors = [NodeId(1), NodeId(2)];
        let mut ctx: Context<'_, Ping> = Context {
            now: SimTime(5),
            node: NodeId(0),
            neighbors: &neighbors,
            rng: &mut rng,
            actions: Vec::new(),
        };
        assert_eq!(ctx.now(), SimTime(5));
        assert_eq!(ctx.id(), NodeId(0));
        assert!(ctx.is_neighbor(NodeId(2)));
        assert!(!ctx.is_neighbor(NodeId(3)));
        ctx.send(NodeId(1), Ping(10));
        ctx.set_timer(SimDuration::from_micros(3), 42);
        ctx.send_control(NodeId(2), Ping(1), SimDuration::from_millis(1));
        assert_eq!(ctx.actions.len(), 3);
        assert!(matches!(ctx.actions[0], Action::Send { to: NodeId(1), .. }));
        assert!(matches!(ctx.actions[1], Action::SetTimer { token: 42, .. }));
        assert!(matches!(
            ctx.actions[2],
            Action::SendControl { to: NodeId(2), .. }
        ));
    }

    #[test]
    fn random_helpers_are_in_range() {
        let mut rng = rand::rngs::mock::StepRng::new(0x9e3779b97f4a7c15, 0x9e3779b97f4a7c15);
        let neighbors: [NodeId; 0] = [];
        let mut ctx: Context<'_, Ping> = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            neighbors: &neighbors,
            rng: &mut rng,
            actions: Vec::new(),
        };
        for _ in 0..100 {
            let f = ctx.random_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(ctx.random_below(7) < 7);
            let exp = ctx.random_exponential(SimDuration::from_micros(10));
            assert!(exp.as_nanos() < 10_000_000); // far tail is astronomically unlikely
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn random_below_zero_bound_panics() {
        let mut rng = StepRng::new(0, 1);
        let neighbors: [NodeId; 0] = [];
        let mut ctx: Context<'_, Ping> = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            neighbors: &neighbors,
            rng: &mut rng,
            actions: Vec::new(),
        };
        ctx.random_below(0);
    }
}
