//! The simulation engine: owns the topology, the nodes, the link states, the
//! event queue and the PRNG, and advances simulated time deterministically.

use crate::event::{Event, EventQueue};
use crate::fault::{FaultAction, FaultPlan};
use crate::link::{LinkState, LinkStats, TransmitOutcome};
use crate::node::{Action, Context, Message, Node, NodeId};
use crate::routing::RoutingTables;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Simulator-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seed for the single PRNG that drives loss, jitter and node randomness.
    pub seed: u64,
    /// Delay between a node failing and the surviving nodes (in particular
    /// the controller) being notified via [`Node::on_node_down`]. The paper
    /// treats detection as out of scope and injects a fixed delay (§8.4);
    /// so do we.
    pub failure_detection_delay: SimDuration,
    /// Hard cap on processed events, as a runaway-simulation guard.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x6e65_7463_6861_696e, // "netchain"
            failure_detection_delay: SimDuration::from_millis(10),
            max_events: 500_000_000,
        }
    }
}

impl SimConfig {
    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given failure-detection delay.
    pub fn with_detection_delay(mut self, delay: SimDuration) -> Self {
        self.failure_detection_delay = delay;
        self
    }
}

/// Counters describing a finished (or in-progress) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed by the main loop.
    pub events_processed: u64,
    /// Messages delivered to a node callback.
    pub messages_delivered: u64,
    /// Messages dropped by links (loss or queue overflow).
    pub messages_dropped: u64,
    /// Messages addressed to a failed node and discarded on arrival.
    pub messages_to_dead_nodes: u64,
    /// Sends to non-adjacent nodes (a bug in node logic), discarded.
    pub invalid_sends: u64,
    /// Timers that fired.
    pub timers_fired: u64,
}

/// The discrete-event simulator.
pub struct Simulator<M: Message> {
    topology: Topology,
    routing: RoutingTables,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    alive: Vec<bool>,
    links: HashMap<(usize, usize), LinkState>,
    queue: EventQueue<M>,
    now: SimTime,
    rng: ChaCha8Rng,
    config: SimConfig,
    stats: SimStats,
    started: bool,
    stopped: bool,
}

impl<M: Message> Simulator<M> {
    /// Creates a simulator over `topology`. Every node slot must be populated
    /// with [`Simulator::install_node`] before the first call to a `run_*`
    /// method.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        let routing = RoutingTables::compute(&topology);
        let n = topology.num_nodes();
        let links = topology
            .directed_links()
            .map(|(a, b, params)| ((a.index(), b.index()), LinkState::new(params)))
            .collect();
        Simulator {
            topology,
            routing,
            nodes: (0..n).map(|_| None).collect(),
            alive: vec![true; n],
            links,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
            stats: SimStats::default(),
            started: false,
            stopped: false,
        }
    }

    /// Installs the behaviour of node `id`.
    pub fn install_node(&mut self, id: NodeId, node: Box<dyn Node<M>>) {
        self.nodes[id.index()] = Some(node);
    }

    /// The topology the simulator runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The underlay routing tables computed from the topology.
    pub fn routing(&self) -> &RoutingTables {
        &self.routing
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Per-direction link statistics, if the nodes are adjacent.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.links.get(&(from.index(), to.index())).map(|l| l.stats)
    }

    /// Borrow a node's behaviour (panics if the slot was never installed).
    pub fn node(&self, id: NodeId) -> &dyn Node<M> {
        self.nodes[id.index()]
            .as_deref()
            .expect("node not installed")
    }

    /// Mutably borrow a node's behaviour.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node<M> {
        self.nodes[id.index()]
            .as_deref_mut()
            .expect("node not installed")
    }

    /// Downcasts a node to its concrete type for post-run inspection.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.index()]
            .as_deref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Downcasts a node to its concrete type, mutably.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.index()]
            .as_deref_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// Schedules the actions of a fault plan.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for (at, action) in plan.events() {
            match action {
                FaultAction::Fail(node) => self.queue.push(at, Event::NodeDown { node }),
                FaultAction::Recover(node) => self.queue.push(at, Event::NodeUp { node }),
            }
        }
    }

    /// Injects a message for delivery to `to` at absolute time `at` without
    /// traversing any link (harness-level injection / control channel).
    pub fn schedule_message(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.queue.push(at, Event::Deliver { from, to, msg });
    }

    /// Runs until the event queue drains, `deadline` is reached, or the event
    /// cap is hit, and returns the final simulated time.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        while !self.stopped && self.stats.events_processed < self.config.max_events {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let (time, event) = self.queue.pop().expect("peeked event exists");
                    self.now = time;
                    self.process(event);
                    self.stats.events_processed += 1;
                }
                _ => break,
            }
        }
        // Time always advances to the deadline even if the queue drained early,
        // so back-to-back run_until calls compose predictably.
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Runs for `duration` of simulated time past the current instant.
    pub fn run_for(&mut self, duration: SimDuration) -> SimTime {
        let deadline = self.now + duration;
        self.run_until(deadline)
    }

    /// Runs until the event queue is completely drained (or the event cap is
    /// hit). Only sensible for workloads that terminate by themselves.
    pub fn run_to_completion(&mut self) -> SimTime {
        self.ensure_started();
        while !self.stopped && self.stats.events_processed < self.config.max_events {
            match self.queue.pop() {
                Some((time, event)) => {
                    self.now = time;
                    self.process(event);
                    self.stats.events_processed += 1;
                }
                None => break,
            }
        }
        self.now
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            assert!(
                self.nodes[idx].is_some(),
                "node {idx} was never installed; install_node every topology node before running"
            );
            self.invoke(NodeId(idx), |node, ctx| node.on_start(ctx));
        }
    }

    fn process(&mut self, event: Event<M>) {
        match event {
            Event::Deliver { from, to, msg } => {
                if !self.alive[to.index()] {
                    self.stats.messages_to_dead_nodes += 1;
                    return;
                }
                self.stats.messages_delivered += 1;
                self.invoke(to, |node, ctx| node.on_message(from, msg, ctx));
            }
            Event::Timer { node, token } => {
                if !self.alive[node.index()] {
                    return;
                }
                self.stats.timers_fired += 1;
                self.invoke(node, |n, ctx| n.on_timer(token, ctx));
            }
            Event::NodeDown { node } => {
                self.alive[node.index()] = false;
                let notify_at = self.now + self.config.failure_detection_delay;
                self.queue.push(notify_at, Event::NotifyDown { node });
            }
            Event::NodeUp { node } => {
                self.alive[node.index()] = true;
                let notify_at = self.now + self.config.failure_detection_delay;
                self.queue.push(notify_at, Event::NotifyUp { node });
            }
            Event::NotifyDown { node } => {
                for idx in 0..self.nodes.len() {
                    if idx != node.index() && self.alive[idx] {
                        self.invoke(NodeId(idx), |n, ctx| n.on_node_down(node, ctx));
                    }
                }
            }
            Event::NotifyUp { node } => {
                for idx in 0..self.nodes.len() {
                    if idx != node.index() && self.alive[idx] {
                        self.invoke(NodeId(idx), |n, ctx| n.on_node_up(node, ctx));
                    }
                }
            }
            Event::Stop => {
                self.stopped = true;
            }
        }
    }

    /// Runs a node callback with a fresh [`Context`] and applies the actions
    /// it recorded.
    fn invoke<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node<M>, &mut Context<M>),
    {
        let mut node = self.nodes[id.index()].take().expect("node installed");
        let actions = {
            let mut ctx = Context {
                now: self.now,
                node: id,
                neighbors: self.topology.neighbors(id),
                rng: &mut self.rng,
                actions: Vec::new(),
            };
            f(node.as_mut(), &mut ctx);
            ctx.actions
        };
        self.nodes[id.index()] = Some(node);
        for action in actions {
            self.apply_action(id, action);
        }
    }

    fn apply_action(&mut self, from: NodeId, action: Action<M>) {
        match action {
            Action::Send { to, msg } => {
                let key = (from.index(), to.index());
                let Some(link) = self.links.get_mut(&key) else {
                    self.stats.invalid_sends += 1;
                    return;
                };
                let loss_draw = uniform_f64(&mut self.rng);
                let jitter_draw = uniform_f64(&mut self.rng);
                match link.transmit(self.now, msg.wire_size(), loss_draw, jitter_draw) {
                    TransmitOutcome::Deliver(at) => {
                        self.queue.push(at, Event::Deliver { from, to, msg });
                    }
                    TransmitOutcome::Dropped => {
                        self.stats.messages_dropped += 1;
                    }
                }
            }
            Action::SendControl { to, msg, latency } => {
                self.queue
                    .push(self.now + latency, Event::Deliver { from, to, msg });
            }
            Action::SetTimer { delay, token } => {
                self.queue
                    .push(self.now + delay, Event::Timer { node: from, token });
            }
        }
    }
}

fn uniform_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::node::NodeKind;
    use crate::topology::TopologyBuilder;
    use std::any::Any;

    /// A message counting its own size.
    #[derive(Debug, Clone)]
    struct Ping {
        hop_budget: u32,
    }
    impl Message for Ping {
        fn wire_size(&self) -> usize {
            100
        }
    }

    /// Bounces every received ping back to the sender until the hop budget is
    /// exhausted, counting what it saw.
    struct Bouncer {
        received: u64,
        start_pings: Vec<NodeId>,
        downs_seen: Vec<NodeId>,
        ups_seen: Vec<NodeId>,
    }

    impl Bouncer {
        fn new(start_pings: Vec<NodeId>) -> Self {
            Bouncer {
                received: 0,
                start_pings,
                downs_seen: Vec::new(),
                ups_seen: Vec::new(),
            }
        }
    }

    impl Node<Ping> for Bouncer {
        fn on_start(&mut self, ctx: &mut Context<Ping>) {
            for &to in &self.start_pings.clone() {
                ctx.send(to, Ping { hop_budget: 5 });
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
            self.received += 1;
            if msg.hop_budget > 0 {
                ctx.send(
                    from,
                    Ping {
                        hop_budget: msg.hop_budget - 1,
                    },
                );
            }
        }
        fn on_node_down(&mut self, node: NodeId, _ctx: &mut Context<Ping>) {
            self.downs_seen.push(node);
        }
        fn on_node_up(&mut self, node: NodeId, _ctx: &mut Context<Ping>) {
            self.ups_seen.push(node);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim() -> (Simulator<Ping>, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node(NodeKind::Host, "a");
        let c = b.add_node(NodeKind::Host, "c");
        b.add_link(a, c, LinkParams::datacenter_40g());
        let topo = b.build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install_node(a, Box::new(Bouncer::new(vec![c])));
        sim.install_node(c, Box::new(Bouncer::new(vec![])));
        (sim, a, c)
    }

    #[test]
    fn ping_pong_exchanges_expected_messages() {
        let (mut sim, a, c) = two_node_sim();
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        // a sends budget 5 -> c(5 recv) replies 4 -> a(recv) replies 3 -> ... total 6 deliveries.
        let a_node = sim.node_as::<Bouncer>(a).unwrap();
        let c_node = sim.node_as::<Bouncer>(c).unwrap();
        assert_eq!(a_node.received + c_node.received, 6);
        assert_eq!(sim.stats().messages_delivered, 6);
        assert_eq!(sim.stats().messages_dropped, 0);
        assert_eq!(sim.link_stats(a, c).unwrap().delivered, 3);
        assert_eq!(sim.link_stats(c, a).unwrap().delivered, 3);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut b = TopologyBuilder::new();
            let a = b.add_node(NodeKind::Host, "a");
            let c = b.add_node(NodeKind::Host, "c");
            b.add_link(a, c, LinkParams::datacenter_40g().with_loss(0.3));
            let topo = b.build();
            let mut sim = Simulator::new(topo, SimConfig::default().with_seed(seed));
            sim.install_node(a, Box::new(Bouncer::new(vec![c; 50])));
            sim.install_node(c, Box::new(Bouncer::new(vec![])));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            (sim.stats().messages_delivered, sim.stats().messages_dropped)
        };
        assert_eq!(run(42), run(42));
        // With 30 % loss and 300 transmissions, two different seeds producing
        // exactly the same counts is possible but vanishingly unlikely; accept
        // either but require determinism above.
        let _ = run(43);
    }

    #[test]
    fn dead_nodes_do_not_receive() {
        let (mut sim, a, c) = two_node_sim();
        let plan = FaultPlan::none().fail_at(SimTime::ZERO, c);
        sim.apply_fault_plan(&plan);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.node_as::<Bouncer>(c).unwrap().received, 0);
        assert!(sim.stats().messages_to_dead_nodes >= 1);
        assert!(!sim.is_alive(c));
        // a is notified of the failure after the detection delay.
        assert_eq!(sim.node_as::<Bouncer>(a).unwrap().downs_seen, vec![c]);
    }

    #[test]
    fn recovery_notifies_survivors() {
        let (mut sim, a, c) = two_node_sim();
        let plan = FaultPlan::none()
            .fail_at(SimTime::ZERO + SimDuration::from_millis(1), c)
            .recover_at(SimTime::ZERO + SimDuration::from_millis(100), c);
        sim.apply_fault_plan(&plan);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(sim.is_alive(c));
        let a_node = sim.node_as::<Bouncer>(a).unwrap();
        assert_eq!(a_node.downs_seen, vec![c]);
        assert_eq!(a_node.ups_seen, vec![c]);
    }

    #[test]
    fn invalid_send_is_counted_not_delivered() {
        struct BadSender;
        impl Node<Ping> for BadSender {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send(NodeId(1), Ping { hop_budget: 0 });
            }
            fn on_message(&mut self, _: NodeId, _: Ping, _: &mut Context<Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        // Two nodes, NO link between them.
        let mut b = TopologyBuilder::new();
        let a = b.add_node(NodeKind::Host, "a");
        let _c = b.add_node(NodeKind::Host, "c");
        let topo = b.build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install_node(a, Box::new(BadSender));
        sim.install_node(NodeId(1), Box::new(Bouncer::new(vec![])));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(sim.stats().invalid_sends, 1);
        assert_eq!(sim.stats().messages_delivered, 0);
    }

    #[test]
    fn control_messages_bypass_topology() {
        struct ControlSender;
        impl Node<Ping> for ControlSender {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send_control(
                    NodeId(1),
                    Ping { hop_budget: 0 },
                    SimDuration::from_millis(5),
                );
            }
            fn on_message(&mut self, _: NodeId, _: Ping, _: &mut Context<Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = TopologyBuilder::new();
        let a = b.add_node(NodeKind::Controller, "ctrl");
        let c = b.add_node(NodeKind::Switch, "sw");
        let topo = b.build(); // no links at all
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install_node(a, Box::new(ControlSender));
        sim.install_node(c, Box::new(Bouncer::new(vec![])));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.node_as::<Bouncer>(c).unwrap().received, 1);
        assert_eq!(sim.stats().invalid_sends, 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<Ping> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.set_timer(SimDuration::from_micros(30), 3);
                ctx.set_timer(SimDuration::from_micros(10), 1);
                ctx.set_timer(SimDuration::from_micros(20), 2);
            }
            fn on_message(&mut self, _: NodeId, _: Ping, _: &mut Context<Ping>) {}
            fn on_timer(&mut self, token: u64, _: &mut Context<Ping>) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = TopologyBuilder::new();
        let a = b.add_node(NodeKind::Host, "a");
        let topo = b.build();
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install_node(a, Box::new(TimerNode { fired: Vec::new() }));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(sim.node_as::<TimerNode>(a).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers_fired, 3);
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn running_with_missing_node_panics() {
        let mut b = TopologyBuilder::new();
        let _a = b.add_node(NodeKind::Host, "a");
        let topo = b.build();
        let mut sim: Simulator<Ping> = Simulator::new(topo, SimConfig::default());
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(1));
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node(NodeKind::Host, "a");
        let topo = b.build();
        let mut sim: Simulator<Ping> = Simulator::new(topo, SimConfig::default());
        sim.install_node(a, Box::new(Bouncer::new(vec![])));
        let end = sim.run_for(SimDuration::from_secs(3));
        assert_eq!(end, SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(sim.now(), end);
    }
}
