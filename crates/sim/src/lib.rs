//! # netchain-sim
//!
//! A deterministic discrete-event simulator of a datacenter network, built as
//! the substrate for reproducing the NetChain evaluation without Tofino
//! hardware.
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — a run is a pure function of the topology, the node
//!    programs and a seed. Every source of randomness (loss, jitter, workload
//!    inter-arrivals) draws from one seeded PRNG owned by the simulator, and
//!    events at equal timestamps are ordered by insertion sequence.
//! 2. **Hop-by-hop realism** — packets travel link by link; forwarding
//!    decisions are made by node logic, not by the simulator. This is what
//!    makes NetChain's neighbour-switch failover (Algorithm 2) observable.
//! 3. **Event-driven simplicity** — the simulator is a single-threaded event
//!    loop in the style the smoltcp/tokio guides recommend for protocol code:
//!    no shared mutable state, no executor, no `unsafe`.
//!
//! The crate knows nothing about NetChain itself: nodes implement the
//! [`Node`] trait for an arbitrary message type implementing [`Message`], so
//! the same simulator hosts the NetChain switches, the server-based baseline,
//! and any ad-hoc test harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod link;
pub mod metrics;
pub mod node;
pub mod routing;
pub mod simulator;
pub mod time;
pub mod topology;

pub use event::Event;
pub use fault::FaultPlan;
pub use link::{LinkParams, LinkState, LinkStats};
pub use metrics::{Counter, LatencyStats, ThroughputSeries};
pub use node::{Context, Message, Node, NodeId, NodeKind, TimerToken};
pub use routing::RoutingTables;
pub use simulator::{SimConfig, SimStats, Simulator};
pub use time::{SimDuration, SimTime};
pub use topology::{Topology, TopologyBuilder};
