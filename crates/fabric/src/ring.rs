//! A bounded, lock-free single-producer/single-consumer ring.
//!
//! This is the only queue the fabric uses: every (client, shard) pair owns
//! one ring per direction, so each ring has exactly one producer thread and
//! one consumer thread and never needs a lock or a CAS loop — a plain
//! Lamport queue with release/acquire index publication.
//!
//! Two throughput refinements over the textbook version, both standard in
//! software dataplanes:
//!
//! * **index caching** — the producer keeps a stale copy of the consumer's
//!   head (and vice versa) and only reloads the shared atomic when the cached
//!   value says the ring looks full/empty. In steady state this cuts
//!   cross-core cache-line traffic to one transfer per *batch*, not per item.
//! * **batch operations** — [`Producer::push_batch`] publishes a whole burst
//!   with a single release store; [`Consumer::pop_batch`] consumes a run and
//!   retires it with a single release store.
//!
//! Safety argument (this module is the crate's only `unsafe` code): slots in
//! `[head, tail)` are owned by the consumer, slots in `[tail, head + cap)` by
//! the producer. The producer writes a slot **before** publishing it by
//! storing `tail` with `Release`; the consumer reads `tail` with `Acquire`
//! before reading the slot, and symmetrically for `head` on the reuse path.
//! Each index is written by exactly one side. Indices increase monotonically
//! and are taken modulo the power-of-two capacity via a mask.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an atomic counter to its own cache line so the producer's tail and
/// the consumer's head never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded(AtomicUsize);

struct RingShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded,
}

// SAFETY: the ring is shared between exactly one producer and one consumer;
// the head/tail protocol above ensures a slot is never accessed from both
// sides at once. `T: Send` is required because items cross threads.
unsafe impl<T: Send> Send for RingShared<T> {}
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Both handles are gone (`&mut self`), so plain loads suffice.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialised, unconsumed
            // items that nothing else can touch any more.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// Creates a ring holding at least `capacity` items (rounded up to a power
/// of two), returning the two endpoint handles.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 2, "a ring needs room for at least two items");
    let cap = capacity.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(RingShared {
        buf,
        mask: cap - 1,
        head: CachePadded::default(),
        tail: CachePadded::default(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

/// The write end of a ring. `!Clone`: exactly one producer exists.
pub struct Producer<T: Send> {
    shared: Arc<RingShared<T>>,
    /// Local copy of the ring's tail (this side owns it).
    tail: usize,
    /// Last observed consumer head; refreshed only when the ring looks full.
    cached_head: usize,
}

impl<T: Send> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Free slots, according to the (possibly stale) cached head.
    fn free_cached(&mut self) -> usize {
        let cap = self.capacity();
        if self.tail - self.cached_head == cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
        }
        cap - (self.tail - self.cached_head)
    }

    /// Attempts to push one item; returns it back if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.free_cached() == 0 {
            return Err(item);
        }
        // SAFETY: slot `tail` is in the producer-owned region (free > 0) and
        // not yet published to the consumer.
        unsafe { (*self.shared.buf[self.tail & self.shared.mask].get()).write(item) };
        self.tail += 1;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Moves as many items as fit from the front of `items`, publishing them
    /// with a single release store. Returns how many were taken.
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> usize {
        let take = self.free_cached().min(items.len());
        if take == 0 {
            return 0;
        }
        for item in items.drain(..take) {
            // SAFETY: as in `push`; all `take` slots are producer-owned.
            unsafe { (*self.shared.buf[self.tail & self.shared.mask].get()).write(item) };
            self.tail += 1;
        }
        self.shared.tail.0.store(self.tail, Ordering::Release);
        take
    }
}

/// The read end of a ring. `!Clone`: exactly one consumer exists.
pub struct Consumer<T: Send> {
    shared: Arc<RingShared<T>>,
    /// Local copy of the ring's head (this side owns it).
    head: usize,
    /// Last observed producer tail; refreshed only when the ring looks empty.
    cached_tail: usize,
}

impl<T: Send> Consumer<T> {
    /// Items available, according to the (possibly stale) cached tail.
    fn available_cached(&mut self) -> usize {
        if self.cached_tail == self.head {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
        }
        self.cached_tail - self.head
    }

    /// Pops one item, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.available_cached() == 0 {
            return None;
        }
        // SAFETY: slot `head` is published ([head, tail)) and exclusively
        // ours until we advance `head`.
        let item =
            unsafe { (*self.shared.buf[self.head & self.shared.mask].get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Pops up to `max` items into `out`, retiring them with a single
    /// release store. Returns how many were popped.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let take = self.available_cached().min(max);
        if take == 0 {
            return 0;
        }
        out.reserve(take);
        for _ in 0..take {
            // SAFETY: as in `pop`; all `take` slots are published and ours.
            let item = unsafe {
                (*self.shared.buf[self.head & self.shared.mask].get()).assume_init_read()
            };
            out.push(item);
            self.head += 1;
        }
        self.shared.head.0.store(self.head, Ordering::Release);
        take
    }

    /// True if the ring is empty *and* nothing is in flight from the
    /// producer at the moment of the check.
    pub fn is_empty_now(&mut self) -> bool {
        self.available_cached() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (mut tx, mut rx) = ring::<u64>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(99).is_err(), "ring should be full");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn batch_push_pop() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let mut items: Vec<u32> = (0..12).collect();
        assert_eq!(tx.push_batch(&mut items), 8);
        assert_eq!(items.len(), 4, "unpushed remainder stays");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 5), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(tx.push_batch(&mut items), 4);
        out.clear();
        // pop_batch is conservative: it serves the cached run first and only
        // reloads the producer index when that run is exhausted.
        while out.len() < 7 {
            assert!(rx.pop_batch(&mut out, 64) > 0);
        }
        assert_eq!(out, vec![5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(rx.pop_batch(&mut out, 64), 0);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(33);
        assert_eq!(tx.capacity(), 64);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = ring::<D>(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(rx.pop());
        let before = DROPS.load(Ordering::SeqCst);
        assert_eq!(before, 1);
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(256);
        let producer = std::thread::spawn(move || {
            let mut pending: Vec<u64> = Vec::new();
            let mut next = 0u64;
            while next < N || !pending.is_empty() {
                while pending.len() < 64 && next < N {
                    pending.push(next);
                    next += 1;
                }
                if tx.push_batch(&mut pending) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0u64;
        let mut out = Vec::new();
        while expected < N {
            out.clear();
            if rx.pop_batch(&mut out, 64) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for v in &out {
                assert_eq!(*v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(expected, N);
    }
}
