//! Fixed-size inline packet frames: the unit carried by the fabric's rings.
//!
//! A NetChain packet is small and strictly bounded (Ethernet + IPv4 + UDP +
//! fixed header + 16 chain hops + 128-byte value = 273 bytes), so frames
//! store the serialized bytes inline rather than boxing them. Moving a frame
//! through a ring is a memcpy into a pre-allocated slot — the rings never
//! touch the allocator, and the consumer parses straight out of the slot with
//! the zero-copy [`netchain_wire::PacketView`].

use netchain_wire::{NetChainPacket, WireError, WireResult};

/// Maximum serialized size of a NetChain packet (re-exported from the wire
/// crate, which owns the bound — the socket dataplane sizes its receive
/// buffers from the same constant).
pub use netchain_wire::MAX_FRAME_LEN;

/// One serialized packet, stored inline.
#[derive(Clone)]
pub struct Frame {
    len: u16,
    bytes: [u8; MAX_FRAME_LEN],
}

impl Frame {
    /// Serializes `pkt` into a frame.
    pub fn from_packet(pkt: &NetChainPacket) -> WireResult<Frame> {
        let mut frame = Frame {
            len: 0,
            bytes: [0u8; MAX_FRAME_LEN],
        };
        let written = pkt.emit_into(&mut frame.bytes)?;
        frame.len = written as u16;
        Ok(frame)
    }

    /// Copies raw packet bytes (e.g. one [`netchain_wire::BatchEncoder`]
    /// frame) into a frame.
    pub fn from_bytes(bytes: &[u8]) -> WireResult<Frame> {
        if bytes.len() > MAX_FRAME_LEN {
            return Err(WireError::BufferTooSmall {
                needed: bytes.len(),
                available: MAX_FRAME_LEN,
            });
        }
        let mut frame = Frame {
            len: bytes.len() as u16,
            bytes: [0u8; MAX_FRAME_LEN],
        };
        frame.bytes[..bytes.len()].copy_from_slice(bytes);
        Ok(frame)
    }

    /// The serialized packet bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..usize::from(self.len)]
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frame").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_wire::{
        ChainList, Ipv4Addr, Key, OpCode, PacketView, Value, MAX_CHAIN_LEN, MAX_VALUE_LEN,
    };

    #[test]
    fn frame_roundtrips_largest_packet() {
        let pkt = NetChainPacket::query(
            Ipv4Addr::for_host(1),
            40_000,
            Ipv4Addr::for_switch(0),
            OpCode::Write,
            Key::from_u64(9),
            Value::filled(0xaa, MAX_VALUE_LEN).unwrap(),
            ChainList::new(
                (0..MAX_CHAIN_LEN as u32)
                    .map(Ipv4Addr::for_switch)
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            1,
        );
        assert_eq!(pkt.wire_size(), MAX_FRAME_LEN);
        let frame = Frame::from_packet(&pkt).unwrap();
        assert_eq!(PacketView::parse(frame.as_bytes()).unwrap().to_owned(), pkt);
        let copy = Frame::from_bytes(frame.as_bytes()).unwrap();
        assert_eq!(copy.as_bytes(), frame.as_bytes());
    }
}
