//! The closed-loop load generator.
//!
//! Each client owns a sans-IO [`AgentCore`] — the very same packet
//! construction and reply-matching logic the simulator's clients and the UDP
//! loopback deployment use — plus a seeded PRNG that samples keys and a
//! read/write/CAS op mix. Clients are *closed loop*: each keeps a bounded
//! window of queries outstanding and only issues a new one when a reply
//! retires an old one, the standard way to measure a service's sustainable
//! rate without open-loop overload artefacts.

use crate::stats::ClientReport;
use netchain_core::{AgentConfig, AgentCore, ChainDirectory, HashRing, KvOp};
use netchain_sim::SimTime;
use netchain_telemetry::{
    key_fingerprint, trace_id, Evidence, HistSnapshot, HopRole, LatencyHistogram, PacketTrace,
    TraceConfig, TraceSink,
};
use netchain_wire::{Ipv4Addr, Key, NetChainPacket, PacketView, QueryStatus, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Packets a retry poll wants retransmitted, returned by
/// [`ClientState::poll_retries_at`]. Queries the same poll abandoned are
/// visible in the report's `abandoned` counter.
pub type RetryBatch = Vec<NetChainPacket>;

/// The operation mix and intensity of a workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of distinct keys.
    pub num_keys: u64,
    /// Percentage of reads (0–100).
    pub read_pct: u8,
    /// Percentage of writes; the remainder after reads + writes is CAS.
    pub write_pct: u8,
    /// Outstanding queries per client (closed-loop window).
    pub window: usize,
    /// Operations each client completes before stopping.
    pub ops_per_client: u64,
    /// PRNG seed (each client derives its own stream from this).
    pub seed: u64,
    /// Hot-key skew: key of rank `k` is drawn with probability
    /// ∝ 1/(k+1)^s. `0.0` (the default) keeps exact uniform sampling —
    /// same PRNG draws, bit-identical op streams to the pre-skew workloads;
    /// `0.99` is the YCSB-style zipfian the paper's skewed experiments use.
    pub zipf_exponent: f64,
}

impl WorkloadSpec {
    /// The uniform-read workload the scaling acceptance test uses.
    pub fn uniform_read(num_keys: u64, ops_per_client: u64) -> Self {
        WorkloadSpec {
            num_keys,
            read_pct: 100,
            write_pct: 0,
            window: 64,
            ops_per_client,
            seed: 0x6661_6272_6963, // "fabric"
            zipf_exponent: 0.0,
        }
    }

    /// A mixed workload: `read_pct` reads, `write_pct` writes, remainder CAS.
    pub fn mixed(num_keys: u64, ops_per_client: u64, read_pct: u8, write_pct: u8) -> Self {
        assert!(usize::from(read_pct) + usize::from(write_pct) <= 100);
        WorkloadSpec {
            read_pct,
            write_pct,
            ..Self::uniform_read(num_keys, ops_per_client)
        }
    }

    /// Returns a copy with zipfian hot-key skew of exponent `s` (`0.0`
    /// restores uniform sampling).
    pub fn with_skew(mut self, s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "skew exponent must be finite");
        self.zipf_exponent = s;
        self
    }
}

/// The cumulative distribution of zipfian key ranks, normalised to end at
/// 1.0. Empty for uniform workloads, in which case sampling takes the exact
/// pre-skew PRNG path.
fn build_zipf_cdf(spec: &WorkloadSpec) -> Vec<f64> {
    if spec.zipf_exponent == 0.0 {
        return Vec::new();
    }
    assert!(
        spec.num_keys <= (1 << 24),
        "zipfian sampling tabulates the CDF; cap the keyspace"
    );
    let mut cdf = Vec::with_capacity(spec.num_keys as usize);
    let mut acc = 0.0f64;
    for k in 0..spec.num_keys {
        acc += 1.0 / ((k + 1) as f64).powf(spec.zipf_exponent);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

/// One closed-loop client: op sampling + the sans-IO agent.
pub struct ClientState {
    id: u32,
    agent: AgentCore,
    rng: ChaCha8Rng,
    spec: WorkloadSpec,
    /// Tabulated zipfian CDF (empty for uniform workloads).
    zipf_cdf: Vec<f64>,
    /// Logical clock fed to the agent (the fabric has no simulated time; the
    /// agent only needs monotonicity for its bookkeeping).
    clock: u64,
    /// Monotonically increasing write payloads, so every write is distinct.
    write_counter: u64,
    report: ClientReport,
    /// Issue→reply latency of completed queries, recorded from the agent's
    /// per-query measurement. Meaningful when the timed API
    /// ([`ClientState::issue_at`] / [`ClientState::absorb_reply_at`]) feeds
    /// real clocks; logical-clock callers just accumulate tick counts.
    latency: LatencyHistogram,
    /// In-band trace stamping (client hop), when enabled.
    tracer: Option<TraceSink>,
}

impl ClientState {
    /// Creates client `id` issuing ops over `ring`'s chains.
    pub fn new(id: u32, ring: &HashRing, spec: WorkloadSpec) -> Self {
        let config = AgentConfig::new(Ipv4Addr::for_host(id));
        Self::with_agent_config(id, ring, spec, config)
    }

    /// Like [`ClientState::new`], with an explicit agent configuration
    /// (live-controlled runs tune the retransmission timeout and retry
    /// budget, which the failure-free fabric never exercises).
    pub fn with_agent_config(
        id: u32,
        ring: &HashRing,
        spec: WorkloadSpec,
        config: AgentConfig,
    ) -> Self {
        let directory = ChainDirectory::new(ring.clone());
        ClientState {
            id,
            agent: AgentCore::new(config, directory),
            rng: ChaCha8Rng::seed_from_u64(spec.seed ^ (u64::from(id) << 32)),
            zipf_cdf: build_zipf_cdf(&spec),
            spec,
            clock: 0,
            write_counter: 0,
            report: ClientReport::default(),
            latency: LatencyHistogram::new(),
            tracer: None,
        }
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// This client's IP as a big-endian u32 (the trace hop identity).
    fn ip_u32(&self) -> u32 {
        u32::from_be_bytes(Ipv4Addr::for_host(self.id).0)
    }

    /// Turns on in-band trace stamping: sampled queries get a client-side
    /// stamp at issue and at reply absorption.
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        self.tracer = Some(TraceSink::new(config));
    }

    /// Drains the traces recorded so far (fragments; merge with the shard
    /// sinks' fragments via `netchain_telemetry::merge_traces`).
    pub fn take_traces(&mut self) -> Vec<PacketTrace> {
        self.tracer
            .as_mut()
            .map(TraceSink::drain)
            .unwrap_or_default()
    }

    /// Takes only the traces *completed* since the last call, leaving open
    /// ones accumulating. This is the live feed for the shadow auditor: a
    /// completed client fragment carries the issue and ack evidence the
    /// online freshness check needs.
    pub fn take_finished_traces(&mut self) -> Vec<PacketTrace> {
        self.tracer
            .as_mut()
            .map(TraceSink::take_finished)
            .unwrap_or_default()
    }

    /// Snapshot of the issue→reply latency distribution.
    pub fn latency_snapshot(&self) -> HistSnapshot {
        self.latency.snapshot()
    }

    /// The counters accumulated so far (version regressions are read live
    /// from the agent).
    pub fn report(&self) -> ClientReport {
        ClientReport {
            version_regressions: self.agent.stats().version_regressions,
            retries: self.agent.stats().retries,
            abandoned: self.agent.stats().abandoned,
            ..self.report
        }
    }

    /// Queries currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.agent.outstanding()
    }

    /// The underlying agent's full statistics (stale replies, abandonments —
    /// counters the condensed [`ClientReport`] does not carry).
    pub fn agent_stats(&self) -> &netchain_core::AgentStats {
        self.agent.stats()
    }

    /// True once the client has completed its share of the workload.
    pub fn is_done(&self) -> bool {
        self.report.completed >= self.spec.ops_per_client
    }

    /// True if another query may be issued right now (window open and work
    /// remaining to issue).
    pub fn can_issue(&self) -> bool {
        self.agent.outstanding() < self.spec.window && self.report.issued < self.spec.ops_per_client
    }

    /// Samples the next operation of the workload mix. Public so other
    /// harnesses (the measured server baseline, the live failover runner)
    /// can draw from the *same* op stream the fabric is driven with.
    pub fn sample_op(&mut self) -> KvOp {
        let key = Key::from_u64(self.sample_key_rank());
        let dice: u8 = self.rng.gen_range(0..100u8);
        if dice < self.spec.read_pct {
            KvOp::Read(key)
        } else if dice < self.spec.read_pct + self.spec.write_pct {
            self.write_counter += 1;
            KvOp::Write(key, Value::from_u64(self.write_counter))
        } else {
            // CAS expecting the initial value; contention makes some fail,
            // which is the interesting (lock-like) behaviour.
            KvOp::Cas {
                key,
                expected: 0,
                new: u64::from(self.id) + 1,
            }
        }
    }

    /// Draws the next key rank: the exact pre-skew uniform path when the
    /// workload is unskewed (bit-identical PRNG draw sequence), otherwise an
    /// inverse-CDF zipfian draw where rank 0 is the hottest key.
    fn sample_key_rank(&mut self) -> u64 {
        if self.zipf_cdf.is_empty() {
            self.rng.gen_range(0..self.spec.num_keys)
        } else {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            let rank = self.zipf_cdf.partition_point(|&c| c <= u) as u64;
            rank.min(self.spec.num_keys - 1)
        }
    }

    /// Issues the next query, returning the packet to transmit.
    pub fn issue(&mut self) -> NetChainPacket {
        debug_assert!(self.can_issue());
        self.issue_unbounded()
    }

    /// Issues a query ignoring the closed-loop window (capacity mode
    /// pre-generates the whole op stream before any processing happens).
    pub fn issue_unbounded(&mut self) -> NetChainPacket {
        let op = self.sample_op();
        self.clock += 1;
        let (_, pkt) = self.agent.begin(SimTime(self.clock), op);
        self.report.issued += 1;
        pkt
    }

    /// Issues the next query stamped with a caller-supplied clock (wall-clock
    /// nanoseconds since the run started, in live-controlled runs). The
    /// caller must use the timed API consistently: mixing it with the
    /// logical-clock [`ClientState::issue`] would confuse the retry timers.
    pub fn issue_at(&mut self, now: SimTime) -> NetChainPacket {
        debug_assert!(self.can_issue());
        let op = self.sample_op();
        let (request_id, pkt) = self.agent.begin(now, op);
        self.report.issued += 1;
        let ip = self.ip_u32();
        if let Some(tracer) = &mut self.tracer {
            let id = trace_id(ip, request_id);
            if tracer.samples(id) {
                match netchain_core::evidence_op(pkt.netchain.op) {
                    Some(op) => tracer.stamp_with(
                        id,
                        ip,
                        now.as_nanos(),
                        Evidence {
                            op,
                            role: HopRole::ClientIssue,
                            ok: true,
                            key_fp: key_fingerprint(pkt.netchain.key.stable_hash()),
                            session: 0,
                            seq: 0,
                        },
                    ),
                    None => tracer.stamp(id, ip, now.as_nanos()),
                }
            }
        }
        pkt
    }

    /// Consumes one serialized reply frame at a caller-supplied clock;
    /// returns `true` if it matched an outstanding query.
    pub fn absorb_reply_at(&mut self, now: SimTime, frame: &[u8]) -> bool {
        let Ok(view) = PacketView::parse(frame) else {
            return false;
        };
        let pkt = view.to_owned();
        self.absorb_packet(now, &pkt)
    }

    /// Checks outstanding queries against the retransmission timeout,
    /// returning the packets to retransmit. Queries past their retry budget
    /// are abandoned (they reopen the window and show up in the report's
    /// `abandoned` counter — which must stay zero in healthy runs — but are
    /// *not* counted as completed: `completed` means a matched reply).
    pub fn poll_retries_at(&mut self, now: SimTime) -> RetryBatch {
        self.agent.poll_retries(now).retransmit
    }

    /// Consumes one serialized reply frame; returns `true` if it matched an
    /// outstanding query.
    pub fn absorb_reply(&mut self, frame: &[u8]) -> bool {
        let Ok(view) = PacketView::parse(frame) else {
            return false;
        };
        let pkt = view.to_owned();
        self.clock += 1;
        let now = SimTime(self.clock);
        self.absorb_packet(now, &pkt)
    }

    fn absorb_packet(&mut self, now: SimTime, pkt: &netchain_wire::NetChainPacket) -> bool {
        match self.agent.on_reply(now, pkt) {
            Some(done) => {
                self.report.completed += 1;
                self.latency.record(done.latency.as_nanos());
                match done.status {
                    Some(QueryStatus::Ok) => self.report.ok += 1,
                    Some(QueryStatus::CasFailed) => self.report.cas_failed += 1,
                    _ => {}
                }
                let ip = self.ip_u32();
                if let Some(tracer) = &mut self.tracer {
                    let id = trace_id(ip, done.request_id);
                    if tracer.samples(id) {
                        match netchain_core::evidence_op(pkt.netchain.op) {
                            Some(op) => tracer.stamp_with(
                                id,
                                ip,
                                now.as_nanos(),
                                Evidence {
                                    op,
                                    role: HopRole::ClientAck,
                                    ok: pkt.netchain.status == QueryStatus::Ok,
                                    key_fp: key_fingerprint(pkt.netchain.key.stable_hash()),
                                    session: u64::from(pkt.netchain.session),
                                    seq: pkt.netchain.seq,
                                },
                            ),
                            None => tracer.stamp(id, ip, now.as_nanos()),
                        }
                    }
                    tracer.finish(id);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> HashRing {
        HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7)
    }

    #[test]
    fn op_mix_roughly_matches_spec() {
        let spec = WorkloadSpec::mixed(100, 1_000, 50, 30);
        let mut client = ClientState::new(0, &ring(), spec);
        let (mut reads, mut writes, mut cas) = (0u32, 0u32, 0u32);
        for _ in 0..1_000 {
            match client.sample_op() {
                KvOp::Read(_) => reads += 1,
                KvOp::Write(..) => writes += 1,
                KvOp::Cas { .. } => cas += 1,
                KvOp::Delete(_) => unreachable!("workloads never delete"),
            }
        }
        assert!((400..600).contains(&reads), "reads: {reads}");
        assert!((200..400).contains(&writes), "writes: {writes}");
        assert!((100..300).contains(&cas), "cas: {cas}");
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let uniform = WorkloadSpec::uniform_read(100, 1_000);
        let skewed = uniform.with_skew(1.2);
        let mut client = ClientState::new(0, &ring(), skewed);
        let mut counts = vec![0u32; 100];
        const DRAWS: u32 = 10_000;
        for _ in 0..DRAWS {
            let rank = client.sample_key_rank();
            assert!(rank < 100, "rank out of range: {rank}");
            counts[rank as usize] += 1;
        }
        // The hottest key of a zipf(1.2) over 100 keys carries ~26% of the
        // mass; the top ten carry ~70%. Uniform would give 1% and 10%.
        let top1 = counts[0];
        let top10: u32 = counts[..10].iter().sum();
        assert!(top1 > DRAWS / 8, "rank 0 drew only {top1}/{DRAWS}");
        assert!(top10 > DRAWS / 2, "top-10 ranks drew only {top10}/{DRAWS}");
        // And the tail is still reachable: some draw landed past rank 10.
        assert!(top10 < DRAWS, "tail never sampled");
    }

    #[test]
    fn zero_skew_keeps_exact_uniform_draw_sequence() {
        let spec = WorkloadSpec::uniform_read(100, 1_000);
        let mut plain = ClientState::new(3, &ring(), spec);
        let mut via_skew = ClientState::new(3, &ring(), spec.with_skew(0.0));
        for _ in 0..256 {
            assert_eq!(plain.sample_key_rank(), via_skew.sample_key_rank());
        }
    }

    #[test]
    fn window_limits_outstanding() {
        let spec = WorkloadSpec {
            window: 4,
            ..WorkloadSpec::uniform_read(16, 100)
        };
        let mut client = ClientState::new(1, &ring(), spec);
        let mut issued = Vec::new();
        while client.can_issue() {
            issued.push(client.issue());
        }
        assert_eq!(issued.len(), 4);
        assert_eq!(client.outstanding(), 4);
        assert!(!client.is_done());
    }
}
