//! The fabric runtime: shard workers, client threads, and the capacity
//! (sequential-makespan) measurement mode.
//!
//! Two ways to run the same dataplane:
//!
//! * [`run_live`] — spawns one OS thread per shard and per client, connected
//!   by the lock-free SPSC rings. This is the deployment shape: with
//!   [`FabricConfig::pin_shards`] each shard thread pins itself to a core
//!   (`sched_setaffinity` via the vendored `affinity` shim; no-op off Linux
//!   or without the `pinning` feature), and aggregate throughput scales with
//!   shards because shards share nothing.
//! * [`run_capacity`] — processes each shard's partition sequentially on the
//!   measuring core, timing only dataplane work, and reports the aggregate
//!   for the one-core-per-shard deployment model (`total ops / slowest
//!   shard`). This mirrors how the paper evaluates scalability beyond its
//!   testbed (§8.3) and gives meaningful scaling curves even when the
//!   benchmark machine has fewer cores than shards.

use crate::frame::Frame;
use crate::loadgen::{ClientState, WorkloadSpec};
use crate::ring::{ring, Consumer, Producer};
use crate::shard::Shard;
use crate::stats::{CapacityReport, ClientReport, FabricReport, ShardStats};
use netchain_core::HashRing;
use netchain_sim::SimTime;
use netchain_switch::PipelineConfig;
use netchain_telemetry::{merge_traces, HistSnapshot, PacketTrace, TraceConfig};
use netchain_wire::{BatchEncoder, Ipv4Addr, Key, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How long a live-run client may go without any progress (no push, no
/// reply) before the run is declared wedged. Generous: a healthy fabric
/// makes progress every few microseconds even on one core.
const STALL_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Static configuration of a fabric.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Worker shards (the scaling axis).
    pub num_shards: usize,
    /// Load-generating clients.
    pub num_clients: usize,
    /// Switches on the consistent-hash ring.
    pub num_switches: usize,
    /// Spare switches hosted by every shard but held *out* of the ring, as
    /// replacements for failure recovery (the testbed experiment's S3).
    pub num_spares: usize,
    /// Virtual nodes per switch.
    pub vnodes_per_switch: usize,
    /// Chain length (`f + 1`).
    pub replication: usize,
    /// Ring placement seed.
    pub ring_seed: u64,
    /// Capacity of each SPSC ring, in frames.
    pub ring_capacity: usize,
    /// Frames pulled/processed per burst.
    pub burst: usize,
    /// In-band trace sampling. [`TraceConfig::OFF`] (the default) keeps the
    /// data plane byte-for-byte on its old path.
    pub trace: TraceConfig,
    /// Pin shard thread `s` to CPU `s % available_cpus` in [`run_live`]
    /// (measured core pinning; needs the `pinning` feature, a no-op
    /// elsewhere). Off by default: unit tests and oversubscribed runs are
    /// better served by the scheduler.
    pub pin_shards: bool,
}

impl FabricConfig {
    /// A fabric with `num_shards` workers and paper-style defaults
    /// elsewhere: 8 switches, chains of 3, one client.
    pub fn new(num_shards: usize) -> Self {
        FabricConfig {
            num_shards,
            num_clients: 1,
            num_switches: 8,
            num_spares: 0,
            vnodes_per_switch: 16,
            replication: 3,
            ring_seed: 7,
            ring_capacity: 256,
            burst: 32,
            trace: TraceConfig::OFF,
            pin_shards: false,
        }
    }

    /// Returns a copy with the given trace sampling config.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Returns a copy with shard-thread core pinning switched on or off.
    pub fn with_pinning(mut self, pin_shards: bool) -> Self {
        self.pin_shards = pin_shards;
        self
    }

    /// Returns a copy with the given chain length.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Returns a copy with the given client count.
    pub fn with_clients(mut self, num_clients: usize) -> Self {
        self.num_clients = num_clients;
        self
    }

    /// Returns a copy with the given number of spare (out-of-ring) switches.
    pub fn with_spares(mut self, num_spares: usize) -> Self {
        self.num_spares = num_spares;
        self
    }

    /// The spare switch IPs (numbered after the ring switches).
    pub fn spare_ips(&self) -> Vec<Ipv4Addr> {
        (self.num_switches..self.num_switches + self.num_spares)
            .map(|i| Ipv4Addr::for_switch(i as u32))
            .collect()
    }

    /// The consistent-hash ring this fabric serves.
    pub fn build_ring(&self) -> HashRing {
        HashRing::new(
            (0..self.num_switches as u32)
                .map(Ipv4Addr::for_switch)
                .collect(),
            self.vnodes_per_switch,
            self.replication,
            self.ring_seed,
        )
    }

    /// A pipeline geometry sized for `num_keys` distinct keys (paper stage
    /// shape, store scaled to the workload instead of 8 MB per switch).
    pub fn pipeline_for(num_keys: u64) -> PipelineConfig {
        PipelineConfig {
            value_stages: 8,
            bytes_per_stage: 16,
            slots_per_stage: (num_keys as usize * 2).next_power_of_two().max(64),
            sram_budget_bytes: usize::MAX / 2,
        }
    }

    /// The shard owning `key` (the steering rule lives in
    /// [`crate::shard::shard_of_key`]).
    pub fn shard_of(&self, ring: &HashRing, key: &Key) -> usize {
        crate::shard::shard_of_key(ring, key, self.num_shards)
    }
}

/// Pins the calling thread to `cpu` when the `pinning` feature is compiled
/// in and the platform supports it. Returns whether the pin took effect —
/// callers treat a failed pin as advisory (the thread still runs, merely
/// unpinned), so a restricted cpuset or a non-Linux host degrades gracefully.
pub fn pin_thread(cpu: usize) -> bool {
    #[cfg(feature = "pinning")]
    {
        affinity::pin_current_thread(cpu % affinity::available_cpus()).is_ok()
    }
    #[cfg(not(feature = "pinning"))]
    {
        let _ = cpu;
        false
    }
}

/// Builds the shards and pre-populates every workload key on its owner.
pub fn build_shards(config: &FabricConfig, workload: &WorkloadSpec) -> Vec<Shard> {
    let ring = config.build_ring();
    let pipeline = FabricConfig::pipeline_for(workload.num_keys);
    let spares = config.spare_ips();
    let mut shards: Vec<Shard> = (0..config.num_shards)
        .map(|i| Shard::with_spares(i, config.num_shards, ring.clone(), pipeline, &spares))
        .collect();
    for k in 0..workload.num_keys {
        let key = Key::from_u64(k);
        let shard = config.shard_of(&ring, &key);
        shards[shard].populate(key, &Value::from_u64(0));
    }
    shards
}

/// Runs the fabric live: one thread per shard, one per client, SPSC rings in
/// between. Returns after every client completed its share.
pub fn run_live(config: FabricConfig, workload: WorkloadSpec) -> FabricReport {
    assert!(config.num_shards > 0 && config.num_clients > 0);
    assert!(
        config.ring_capacity >= workload.window,
        "rings must hold a full client window to rule out deadlock"
    );
    let ring_def = config.build_ring();
    let shards = build_shards(&config, &workload);

    // Rings: query[c][s] (client → shard) and reply[s][c] (shard → client).
    let mut query_tx: Vec<Vec<Producer<Frame>>> =
        (0..config.num_clients).map(|_| Vec::new()).collect();
    let mut query_rx: Vec<Vec<Consumer<Frame>>> =
        (0..config.num_shards).map(|_| Vec::new()).collect();
    let mut reply_tx: Vec<Vec<Producer<Frame>>> =
        (0..config.num_shards).map(|_| Vec::new()).collect();
    let mut reply_rx: Vec<Vec<Consumer<Frame>>> =
        (0..config.num_clients).map(|_| Vec::new()).collect();
    for client_rings in query_tx.iter_mut() {
        for shard_rings in query_rx.iter_mut() {
            let (tx, rx) = ring::<Frame>(config.ring_capacity);
            client_rings.push(tx);
            shard_rings.push(rx);
        }
    }
    for shard_rings in reply_tx.iter_mut() {
        for client_rings in reply_rx.iter_mut() {
            let (tx, rx) = ring::<Frame>(config.ring_capacity);
            shard_rings.push(tx);
            client_rings.push(rx);
        }
    }

    let done_clients = Arc::new(AtomicUsize::new(0));
    let pinned = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    // Shard workers.
    let mut shard_handles = Vec::new();
    for (s, mut shard) in shards.into_iter().enumerate() {
        let mut ingress = std::mem::take(&mut query_rx[s]);
        let mut egress = std::mem::take(&mut reply_tx[s]);
        let done = Arc::clone(&done_clients);
        let pinned = Arc::clone(&pinned);
        let burst = config.burst;
        let num_clients = config.num_clients;
        let pin = config.pin_shards;
        if config.trace.enabled {
            shard.enable_tracing(config.trace, start);
        }
        let handle = std::thread::Builder::new()
            .name(format!("fabric-shard-{s}"))
            .spawn(move || {
                if pin && pin_thread(s) {
                    pinned.fetch_add(1, Ordering::Relaxed);
                }
                let mut frames: Vec<Frame> = Vec::with_capacity(burst);
                let mut replies = BatchEncoder::with_capacity(burst, 128);
                loop {
                    let mut any = false;
                    for c in 0..num_clients {
                        frames.clear();
                        if ingress[c].pop_batch(&mut frames, burst) == 0 {
                            continue;
                        }
                        any = true;
                        replies.clear();
                        shard.process_burst(frames.iter().map(|f| f.as_bytes()), &mut replies);
                        for frame in replies.frames() {
                            let mut item =
                                Some(Frame::from_bytes(frame).expect("replies fit in a frame"));
                            // The reply ring is sized for a full window, so
                            // this loop terminates once the client drains.
                            loop {
                                match egress[c].push(item.take().expect("refilled on Err")) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        item = Some(back);
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    }
                    if !any {
                        if done.load(Ordering::Acquire) == num_clients
                            && ingress.iter_mut().all(|r| r.is_empty_now())
                        {
                            break;
                        }
                        // Single-core friendliness: let clients run instead
                        // of spinning the shard.
                        std::thread::yield_now();
                    }
                }
                (shard.id(), *shard.stats(), shard.take_traces())
            })
            .expect("spawn shard thread");
        shard_handles.push(handle);
    }

    // Client threads.
    let mut client_handles = Vec::new();
    for c in 0..config.num_clients {
        let mut tx = std::mem::take(&mut query_tx[c]);
        let mut rx = std::mem::take(&mut reply_rx[c]);
        let ring_clone = ring_def.clone();
        let done = Arc::clone(&done_clients);
        let cfg = config;
        let handle = std::thread::Builder::new()
            .name(format!("fabric-client-{c}"))
            .spawn(move || {
                let mut client = ClientState::new(c as u32, &ring_clone, workload);
                if cfg.trace.enabled {
                    client.enable_tracing(cfg.trace);
                }
                let mut parked: Option<(usize, Frame)> = None;
                let mut reply_buf: Vec<Frame> = Vec::with_capacity(cfg.burst);
                // Stall watchdog: clients have no retransmission, so a query
                // the dataplane drops (parse error, unroutable, a future
                // failover rule) would otherwise hang the run silently with
                // the window never draining. Trade the silent hang for a
                // loud panic with the client's state attached.
                let mut last_progress = Instant::now();
                while !client.is_done() {
                    let mut progressed = false;
                    // Re-offer a frame that found its ring full.
                    if let Some((s, frame)) = parked.take() {
                        match tx[s].push(frame) {
                            Ok(()) => progressed = true,
                            Err(back) => parked = Some((s, back)),
                        }
                    }
                    // Fill the window. The agent clock is wall-clock
                    // nanoseconds since the run started, so the per-query
                    // issue→reply latencies in the report are real.
                    while parked.is_none() && client.can_issue() {
                        let now = SimTime(start.elapsed().as_nanos() as u64);
                        let pkt = client.issue_at(now);
                        let s = cfg.shard_of(&ring_clone, &pkt.netchain.key);
                        let frame = Frame::from_packet(&pkt).expect("queries fit in a frame");
                        match tx[s].push(frame) {
                            Ok(()) => progressed = true,
                            Err(back) => parked = Some((s, back)),
                        }
                    }
                    // Drain replies.
                    for shard_rx in rx.iter_mut() {
                        reply_buf.clear();
                        if shard_rx.pop_batch(&mut reply_buf, cfg.burst) > 0 {
                            progressed = true;
                            let now = SimTime(start.elapsed().as_nanos() as u64);
                            for frame in &reply_buf {
                                client.absorb_reply_at(now, frame.as_bytes());
                            }
                        }
                    }
                    if !progressed {
                        assert!(
                            last_progress.elapsed() < STALL_TIMEOUT,
                            "fabric client {c} stalled for {STALL_TIMEOUT:?}: \
                             {} outstanding, report {:?} — a query was \
                             dropped by the dataplane and clients do not \
                             retransmit",
                            client.outstanding(),
                            client.report(),
                        );
                        std::thread::yield_now();
                    } else {
                        last_progress = Instant::now();
                    }
                }
                done.fetch_add(1, Ordering::Release);
                (
                    client.report(),
                    client.latency_snapshot(),
                    client.take_traces(),
                )
            })
            .expect("spawn client thread");
        client_handles.push(handle);
    }

    let mut clients: Vec<ClientReport> = Vec::with_capacity(config.num_clients);
    let mut latency = HistSnapshot::empty();
    let mut trace_fragments: Vec<PacketTrace> = Vec::new();
    for handle in client_handles {
        let (report, lat, traces) = handle.join().expect("client thread panicked");
        clients.push(report);
        latency.merge(&lat);
        trace_fragments.extend(traces);
    }
    let elapsed = start.elapsed();
    let mut shard_stats = vec![ShardStats::default(); config.num_shards];
    for handle in shard_handles {
        let (id, stats, traces) = handle.join().expect("shard thread panicked");
        shard_stats[id] = stats;
        trace_fragments.extend(traces);
    }
    let completed_ops: u64 = clients.iter().map(|c| c.completed).sum();
    FabricReport {
        elapsed,
        completed_ops,
        ops_per_sec: completed_ops as f64 / elapsed.as_secs_f64().max(1e-12),
        shards: shard_stats,
        clients,
        latency,
        traces: merge_traces(trace_fragments),
        pinned_shards: pinned.load(Ordering::Relaxed),
    }
}

/// Measures aggregate capacity for the one-core-per-shard deployment model.
///
/// The whole op stream is generated up front (generation and reply matching
/// are *not* timed), partitioned by owning shard, and each shard's partition
/// is processed run-to-completion in bursts on the measuring core. Only the
/// `process_burst` calls are timed; the aggregate assumes shards run in
/// parallel, so it is `total ops / max(shard busy time)`.
pub fn run_capacity(config: FabricConfig, workload: WorkloadSpec) -> CapacityReport {
    assert!(config.num_shards > 0);
    let ring_def = config.build_ring();
    let mut shards = build_shards(&config, &workload);
    if config.trace.enabled {
        let t0 = Instant::now();
        for shard in &mut shards {
            shard.enable_tracing(config.trace, t0);
        }
    }

    // Generate and steer the op stream (untimed).
    let mut client = ClientState::new(0, &ring_def, workload);
    let mut per_shard: Vec<Vec<Frame>> = (0..config.num_shards).map(|_| Vec::new()).collect();
    for _ in 0..workload.ops_per_client {
        // Capacity mode is not closed-loop: issue everything up front. Keep
        // the agent's window out of the way.
        let pkt = client.issue_unbounded();
        let s = config.shard_of(&ring_def, &pkt.netchain.key);
        per_shard[s].push(Frame::from_packet(&pkt).expect("queries fit in a frame"));
    }

    // Process each partition, timing dataplane work only. Replies are
    // matched back into the agent after every burst (untimed) — this
    // completes the closed loop for correctness accounting while keeping
    // the reply buffer bounded by one burst instead of the whole run.
    let mut report = CapacityReport::default();
    let mut replies = BatchEncoder::with_capacity(config.burst, 128);
    let mut reply_count: u64 = 0;
    for (s, frames) in per_shard.iter().enumerate() {
        let shard = &mut shards[s];
        let mut busy = std::time::Duration::ZERO;
        for burst in frames.chunks(config.burst) {
            replies.clear();
            let t0 = Instant::now();
            shard.process_burst(burst.iter().map(|f| f.as_bytes()), &mut replies);
            busy += t0.elapsed();
            for frame in replies.frames() {
                reply_count += 1;
                client.absorb_reply(frame);
            }
        }
        report.shard_ops.push(frames.len() as u64);
        report.shard_busy.push(busy);
        report
            .per_shard_ops_per_sec
            .push(frames.len() as f64 / busy.as_secs_f64().max(1e-12));
    }
    report.replies = reply_count;
    report.traces = merge_traces(shards.iter_mut().flat_map(|s| s.take_traces()));
    report.total_ops = report.shard_ops.iter().sum();
    let makespan = report
        .shard_busy
        .iter()
        .max()
        .copied()
        .unwrap_or_default()
        .as_secs_f64()
        .max(1e-12);
    report.aggregate_ops_per_sec = report.total_ops as f64 / makespan;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_run_completes_and_is_consistent() {
        let config = FabricConfig {
            num_shards: 2,
            num_clients: 2,
            ring_capacity: 128,
            ..FabricConfig::new(2)
        };
        let workload = WorkloadSpec::mixed(64, 2_000, 60, 30);
        let report = run_live(config, workload);
        assert_eq!(report.completed_ops, 4_000);
        assert!(report.ops_per_sec > 0.0);
        for client in &report.clients {
            assert_eq!(client.completed, 2_000);
            assert_eq!(client.version_regressions, 0);
        }
        let replies: u64 = report.shards.iter().map(|s| s.replies).sum();
        assert_eq!(replies, 4_000);
        let drops: u64 = report.shards.iter().map(|s| s.drops).sum();
        assert_eq!(drops, 0);
        let unroutable: u64 = report.shards.iter().map(|s| s.unroutable).sum();
        assert_eq!(unroutable, 0);
    }

    #[test]
    fn live_run_records_latency_and_traces() {
        let config = FabricConfig {
            num_shards: 2,
            ring_capacity: 128,
            ..FabricConfig::new(2)
        }
        .with_trace(TraceConfig::sampled(2, 4096));
        let workload = WorkloadSpec::uniform_read(64, 1_000);
        let report = run_live(config, workload);
        assert_eq!(report.completed_ops, 1_000);
        // Every completed op records a latency sample.
        assert_eq!(report.latency.count(), 1_000);
        assert!(report.latency.quantile(0.99).unwrap() >= report.latency.quantile(0.5).unwrap());
        // ~1/4 sampling: plenty of traces survive.
        assert!(
            report.traces.len() > 100,
            "expected sampled traces, got {}",
            report.traces.len()
        );
        let summary = report.trace_summary();
        // Reads traverse the chain from the tail: client, then at least one
        // switch hop, then back at the client.
        let path = summary.dominant_path().expect("traces were recorded");
        assert!(path.len() >= 3, "path too short: {path:?}");
        let client_ip = u32::from_be_bytes(Ipv4Addr::for_host(0).0);
        assert_eq!(path.first(), Some(&client_ip));
        assert_eq!(path.last(), Some(&client_ip));
        assert!(!summary.transitions.is_empty());
    }

    #[test]
    fn capacity_run_traces_shard_hops() {
        let config = FabricConfig::new(2).with_trace(TraceConfig::sampled(3, 1024));
        let workload = WorkloadSpec::mixed(64, 2_000, 50, 50);
        let report = run_capacity(config, workload);
        assert_eq!(report.total_ops, 2_000);
        assert!(!report.traces.is_empty());
        // Writes traverse head → mid → tail: some trace must have >= 3 hops.
        assert!(report.traces.iter().any(|t| t.hops.len() >= 3));
    }

    #[test]
    fn capacity_run_accounts_every_op() {
        let config = FabricConfig::new(4);
        let workload = WorkloadSpec::uniform_read(64, 4_000);
        let report = run_capacity(config, workload);
        assert_eq!(report.total_ops, 4_000);
        assert_eq!(report.replies, 4_000);
        assert_eq!(report.shard_ops.len(), 4);
        assert!(report.aggregate_ops_per_sec > 0.0);
        // Uniform keys spread over shards: no shard should be starved.
        for &ops in &report.shard_ops {
            assert!(ops > 200, "imbalanced steering: {:?}", report.shard_ops);
        }
    }
}
