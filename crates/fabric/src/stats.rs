//! Counters and reports for fabric runs.
//!
//! The counter structs stay plain `u64` fields — single-writer, hot-path
//! friendly — and expose themselves through `netchain-telemetry`'s
//! [`Metrics`] trait, which is the one API exporters, tables, and
//! aggregation go through.

use std::time::Duration;

use netchain_telemetry::{HistSnapshot, Metrics, PacketTrace, TraceSummary};

/// Per-shard dataplane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames pulled from ingress rings.
    pub frames_in: u64,
    /// Frames that failed wire parsing.
    pub parse_errors: u64,
    /// Bursts processed (ring pulls that yielded at least one frame).
    pub bursts: u64,
    /// Chain waves executed across all bursts.
    pub waves: u64,
    /// Replies generated and encoded.
    pub replies: u64,
    /// Packets dropped by the switch program.
    pub drops: u64,
    /// Subset of `drops` caused by a recovery *block* rule (Algorithm 3
    /// phase 1) — the per-group write blocking the Figure 10 analogue
    /// measures.
    pub blocked: u64,
    /// Packets addressed to a switch this shard does not host (or a failed
    /// switch with no failover rule installed yet).
    pub unroutable: u64,
}

/// Counter names exported by [`ShardStats`] (`shard.` namespace).
pub const SHARD_METRICS: &[&str] = &[
    "shard.frames_in",
    "shard.parse_errors",
    "shard.bursts",
    "shard.waves",
    "shard.replies",
    "shard.drops",
    "shard.blocked",
    "shard.unroutable",
];

impl Metrics for ShardStats {
    fn metric_names(&self) -> &'static [&'static str] {
        SHARD_METRICS
    }

    fn metric_values(&self) -> Vec<u64> {
        vec![
            self.frames_in,
            self.parse_errors,
            self.bursts,
            self.waves,
            self.replies,
            self.drops,
            self.blocked,
            self.unroutable,
        ]
    }
}

/// Per-client load-generator counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientReport {
    /// Queries issued.
    pub issued: u64,
    /// Replies matched to an outstanding query.
    pub completed: u64,
    /// Replies with `Ok` status.
    pub ok: u64,
    /// Replies with `CasFailed` status (expected under CAS contention).
    pub cas_failed: u64,
    /// Retransmissions sent (live-controlled runs only; the failure-free
    /// fabric never drops, so this stays zero there).
    pub retries: u64,
    /// Queries abandoned after exhausting the retry budget (must stay zero
    /// in any healthy run, including across failover and repair).
    pub abandoned: u64,
    /// Replies whose version regressed (must stay zero — the fabric is
    /// strongly consistent per key).
    pub version_regressions: u64,
}

/// Counter names exported by [`ClientReport`] (`client.` namespace).
pub const CLIENT_METRICS: &[&str] = &[
    "client.issued",
    "client.completed",
    "client.ok",
    "client.cas_failed",
    "client.retries",
    "client.abandoned",
    "client.version_regressions",
];

impl Metrics for ClientReport {
    fn metric_names(&self) -> &'static [&'static str] {
        CLIENT_METRICS
    }

    fn metric_values(&self) -> Vec<u64> {
        vec![
            self.issued,
            self.completed,
            self.ok,
            self.cas_failed,
            self.retries,
            self.abandoned,
            self.version_regressions,
        ]
    }
}

/// The result of a threaded (live) fabric run.
#[derive(Debug, Clone, Default)]
pub struct FabricReport {
    /// Wall-clock duration of the run (clients started → last client done).
    pub elapsed: Duration,
    /// Total operations completed across all clients.
    pub completed_ops: u64,
    /// Aggregate completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Per-shard dataplane counters.
    pub shards: Vec<ShardStats>,
    /// Per-client counters.
    pub clients: Vec<ClientReport>,
    /// Issue→reply latency across all clients (wall-clock nanoseconds).
    pub latency: HistSnapshot,
    /// Merged in-band traces (empty when tracing is off).
    pub traces: Vec<PacketTrace>,
    /// Shard threads successfully pinned to a core (0 unless
    /// `FabricConfig::pin_shards` is set and the platform supports it).
    pub pinned_shards: usize,
}

impl FabricReport {
    /// Per-hop latency breakdown of the sampled traces.
    pub fn trace_summary(&self) -> TraceSummary {
        TraceSummary::from_traces(&self.traces)
    }
}

/// The result of a capacity (sequential-makespan) measurement: each shard's
/// partition is processed run-to-completion on the measuring core, and the
/// aggregate is computed for the deployment model of one pinned core per
/// shard (throughput = total ops / slowest shard's busy time). This is how
/// the paper itself evaluates scalability beyond its 4-switch testbed (§8.3)
/// and is the honest way to measure scaling on a machine with fewer cores
/// than shards.
#[derive(Debug, Clone, Default)]
pub struct CapacityReport {
    /// Ops processed by each shard.
    pub shard_ops: Vec<u64>,
    /// Busy (processing-only) time of each shard.
    pub shard_busy: Vec<Duration>,
    /// Total ops across shards.
    pub total_ops: u64,
    /// Replies observed (should equal total ops in a loss-free fabric).
    pub replies: u64,
    /// `total_ops / max(shard_busy)`: aggregate throughput assuming one core
    /// per shard.
    pub aggregate_ops_per_sec: f64,
    /// `shard_ops[i] / shard_busy[i]` for each shard.
    pub per_shard_ops_per_sec: Vec<f64>,
    /// Merged in-band traces (empty when tracing is off; capacity mode
    /// stamps shard hops only, there is no live client clock).
    pub traces: Vec<PacketTrace>,
}

impl CapacityReport {
    /// Per-hop latency breakdown of the sampled traces.
    pub fn trace_summary(&self) -> TraceSummary {
        TraceSummary::from_traces(&self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_telemetry::sum_metrics;

    #[test]
    fn shard_stats_expose_all_counters() {
        let stats = ShardStats {
            frames_in: 1,
            parse_errors: 2,
            bursts: 3,
            waves: 4,
            replies: 5,
            drops: 6,
            blocked: 7,
            unroutable: 8,
        };
        let m = stats.metrics();
        assert_eq!(m.len(), SHARD_METRICS.len());
        assert_eq!(stats.metric("shard.blocked"), Some(7));
        assert_eq!(stats.metric("shard.unroutable"), Some(8));
    }

    #[test]
    fn client_reports_aggregate_elementwise() {
        let a = ClientReport {
            issued: 10,
            completed: 9,
            ..Default::default()
        };
        let b = ClientReport {
            issued: 5,
            completed: 5,
            abandoned: 1,
            ..Default::default()
        };
        let sum = sum_metrics([a, b].iter());
        assert!(sum.contains(&("client.issued", 15)));
        assert!(sum.contains(&("client.completed", 14)));
        assert!(sum.contains(&("client.abandoned", 1)));
    }
}
