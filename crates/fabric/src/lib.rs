//! # netchain-fabric
//!
//! An in-process, multi-core software switch fabric that runs the real
//! NetChain data plane ([`netchain_switch::NetChainSwitch`], Algorithm 1 —
//! the same program the discrete-event simulator executes) at real
//! throughput. Where `netchain-sim` answers *"is the protocol correct and
//! what are its dynamics?"* in virtual time, and `netchain-net` demonstrates
//! the wire format over real kernel UDP sockets, this crate answers *"how
//! many operations per second can a software incarnation actually
//! sustain?"* — the repo's first honest ops/sec platform, which every future
//! scaling change can be measured against.
//!
//! ## Architecture
//!
//! ```text
//!  client 0 ─┐ SPSC query rings   ┌─ shard 0 (switch replicas, groups ≡ 0 mod N)
//!  client 1 ─┼────────────────────┼─ shard 1 (groups ≡ 1 mod N)
//!    ...     │   (frames)         │    ...
//!  client C ─┘◄───────────────────┴─ shard N-1
//!              SPSC reply rings
//! ```
//!
//! * **Keyspace sharding by virtual group** ([`shard`]): the same unit the
//!   paper's consistent hashing and failure recovery use. A query's whole
//!   chain (head → replicas → tail) executes on the shard owning its key, so
//!   shards share nothing and scale linearly with cores.
//! * **Bounded lock-free SPSC rings** ([`ring`]): every (client, shard) pair
//!   owns one ring per direction — single producer, single consumer, no
//!   locks, index caching and batched publication to minimise cross-core
//!   traffic.
//! * **Batching everywhere**: frames are pulled in bursts (default 32),
//!   chains execute in waves through [`netchain_switch::NetChainSwitch::step_batch`],
//!   and replies are emitted through [`netchain_wire::BatchEncoder`] into one
//!   contiguous buffer.
//! * **Zero-copy parsing**: shards decode queries with
//!   [`netchain_wire::PacketView`], which validates once and reads fields in
//!   place; the read fast path allocates nothing on parse.
//! * **Closed-loop load generation** ([`loadgen`]): clients reuse
//!   [`netchain_core::AgentCore`] — the same sans-IO agent the simulator and
//!   UDP deployments use — for packet construction, reply matching and
//!   client-side consistency checking (version regressions must be zero).
//!
//! ## Measuring
//!
//! [`run_live`] spawns real threads (deployment shape; with
//! [`FabricConfig::pin_shards`](fabric::FabricConfig::pin_shards) each shard
//! thread is pinned to its own core through the vendored `affinity` shim —
//! `sched_setaffinity` on Linux, a graceful no-op elsewhere or with the
//! `pinning` feature disabled). [`run_capacity`] measures each shard's
//! run-to-completion rate sequentially and reports the aggregate for the
//! one-core-per-shard model, the same methodology the paper uses for its
//! scalability projections (§8.3) — and the only honest way to produce a
//! scaling curve on a benchmark machine with fewer cores than shards.
//!
//! The differential test (`tests/differential_sim.rs`) pins the fabric to
//! the simulator: the same scripted op sequence must produce identical
//! reply statuses/values and identical per-switch KV state in both.

#![warn(missing_docs)]
// `ring` is the only module with `unsafe` code (the SPSC slot ownership
// protocol); its invariants are documented and stress-tested there.

pub mod fabric;
pub mod frame;
pub mod loadgen;
pub mod ring;
pub mod shard;
pub mod stats;

pub use fabric::{build_shards, pin_thread, run_capacity, run_live, FabricConfig};
pub use frame::{Frame, MAX_FRAME_LEN};
pub use loadgen::{ClientState, WorkloadSpec};
pub use ring::{ring as spsc_ring, Consumer, Producer};
pub use shard::{client_id_of, shard_of_key, Shard};
pub use stats::{
    CapacityReport, ClientReport, FabricReport, ShardStats, CLIENT_METRICS, SHARD_METRICS,
};
